file(REMOVE_RECURSE
  "CMakeFiles/socket_cluster.dir/socket_cluster.cpp.o"
  "CMakeFiles/socket_cluster.dir/socket_cluster.cpp.o.d"
  "socket_cluster"
  "socket_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

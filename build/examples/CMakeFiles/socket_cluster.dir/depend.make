# Empty dependencies file for socket_cluster.
# This may be replaced when dependencies are built.

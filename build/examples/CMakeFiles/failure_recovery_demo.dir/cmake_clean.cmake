file(REMOVE_RECURSE
  "CMakeFiles/failure_recovery_demo.dir/failure_recovery_demo.cpp.o"
  "CMakeFiles/failure_recovery_demo.dir/failure_recovery_demo.cpp.o.d"
  "failure_recovery_demo"
  "failure_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

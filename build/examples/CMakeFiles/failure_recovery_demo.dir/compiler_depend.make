# Empty compiler generated dependencies file for failure_recovery_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/banking_et1.dir/banking_et1.cpp.o"
  "CMakeFiles/banking_et1.dir/banking_et1.cpp.o.d"
  "banking_et1"
  "banking_et1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_et1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for banking_et1.
# This may be replaced when dependencies are built.

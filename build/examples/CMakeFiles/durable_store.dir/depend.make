# Empty dependencies file for durable_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/durable_store.dir/durable_store.cpp.o"
  "CMakeFiles/durable_store.dir/durable_store.cpp.o.d"
  "durable_store"
  "durable_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

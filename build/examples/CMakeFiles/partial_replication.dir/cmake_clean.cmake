file(REMOVE_RECURSE
  "CMakeFiles/partial_replication.dir/partial_replication.cpp.o"
  "CMakeFiles/partial_replication.dir/partial_replication.cpp.o.d"
  "partial_replication"
  "partial_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

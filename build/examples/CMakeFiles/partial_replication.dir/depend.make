# Empty dependencies file for partial_replication.
# This may be replaced when dependencies are built.

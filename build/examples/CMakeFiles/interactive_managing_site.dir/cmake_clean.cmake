file(REMOVE_RECURSE
  "CMakeFiles/interactive_managing_site.dir/interactive_managing_site.cpp.o"
  "CMakeFiles/interactive_managing_site.dir/interactive_managing_site.cpp.o.d"
  "interactive_managing_site"
  "interactive_managing_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_managing_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for interactive_managing_site.
# This may be replaced when dependencies are built.

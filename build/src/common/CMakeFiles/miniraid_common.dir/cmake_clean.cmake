file(REMOVE_RECURSE
  "CMakeFiles/miniraid_common.dir/crc32.cc.o"
  "CMakeFiles/miniraid_common.dir/crc32.cc.o.d"
  "CMakeFiles/miniraid_common.dir/logging.cc.o"
  "CMakeFiles/miniraid_common.dir/logging.cc.o.d"
  "CMakeFiles/miniraid_common.dir/rng.cc.o"
  "CMakeFiles/miniraid_common.dir/rng.cc.o.d"
  "CMakeFiles/miniraid_common.dir/status.cc.o"
  "CMakeFiles/miniraid_common.dir/status.cc.o.d"
  "CMakeFiles/miniraid_common.dir/strings.cc.o"
  "CMakeFiles/miniraid_common.dir/strings.cc.o.d"
  "libminiraid_common.a"
  "libminiraid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libminiraid_common.a"
)

# Empty dependencies file for miniraid_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/miniraid_metrics.dir/series.cc.o"
  "CMakeFiles/miniraid_metrics.dir/series.cc.o.d"
  "CMakeFiles/miniraid_metrics.dir/stats.cc.o"
  "CMakeFiles/miniraid_metrics.dir/stats.cc.o.d"
  "CMakeFiles/miniraid_metrics.dir/trace.cc.o"
  "CMakeFiles/miniraid_metrics.dir/trace.cc.o.d"
  "libminiraid_metrics.a"
  "libminiraid_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for miniraid_metrics.
# This may be replaced when dependencies are built.

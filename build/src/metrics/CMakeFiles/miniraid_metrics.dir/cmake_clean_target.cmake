file(REMOVE_RECURSE
  "libminiraid_metrics.a"
)

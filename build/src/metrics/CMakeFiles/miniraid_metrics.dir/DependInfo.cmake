
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/series.cc" "src/metrics/CMakeFiles/miniraid_metrics.dir/series.cc.o" "gcc" "src/metrics/CMakeFiles/miniraid_metrics.dir/series.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/metrics/CMakeFiles/miniraid_metrics.dir/stats.cc.o" "gcc" "src/metrics/CMakeFiles/miniraid_metrics.dir/stats.cc.o.d"
  "/root/repo/src/metrics/trace.cc" "src/metrics/CMakeFiles/miniraid_metrics.dir/trace.cc.o" "gcc" "src/metrics/CMakeFiles/miniraid_metrics.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

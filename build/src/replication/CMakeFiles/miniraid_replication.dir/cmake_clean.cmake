file(REMOVE_RECURSE
  "CMakeFiles/miniraid_replication.dir/cost_model.cc.o"
  "CMakeFiles/miniraid_replication.dir/cost_model.cc.o.d"
  "CMakeFiles/miniraid_replication.dir/fail_locks.cc.o"
  "CMakeFiles/miniraid_replication.dir/fail_locks.cc.o.d"
  "CMakeFiles/miniraid_replication.dir/lock_table.cc.o"
  "CMakeFiles/miniraid_replication.dir/lock_table.cc.o.d"
  "CMakeFiles/miniraid_replication.dir/placement.cc.o"
  "CMakeFiles/miniraid_replication.dir/placement.cc.o.d"
  "CMakeFiles/miniraid_replication.dir/session_vector.cc.o"
  "CMakeFiles/miniraid_replication.dir/session_vector.cc.o.d"
  "CMakeFiles/miniraid_replication.dir/site.cc.o"
  "CMakeFiles/miniraid_replication.dir/site.cc.o.d"
  "libminiraid_replication.a"
  "libminiraid_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

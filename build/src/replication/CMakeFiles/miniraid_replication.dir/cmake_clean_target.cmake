file(REMOVE_RECURSE
  "libminiraid_replication.a"
)

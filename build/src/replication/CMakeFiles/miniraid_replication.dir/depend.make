# Empty dependencies file for miniraid_replication.
# This may be replaced when dependencies are built.

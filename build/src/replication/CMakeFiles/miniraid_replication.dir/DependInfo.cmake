
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/cost_model.cc" "src/replication/CMakeFiles/miniraid_replication.dir/cost_model.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/cost_model.cc.o.d"
  "/root/repo/src/replication/fail_locks.cc" "src/replication/CMakeFiles/miniraid_replication.dir/fail_locks.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/fail_locks.cc.o.d"
  "/root/repo/src/replication/lock_table.cc" "src/replication/CMakeFiles/miniraid_replication.dir/lock_table.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/lock_table.cc.o.d"
  "/root/repo/src/replication/placement.cc" "src/replication/CMakeFiles/miniraid_replication.dir/placement.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/placement.cc.o.d"
  "/root/repo/src/replication/session_vector.cc" "src/replication/CMakeFiles/miniraid_replication.dir/session_vector.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/session_vector.cc.o.d"
  "/root/repo/src/replication/site.cc" "src/replication/CMakeFiles/miniraid_replication.dir/site.cc.o" "gcc" "src/replication/CMakeFiles/miniraid_replication.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/miniraid_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/miniraid_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miniraid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/miniraid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/miniraid_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/miniraid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/miniraid_msg.dir/codec.cc.o"
  "CMakeFiles/miniraid_msg.dir/codec.cc.o.d"
  "CMakeFiles/miniraid_msg.dir/message.cc.o"
  "CMakeFiles/miniraid_msg.dir/message.cc.o.d"
  "libminiraid_msg.a"
  "libminiraid_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for miniraid_msg.
# This may be replaced when dependencies are built.

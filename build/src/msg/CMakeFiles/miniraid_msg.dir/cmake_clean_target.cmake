file(REMOVE_RECURSE
  "libminiraid_msg.a"
)

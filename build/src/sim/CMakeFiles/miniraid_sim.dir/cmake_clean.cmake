file(REMOVE_RECURSE
  "CMakeFiles/miniraid_sim.dir/event_queue.cc.o"
  "CMakeFiles/miniraid_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/miniraid_sim.dir/sim_runtime.cc.o"
  "CMakeFiles/miniraid_sim.dir/sim_runtime.cc.o.d"
  "libminiraid_sim.a"
  "libminiraid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

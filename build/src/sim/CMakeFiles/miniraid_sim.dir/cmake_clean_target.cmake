file(REMOVE_RECURSE
  "libminiraid_sim.a"
)

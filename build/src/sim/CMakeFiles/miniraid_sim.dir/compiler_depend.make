# Empty compiler generated dependencies file for miniraid_sim.
# This may be replaced when dependencies are built.

# Empty dependencies file for miniraid_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libminiraid_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/miniraid_net.dir/event_loop.cc.o"
  "CMakeFiles/miniraid_net.dir/event_loop.cc.o.d"
  "CMakeFiles/miniraid_net.dir/inproc_transport.cc.o"
  "CMakeFiles/miniraid_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/miniraid_net.dir/sim_transport.cc.o"
  "CMakeFiles/miniraid_net.dir/sim_transport.cc.o.d"
  "CMakeFiles/miniraid_net.dir/tcp_transport.cc.o"
  "CMakeFiles/miniraid_net.dir/tcp_transport.cc.o.d"
  "libminiraid_net.a"
  "libminiraid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cc" "src/net/CMakeFiles/miniraid_net.dir/event_loop.cc.o" "gcc" "src/net/CMakeFiles/miniraid_net.dir/event_loop.cc.o.d"
  "/root/repo/src/net/inproc_transport.cc" "src/net/CMakeFiles/miniraid_net.dir/inproc_transport.cc.o" "gcc" "src/net/CMakeFiles/miniraid_net.dir/inproc_transport.cc.o.d"
  "/root/repo/src/net/sim_transport.cc" "src/net/CMakeFiles/miniraid_net.dir/sim_transport.cc.o" "gcc" "src/net/CMakeFiles/miniraid_net.dir/sim_transport.cc.o.d"
  "/root/repo/src/net/tcp_transport.cc" "src/net/CMakeFiles/miniraid_net.dir/tcp_transport.cc.o" "gcc" "src/net/CMakeFiles/miniraid_net.dir/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/miniraid_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/miniraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/miniraid_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for miniraid_baselines.
# This may be replaced when dependencies are built.

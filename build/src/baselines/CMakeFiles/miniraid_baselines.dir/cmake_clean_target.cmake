file(REMOVE_RECURSE
  "libminiraid_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/miniraid_baselines.dir/baseline_cluster.cc.o"
  "CMakeFiles/miniraid_baselines.dir/baseline_cluster.cc.o.d"
  "CMakeFiles/miniraid_baselines.dir/quorum_site.cc.o"
  "CMakeFiles/miniraid_baselines.dir/quorum_site.cc.o.d"
  "CMakeFiles/miniraid_baselines.dir/rowa_site.cc.o"
  "CMakeFiles/miniraid_baselines.dir/rowa_site.cc.o.d"
  "libminiraid_baselines.a"
  "libminiraid_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libminiraid_db.a"
)

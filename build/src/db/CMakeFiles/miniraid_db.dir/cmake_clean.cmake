file(REMOVE_RECURSE
  "CMakeFiles/miniraid_db.dir/database.cc.o"
  "CMakeFiles/miniraid_db.dir/database.cc.o.d"
  "libminiraid_db.a"
  "libminiraid_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

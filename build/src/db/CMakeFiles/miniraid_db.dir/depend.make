# Empty dependencies file for miniraid_db.
# This may be replaced when dependencies are built.

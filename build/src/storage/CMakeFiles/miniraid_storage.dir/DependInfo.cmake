
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/durable_database.cc" "src/storage/CMakeFiles/miniraid_storage.dir/durable_database.cc.o" "gcc" "src/storage/CMakeFiles/miniraid_storage.dir/durable_database.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/miniraid_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/miniraid_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/miniraid_db.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/miniraid_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/miniraid_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

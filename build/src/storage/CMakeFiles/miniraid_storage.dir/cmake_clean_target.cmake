file(REMOVE_RECURSE
  "libminiraid_storage.a"
)

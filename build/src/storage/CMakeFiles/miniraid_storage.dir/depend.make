# Empty dependencies file for miniraid_storage.
# This may be replaced when dependencies are built.

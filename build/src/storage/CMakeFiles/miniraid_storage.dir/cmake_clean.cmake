file(REMOVE_RECURSE
  "CMakeFiles/miniraid_storage.dir/durable_database.cc.o"
  "CMakeFiles/miniraid_storage.dir/durable_database.cc.o.d"
  "CMakeFiles/miniraid_storage.dir/wal.cc.o"
  "CMakeFiles/miniraid_storage.dir/wal.cc.o.d"
  "libminiraid_storage.a"
  "libminiraid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/miniraid_driver.dir/driver.cc.o"
  "CMakeFiles/miniraid_driver.dir/driver.cc.o.d"
  "libminiraid_driver.a"
  "libminiraid_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libminiraid_driver.a"
)

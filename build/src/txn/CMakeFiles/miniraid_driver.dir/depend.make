# Empty dependencies file for miniraid_driver.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/parse.cc" "src/txn/CMakeFiles/miniraid_txn.dir/parse.cc.o" "gcc" "src/txn/CMakeFiles/miniraid_txn.dir/parse.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/txn/CMakeFiles/miniraid_txn.dir/transaction.cc.o" "gcc" "src/txn/CMakeFiles/miniraid_txn.dir/transaction.cc.o.d"
  "/root/repo/src/txn/workload.cc" "src/txn/CMakeFiles/miniraid_txn.dir/workload.cc.o" "gcc" "src/txn/CMakeFiles/miniraid_txn.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

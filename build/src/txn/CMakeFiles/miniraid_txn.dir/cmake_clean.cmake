file(REMOVE_RECURSE
  "CMakeFiles/miniraid_txn.dir/parse.cc.o"
  "CMakeFiles/miniraid_txn.dir/parse.cc.o.d"
  "CMakeFiles/miniraid_txn.dir/transaction.cc.o"
  "CMakeFiles/miniraid_txn.dir/transaction.cc.o.d"
  "CMakeFiles/miniraid_txn.dir/workload.cc.o"
  "CMakeFiles/miniraid_txn.dir/workload.cc.o.d"
  "libminiraid_txn.a"
  "libminiraid_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libminiraid_txn.a"
)

# Empty dependencies file for miniraid_txn.
# This may be replaced when dependencies are built.

# Empty dependencies file for miniraid_core.
# This may be replaced when dependencies are built.

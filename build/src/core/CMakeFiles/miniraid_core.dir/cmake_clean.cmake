file(REMOVE_RECURSE
  "CMakeFiles/miniraid_core.dir/analysis.cc.o"
  "CMakeFiles/miniraid_core.dir/analysis.cc.o.d"
  "CMakeFiles/miniraid_core.dir/cluster.cc.o"
  "CMakeFiles/miniraid_core.dir/cluster.cc.o.d"
  "CMakeFiles/miniraid_core.dir/cluster_api.cc.o"
  "CMakeFiles/miniraid_core.dir/cluster_api.cc.o.d"
  "CMakeFiles/miniraid_core.dir/coordinator_policy.cc.o"
  "CMakeFiles/miniraid_core.dir/coordinator_policy.cc.o.d"
  "CMakeFiles/miniraid_core.dir/experiments.cc.o"
  "CMakeFiles/miniraid_core.dir/experiments.cc.o.d"
  "CMakeFiles/miniraid_core.dir/invariants.cc.o"
  "CMakeFiles/miniraid_core.dir/invariants.cc.o.d"
  "CMakeFiles/miniraid_core.dir/managing_site.cc.o"
  "CMakeFiles/miniraid_core.dir/managing_site.cc.o.d"
  "CMakeFiles/miniraid_core.dir/submit_window.cc.o"
  "CMakeFiles/miniraid_core.dir/submit_window.cc.o.d"
  "libminiraid_core.a"
  "libminiraid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniraid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

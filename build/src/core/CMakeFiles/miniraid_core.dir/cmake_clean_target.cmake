file(REMOVE_RECURSE
  "libminiraid_core.a"
)

# Empty dependencies file for bench_exp3_scenario1_fig2.
# This may be replaced when dependencies are built.

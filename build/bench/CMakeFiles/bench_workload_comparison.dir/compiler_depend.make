# Empty compiler generated dependencies file for bench_workload_comparison.
# This may be replaced when dependencies are built.

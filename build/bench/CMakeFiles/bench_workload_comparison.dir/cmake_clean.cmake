file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_comparison.dir/bench_workload_comparison.cc.o"
  "CMakeFiles/bench_workload_comparison.dir/bench_workload_comparison.cc.o.d"
  "bench_workload_comparison"
  "bench_workload_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

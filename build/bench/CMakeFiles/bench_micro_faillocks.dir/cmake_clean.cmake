file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_faillocks.dir/bench_micro_faillocks.cc.o"
  "CMakeFiles/bench_micro_faillocks.dir/bench_micro_faillocks.cc.o.d"
  "bench_micro_faillocks"
  "bench_micro_faillocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_faillocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

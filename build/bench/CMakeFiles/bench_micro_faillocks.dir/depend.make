# Empty dependencies file for bench_micro_faillocks.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_two_step_recovery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_two_step_recovery.dir/bench_ablation_two_step_recovery.cc.o"
  "CMakeFiles/bench_ablation_two_step_recovery.dir/bench_ablation_two_step_recovery.cc.o.d"
  "bench_ablation_two_step_recovery"
  "bench_ablation_two_step_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_two_step_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_skew.dir/bench_ablation_skew.cc.o"
  "CMakeFiles/bench_ablation_skew.dir/bench_ablation_skew.cc.o.d"
  "bench_ablation_skew"
  "bench_ablation_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lose_state.dir/bench_ablation_lose_state.cc.o"
  "CMakeFiles/bench_ablation_lose_state.dir/bench_ablation_lose_state.cc.o.d"
  "bench_ablation_lose_state"
  "bench_ablation_lose_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lose_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

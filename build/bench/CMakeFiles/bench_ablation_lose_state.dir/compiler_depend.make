# Empty compiler generated dependencies file for bench_ablation_lose_state.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_latency.dir/bench_ablation_latency.cc.o"
  "CMakeFiles/bench_ablation_latency.dir/bench_ablation_latency.cc.o.d"
  "bench_ablation_latency"
  "bench_ablation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_micro_codec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_codec.dir/bench_micro_codec.cc.o"
  "CMakeFiles/bench_micro_codec.dir/bench_micro_codec.cc.o.d"
  "bench_micro_codec"
  "bench_micro_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

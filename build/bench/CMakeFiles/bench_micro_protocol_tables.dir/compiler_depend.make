# Empty compiler generated dependencies file for bench_micro_protocol_tables.
# This may be replaced when dependencies are built.

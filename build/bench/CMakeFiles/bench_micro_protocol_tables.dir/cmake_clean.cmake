file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_protocol_tables.dir/bench_micro_protocol_tables.cc.o"
  "CMakeFiles/bench_micro_protocol_tables.dir/bench_micro_protocol_tables.cc.o.d"
  "bench_micro_protocol_tables"
  "bench_micro_protocol_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_protocol_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_exp2_recovery_fig1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_recovery_fig1.dir/bench_exp2_recovery_fig1.cc.o"
  "CMakeFiles/bench_exp2_recovery_fig1.dir/bench_exp2_recovery_fig1.cc.o.d"
  "bench_exp2_recovery_fig1"
  "bench_exp2_recovery_fig1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_recovery_fig1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_baselines_availability.
# This may be replaced when dependencies are built.

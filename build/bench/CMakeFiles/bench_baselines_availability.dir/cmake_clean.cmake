file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines_availability.dir/bench_baselines_availability.cc.o"
  "CMakeFiles/bench_baselines_availability.dir/bench_baselines_availability.cc.o.d"
  "bench_baselines_availability"
  "bench_baselines_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_type3_partial.
# This may be replaced when dependencies are built.

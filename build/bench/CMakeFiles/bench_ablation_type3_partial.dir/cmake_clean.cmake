file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_type3_partial.dir/bench_ablation_type3_partial.cc.o"
  "CMakeFiles/bench_ablation_type3_partial.dir/bench_ablation_type3_partial.cc.o.d"
  "bench_ablation_type3_partial"
  "bench_ablation_type3_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_type3_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_locking.dir/bench_ablation_locking.cc.o"
  "CMakeFiles/bench_ablation_locking.dir/bench_ablation_locking.cc.o.d"
  "bench_ablation_locking"
  "bench_ablation_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_locking.
# This may be replaced when dependencies are built.

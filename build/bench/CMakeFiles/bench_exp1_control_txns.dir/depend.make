# Empty dependencies file for bench_exp1_control_txns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_control_txns.dir/bench_exp1_control_txns.cc.o"
  "CMakeFiles/bench_exp1_control_txns.dir/bench_exp1_control_txns.cc.o.d"
  "bench_exp1_control_txns"
  "bench_exp1_control_txns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_control_txns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

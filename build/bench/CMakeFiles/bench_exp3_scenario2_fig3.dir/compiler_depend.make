# Empty compiler generated dependencies file for bench_exp3_scenario2_fig3.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_scenario2_fig3.dir/bench_exp3_scenario2_fig3.cc.o"
  "CMakeFiles/bench_exp3_scenario2_fig3.dir/bench_exp3_scenario2_fig3.cc.o.d"
  "bench_exp3_scenario2_fig3"
  "bench_exp3_scenario2_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_scenario2_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

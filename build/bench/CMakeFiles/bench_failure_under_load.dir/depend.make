# Empty dependencies file for bench_failure_under_load.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_under_load.dir/bench_failure_under_load.cc.o"
  "CMakeFiles/bench_failure_under_load.dir/bench_failure_under_load.cc.o.d"
  "bench_failure_under_load"
  "bench_failure_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_site_scaling.dir/bench_ablation_site_scaling.cc.o"
  "CMakeFiles/bench_ablation_site_scaling.dir/bench_ablation_site_scaling.cc.o.d"
  "bench_ablation_site_scaling"
  "bench_ablation_site_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_site_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

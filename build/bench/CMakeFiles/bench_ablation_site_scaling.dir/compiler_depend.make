# Empty compiler generated dependencies file for bench_ablation_site_scaling.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ablation_rw_ratio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rw_ratio.dir/bench_ablation_rw_ratio.cc.o"
  "CMakeFiles/bench_ablation_rw_ratio.dir/bench_ablation_rw_ratio.cc.o.d"
  "bench_ablation_rw_ratio"
  "bench_ablation_rw_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rw_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_micro_database.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_database.dir/bench_micro_database.cc.o"
  "CMakeFiles/bench_micro_database.dir/bench_micro_database.cc.o.d"
  "bench_micro_database"
  "bench_micro_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

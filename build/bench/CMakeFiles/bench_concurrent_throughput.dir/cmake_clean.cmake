file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_throughput.dir/bench_concurrent_throughput.cc.o"
  "CMakeFiles/bench_concurrent_throughput.dir/bench_concurrent_throughput.cc.o.d"
  "bench_concurrent_throughput"
  "bench_concurrent_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_partition_split_brain.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_split_brain.dir/bench_partition_split_brain.cc.o"
  "CMakeFiles/bench_partition_split_brain.dir/bench_partition_split_brain.cc.o.d"
  "bench_partition_split_brain"
  "bench_partition_split_brain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_split_brain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

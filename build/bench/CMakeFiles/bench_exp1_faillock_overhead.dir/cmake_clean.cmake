file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_faillock_overhead.dir/bench_exp1_faillock_overhead.cc.o"
  "CMakeFiles/bench_exp1_faillock_overhead.dir/bench_exp1_faillock_overhead.cc.o.d"
  "bench_exp1_faillock_overhead"
  "bench_exp1_faillock_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_faillock_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

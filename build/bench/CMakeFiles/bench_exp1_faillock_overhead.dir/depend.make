# Empty dependencies file for bench_exp1_faillock_overhead.
# This may be replaced when dependencies are built.

# Empty dependencies file for driver_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/driver_test.dir/driver_test.cc.o"
  "CMakeFiles/driver_test.dir/driver_test.cc.o.d"
  "driver_test"
  "driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

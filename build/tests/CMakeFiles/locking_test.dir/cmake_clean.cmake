file(REMOVE_RECURSE
  "CMakeFiles/locking_test.dir/locking_test.cc.o"
  "CMakeFiles/locking_test.dir/locking_test.cc.o.d"
  "locking_test"
  "locking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for locking_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for coordinator_policy_test.
# This may be replaced when dependencies are built.

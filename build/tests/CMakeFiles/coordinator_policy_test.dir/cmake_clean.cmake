file(REMOVE_RECURSE
  "CMakeFiles/coordinator_policy_test.dir/coordinator_policy_test.cc.o"
  "CMakeFiles/coordinator_policy_test.dir/coordinator_policy_test.cc.o.d"
  "coordinator_policy_test"
  "coordinator_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

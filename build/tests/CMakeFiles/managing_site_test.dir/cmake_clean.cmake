file(REMOVE_RECURSE
  "CMakeFiles/managing_site_test.dir/managing_site_test.cc.o"
  "CMakeFiles/managing_site_test.dir/managing_site_test.cc.o.d"
  "managing_site_test"
  "managing_site_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/managing_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for managing_site_test.
# This may be replaced when dependencies are built.

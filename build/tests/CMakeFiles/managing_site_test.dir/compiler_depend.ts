# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for managing_site_test.

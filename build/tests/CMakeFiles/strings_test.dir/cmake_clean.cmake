file(REMOVE_RECURSE
  "CMakeFiles/strings_test.dir/strings_test.cc.o"
  "CMakeFiles/strings_test.dir/strings_test.cc.o.d"
  "strings_test"
  "strings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

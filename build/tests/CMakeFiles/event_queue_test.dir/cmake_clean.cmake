file(REMOVE_RECURSE
  "CMakeFiles/event_queue_test.dir/event_queue_test.cc.o"
  "CMakeFiles/event_queue_test.dir/event_queue_test.cc.o.d"
  "event_queue_test"
  "event_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_runtime_test.dir/sim_runtime_test.cc.o"
  "CMakeFiles/sim_runtime_test.dir/sim_runtime_test.cc.o.d"
  "sim_runtime_test"
  "sim_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

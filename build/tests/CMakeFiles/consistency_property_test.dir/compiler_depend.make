# Empty compiler generated dependencies file for consistency_property_test.
# This may be replaced when dependencies are built.

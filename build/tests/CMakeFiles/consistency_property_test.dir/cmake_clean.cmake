file(REMOVE_RECURSE
  "CMakeFiles/consistency_property_test.dir/consistency_property_test.cc.o"
  "CMakeFiles/consistency_property_test.dir/consistency_property_test.cc.o.d"
  "consistency_property_test"
  "consistency_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/site_protocol_test.dir/site_protocol_test.cc.o"
  "CMakeFiles/site_protocol_test.dir/site_protocol_test.cc.o.d"
  "site_protocol_test"
  "site_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

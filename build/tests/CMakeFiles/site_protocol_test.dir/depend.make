# Empty dependencies file for site_protocol_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for session_vector_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/session_vector_test.dir/session_vector_test.cc.o"
  "CMakeFiles/session_vector_test.dir/session_vector_test.cc.o.d"
  "session_vector_test"
  "session_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/real_cluster_stress_test.dir/real_cluster_stress_test.cc.o"
  "CMakeFiles/real_cluster_stress_test.dir/real_cluster_stress_test.cc.o.d"
  "real_cluster_stress_test"
  "real_cluster_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_cluster_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/real_cluster_stress_test.cc" "tests/CMakeFiles/real_cluster_stress_test.dir/real_cluster_stress_test.cc.o" "gcc" "tests/CMakeFiles/real_cluster_stress_test.dir/real_cluster_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/miniraid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/miniraid_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/miniraid_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/miniraid_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miniraid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/miniraid_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/miniraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/miniraid_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/miniraid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miniraid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

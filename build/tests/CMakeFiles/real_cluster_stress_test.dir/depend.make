# Empty dependencies file for real_cluster_stress_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/durable_site_test.dir/durable_site_test.cc.o"
  "CMakeFiles/durable_site_test.dir/durable_site_test.cc.o.d"
  "durable_site_test"
  "durable_site_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

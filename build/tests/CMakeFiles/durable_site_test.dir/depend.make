# Empty dependencies file for durable_site_test.
# This may be replaced when dependencies are built.

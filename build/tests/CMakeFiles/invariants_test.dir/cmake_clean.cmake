file(REMOVE_RECURSE
  "CMakeFiles/invariants_test.dir/invariants_test.cc.o"
  "CMakeFiles/invariants_test.dir/invariants_test.cc.o.d"
  "invariants_test"
  "invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for invariants_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/type3_partial_test.dir/type3_partial_test.cc.o"
  "CMakeFiles/type3_partial_test.dir/type3_partial_test.cc.o.d"
  "type3_partial_test"
  "type3_partial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type3_partial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

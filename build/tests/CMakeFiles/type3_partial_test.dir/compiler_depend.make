# Empty compiler generated dependencies file for type3_partial_test.
# This may be replaced when dependencies are built.

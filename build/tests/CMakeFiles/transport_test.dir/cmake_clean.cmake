file(REMOVE_RECURSE
  "CMakeFiles/transport_test.dir/transport_test.cc.o"
  "CMakeFiles/transport_test.dir/transport_test.cc.o.d"
  "transport_test"
  "transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

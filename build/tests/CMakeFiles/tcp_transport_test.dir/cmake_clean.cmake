file(REMOVE_RECURSE
  "CMakeFiles/tcp_transport_test.dir/tcp_transport_test.cc.o"
  "CMakeFiles/tcp_transport_test.dir/tcp_transport_test.cc.o.d"
  "tcp_transport_test"
  "tcp_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

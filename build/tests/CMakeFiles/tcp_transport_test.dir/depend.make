# Empty dependencies file for tcp_transport_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/parse_test.dir/parse_test.cc.o"
  "CMakeFiles/parse_test.dir/parse_test.cc.o.d"
  "parse_test"
  "parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for two_step_recovery_test.
# This may be replaced when dependencies are built.

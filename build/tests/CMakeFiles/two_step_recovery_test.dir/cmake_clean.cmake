file(REMOVE_RECURSE
  "CMakeFiles/two_step_recovery_test.dir/two_step_recovery_test.cc.o"
  "CMakeFiles/two_step_recovery_test.dir/two_step_recovery_test.cc.o.d"
  "two_step_recovery_test"
  "two_step_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_step_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

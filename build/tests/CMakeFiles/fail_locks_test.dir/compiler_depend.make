# Empty compiler generated dependencies file for fail_locks_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fail_locks_test.dir/fail_locks_test.cc.o"
  "CMakeFiles/fail_locks_test.dir/fail_locks_test.cc.o.d"
  "fail_locks_test"
  "fail_locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fail_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

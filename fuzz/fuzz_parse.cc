// libFuzzer harness for the transaction-operation parser (txn/parse.h) —
// the interactive managing site feeds it raw operator input.
//
// Property 1: ParseTxnOps never crashes on arbitrary text.
// Property 2: round-trip — any spec it accepts must survive
// FormatTxnOps -> ParseTxnOps unchanged (parse/format are inverses on the
// accepted language).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "txn/parse.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // A large-but-bounded db_size: most numeric items are accepted (deep
  // round-trip coverage) while the item-range rejection path stays
  // reachable via bigger literals.
  constexpr miniraid::TxnId kId = 7;
  constexpr uint32_t kDbSize = 1u << 20;

  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = miniraid::ParseTxnOps(kId, text, kDbSize);
  if (!parsed.ok()) return 0;

  const std::string formatted = miniraid::FormatTxnOps(*parsed);
  auto again = miniraid::ParseTxnOps(kId, formatted, kDbSize);
  if (!again.ok()) {
    std::fprintf(stderr, "re-parse of formatted txn failed on '%s': %s\n",
                 formatted.c_str(), again.status().ToString().c_str());
    std::abort();
  }
  if (miniraid::FormatTxnOps(*again) != formatted) {
    std::fprintf(stderr, "parse/format round-trip not stable: '%s' vs '%s'\n",
                 formatted.c_str(),
                 miniraid::FormatTxnOps(*again).c_str());
    std::abort();
  }
  return 0;
}

// libFuzzer harness for the wire codec (msg/message.h).
//
// Property 1: DecodeMessage never crashes, leaks, or reads out of bounds on
// arbitrary bytes (the "never crashes on untrusted input" contract — this is
// what a mini-RAID site faces on every TCP read).
// Property 2: round-trip — any message that decodes must re-encode and
// decode again to the same message (the codec is a bijection on its image).
//
// Build with the clang-fuzz preset: cmake --preset clang-fuzz &&
// cmake --build --preset clang-fuzz --target fuzz_codec
// Run: ./build-clang-fuzz/fuzz/fuzz_codec fuzz/corpus/codec

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "msg/message.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto decoded = miniraid::DecodeMessage(data, size);
  if (!decoded.ok()) return 0;  // rejecting garbage is fine; crashing is not

  const std::vector<uint8_t> wire = miniraid::EncodeMessage(*decoded);
  auto again = miniraid::DecodeMessage(wire.data(), wire.size());
  if (!again.ok()) {
    std::fprintf(stderr, "re-decode of a valid message failed: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  if (!(*again == *decoded)) {
    std::fprintf(stderr, "codec round-trip not identity:\n  in:  %s\n  out: %s\n",
                 decoded->ToString().c_str(), again->ToString().c_str());
    std::abort();
  }
  return 0;
}

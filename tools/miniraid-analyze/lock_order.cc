// Lock-order pass: the static analogue of the runtime deadlock policies.
//
// The engine layers two lock disciplines: OS mutexes (src/common/mutex.h,
// annotated with the MR_* capability vocabulary) and the per-item 2PL lock
// manager (src/core/lock_manager.h), whose grant callbacks run synchronously
// on lock-release paths. This pass builds a whole-program lock acquisition
// graph and reports (rule "lock-order"):
//
//   1. declared-order cycles — the MR_ACQUIRED_BEFORE/_AFTER annotations
//      must form a DAG;
//   2. unresolvable MR_ACQUIRED_BEFORE/_AFTER targets — a declared edge the
//      analysis cannot anchor is a typo waiting to deadlock;
//   3. observed acquisitions that contradict the declared order ("acquires A
//      while holding B" when A is declared before B);
//   4. observed acquisitions with no declared order at all (completeness:
//      every nested acquisition must be covered by an annotation);
//   5. paths that can block — CondVar::Wait on a different mutex, or an
//      item-lock operation (waiter enqueue / grant-callback dispatch) —
//      while holding a mutex, directly or through a call chain.
//
// Interprocedural machinery: a may-acquire and a may-block summary are
// computed per function by fixpoint over the call graph (ResolveCallTargets),
// then each function's body is replayed in token order against the scoped /
// manual acquisitions that are live at each call site. Lambda bodies are
// excluded on both sides: a deferred continuation neither holds its creator's
// scoped locks nor contributes to the creator's synchronous acquisitions.
//
// Conservatism: an acquisition or wait whose mutex identity does not resolve
// to a "Class::field" node produces no edge and no finding (matching the
// indexer's no-guess policy), with one exception — a CondVar wait with an
// unresolved mutex argument under two or more held locks is reported, since
// at most one of them can be the one the wait releases.

#include <algorithm>
#include <functional>
#include <sstream>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& c : chain) {
    if (!out.empty()) out += ".";
    out += c;
  }
  return out;
}

bool CapabilityType(const Model& m, const std::string& type) {
  auto it = m.classes.find(m.ResolveAlias(type));
  return it != m.classes.end() && it->second.is_capability;
}

}  // namespace

// Shared with the dataflow passes: the observable lock intervals of one
// function body, every lambda included (callers filter by lambda index).
std::vector<HeldInterval> ComputeHeldIntervals(const Model& m,
                                               const FunctionInfo& fn) {
  std::vector<HeldInterval> out;
  for (const ScopedAcquire& sa : fn.scoped_acquires) {
    if (sa.node.empty()) continue;
    out.push_back({sa.node, sa.tok, sa.release_tok, sa.lambda});
  }
  // Manual Lock/Unlock pairs on the same node, in token order, paired only
  // within the same lambda scope (a Lock in the body and an Unlock inside a
  // continuation are not a critical section).
  std::vector<const CallSite*> ops;
  for (const CallSite& c : fn.calls) {
    if (!c.is_member || c.receiver_node.empty()) continue;
    if ((c.callee == "Lock" || c.callee == "Unlock") &&
        CapabilityType(m, c.receiver_type)) {
      ops.push_back(&c);
    }
  }
  std::sort(ops.begin(), ops.end(),
            [](const CallSite* a, const CallSite* b) {
              return a->tok < b->tok;
            });
  // node|lambda -> Lock tok
  std::map<std::pair<std::string, int>, size_t> open;
  for (const CallSite* c : ops) {
    std::pair<std::string, int> key{c->receiver_node, c->lambda};
    if (c->callee == "Lock") {
      open[key] = c->tok;
    } else {
      auto it = open.find(key);
      if (it != open.end()) {
        out.push_back({c->receiver_node, it->second, c->tok, c->lambda});
        open.erase(it);
      }
    }
  }
  for (const auto& kv : open) {
    out.push_back({kv.first.first, kv.second, static_cast<size_t>(-1),
                   kv.first.second});
  }
  return out;
}

std::set<std::string> HeldNodesAt(const std::vector<HeldInterval>& intervals,
                                  size_t tok, int lambda) {
  std::set<std::string> out;
  for (const HeldInterval& h : intervals) {
    if (h.lambda == lambda && h.from < tok && tok < h.to) out.insert(h.node);
  }
  return out;
}

std::string ResolveLockNode(const Model& m, const std::string& cls,
                            const std::vector<std::string>& chain) {
  if (chain.empty()) return "";
  std::string owner = m.ResolveAlias(cls);
  if (chain.size() > 1) {
    std::string cur = m.FieldType(cls, chain[0]);
    for (size_t e = 1; e + 1 < chain.size() && !cur.empty(); ++e) {
      cur = m.FieldType(cur, chain[e]);
    }
    if (cur.empty()) return "";
    owner = m.ResolveAlias(cur);
  }
  if (!CapabilityType(m, m.FieldType(owner, chain.back()))) return "";
  return owner + "::" + chain.back();
}

namespace {

struct LockOrderPass {
  const Model& m;
  const CheckOptions& opts;
  std::vector<Finding>* findings;
  LockGraph graph;

  // declared adjacency: from -> set of to
  std::map<std::string, std::set<std::string>> declared;
  // per-function summaries, by function index
  std::vector<std::set<std::string>> may_acquire;
  std::vector<char> may_block;
  std::set<std::string> reported;  // dedup key: kind|from|to or kind|site

  bool IsCapabilityType(const std::string& type) const {
    auto it = m.classes.find(m.ResolveAlias(type));
    return it != m.classes.end() && it->second.is_capability;
  }

  void Report(const std::string& key, const std::string& file, int line,
              const std::string& message) {
    if (!reported.insert(key).second) return;
    Finding f;
    f.rule = "lock-order";
    f.file = file;
    f.line = line;
    f.message = message;
    findings->push_back(std::move(f));
  }

  std::string FileOf(const CallSite& c) const {
    return c.file_index >= 0 ? m.files[c.file_index].path : "";
  }

  // Resolves an annotation-target identifier chain relative to `cls` to a
  // lock node ("" if it does not land on a capability-typed field).
  std::string ResolveTarget(const std::string& cls,
                            const std::vector<std::string>& chain) const {
    return ResolveLockNode(m, cls, chain);
  }

  // --- phase 1: nodes and declared edges ---------------------------------
  void CollectDeclared() {
    for (const auto& kv : m.classes) {
      const ClassInfo& ci = kv.second;
      for (const auto& fkv : ci.fields) {
        if (IsCapabilityType(fkv.second)) {
          graph.nodes.insert(ci.name + "::" + fkv.first);
        }
      }
      for (const ClassInfo::LockEdge& e : ci.lock_edges) {
        std::string self = ci.name + "::" + e.field;
        std::string target = ResolveTarget(ci.name, e.target);
        const char* macro =
            e.before ? "MR_ACQUIRED_BEFORE" : "MR_ACQUIRED_AFTER";
        if (target.empty()) {
          Report("unresolved|" + self + "|" + JoinChain(e.target), ci.file,
                 e.line,
                 std::string(macro) + "(" + JoinChain(e.target) + ") on '" +
                     self + "' does not resolve to a mutex field");
          continue;
        }
        std::string from = e.before ? self : target;
        std::string to = e.before ? target : self;
        graph.nodes.insert(self);
        graph.nodes.insert(target);
        LockGraph::Edge edge;
        edge.from = from;
        edge.to = to;
        edge.kind = "declared";
        edge.file = ci.file;
        edge.line = e.line;
        graph.edges.push_back(std::move(edge));
        declared[from].insert(to);
      }
    }
  }

  // True if the declared order admits a path from -> to.
  bool DeclaredPath(const std::string& from, const std::string& to) const {
    std::vector<std::string> stack{from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      if (!seen.insert(cur).second) continue;
      auto it = declared.find(cur);
      if (it == declared.end()) continue;
      if (it->second.count(to)) return true;
      for (const std::string& n : it->second) stack.push_back(n);
    }
    return false;
  }

  void CheckDeclaredAcyclic() {
    // DFS with colors; report each back edge as a cycle.
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> path;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& n) {
          color[n] = 1;
          path.push_back(n);
          auto it = declared.find(n);
          if (it != declared.end()) {
            for (const std::string& next : it->second) {
              if (color[next] == 1) {
                // Cycle: slice of `path` from `next` to n, closing on next.
                std::ostringstream msg;
                msg << "declared lock order forms a cycle: ";
                size_t start = 0;
                while (start < path.size() && path[start] != next) ++start;
                std::string cycle_key = "cycle";
                for (size_t i = start; i < path.size(); ++i) {
                  msg << path[i] << " -> ";
                  cycle_key += "|" + path[i];
                }
                msg << next;
                // Anchor at the declaration of the edge closing the cycle.
                std::string file;
                int line = 0;
                EdgeSite(n, next, &file, &line);
                Report(cycle_key, file, line, msg.str());
              } else if (color[next] == 0) {
                dfs(next);
              }
            }
          }
          path.pop_back();
          color[n] = 2;
        };
    for (const auto& kv : declared) {
      if (color[kv.first] == 0) dfs(kv.first);
    }
  }

  void EdgeSite(const std::string& from, const std::string& to,
                std::string* file, int* line) const {
    for (const LockGraph::Edge& e : graph.edges) {
      if (e.kind == "declared" && e.from == from && e.to == to) {
        *file = e.file;
        *line = e.line;
        return;
      }
    }
  }

  // --- phase 2: per-function summaries ------------------------------------
  // Direct acquisitions: scoped locks plus manual Mutex::Lock calls; both
  // excluded inside lambdas.
  std::set<std::string> DirectAcquires(const FunctionInfo& fn) const {
    std::set<std::string> out;
    for (const ScopedAcquire& sa : fn.scoped_acquires) {
      if (!sa.in_lambda && !sa.node.empty()) out.insert(sa.node);
    }
    for (const CallSite& c : fn.calls) {
      if (c.in_lambda || !c.is_member || c.receiver_node.empty()) continue;
      if (c.callee == "Lock" && IsCapabilityType(c.receiver_type)) {
        out.insert(c.receiver_node);
      }
    }
    return out;
  }

  bool IsCondVarWait(const CallSite& c) const {
    if (!c.is_member || c.receiver_type.empty()) return false;
    auto it = opts.blocking_members.find(m.ResolveAlias(c.receiver_type));
    return it != opts.blocking_members.end() && it->second.count(c.callee) &&
           c.callee.rfind("Wait", 0) == 0;
  }

  bool IsItemLockOp(const CallSite& c) const {
    if (!c.is_member || c.receiver_type.empty()) return false;
    std::string recv = m.ResolveAlias(c.receiver_type);
    for (const auto& kv : opts.item_lock_members) {
      if (m.DerivesFrom(recv, kv.first) && kv.second.count(c.callee)) {
        return true;
      }
    }
    return false;
  }

  void ComputeSummaries() {
    size_t n = m.functions.size();
    may_acquire.assign(n, {});
    may_block.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      may_acquire[i] = DirectAcquires(m.functions[i]);
      for (const CallSite& c : m.functions[i].calls) {
        if (c.in_lambda) continue;
        if (IsCondVarWait(c) || IsItemLockOp(c)) may_block[i] = 1;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        for (const CallSite& c : m.functions[i].calls) {
          if (c.in_lambda) continue;
          for (int t : ResolveCallTargets(m, c)) {
            for (const std::string& node : may_acquire[t]) {
              if (may_acquire[i].insert(node).second) changed = true;
            }
            if (may_block[t] && !may_block[i]) {
              may_block[i] = 1;
              changed = true;
            }
          }
        }
      }
    }
  }

  // --- phase 3: replay each body against its live held set ---------------
  // This pass reasons about the synchronous body only, so every query uses
  // lambda == -1; the shared ComputeHeldIntervals records lambda intervals
  // too (the shared-state pass needs them).
  std::vector<HeldInterval> HeldIntervals(const FunctionInfo& fn) const {
    return ComputeHeldIntervals(m, fn);
  }

  std::set<std::string> HeldAt(const std::vector<HeldInterval>& intervals,
                               size_t tok) const {
    return HeldNodesAt(intervals, tok, -1);
  }

  void RecordObserved(const std::string& held, const std::string& acquired,
                      const std::string& via, const std::string& file,
                      int line) {
    if (held == acquired) return;
    std::string key = "observed|" + held + "|" + acquired;
    bool first = reported.find(key) == reported.end();
    if (first) {
      LockGraph::Edge edge;
      edge.from = held;
      edge.to = acquired;
      edge.kind = "observed";
      edge.via = via;
      edge.file = file;
      edge.line = line;
      graph.edges.push_back(edge);
    }
    std::ostringstream msg;
    if (DeclaredPath(acquired, held)) {
      msg << "acquires '" << acquired << "' while holding '" << held
          << "', contradicting the declared order (" << acquired
          << " is MR_ACQUIRED_BEFORE " << held << ")";
    } else if (!DeclaredPath(held, acquired)) {
      msg << "acquires '" << acquired << "' while holding '" << held
          << "' with no declared MR_ACQUIRED_BEFORE order between them";
    } else {
      reported.insert(key);
      return;  // covered by a declared edge
    }
    if (!via.empty()) msg << " (via '" << via << "')";
    Report(key, file, line, msg.str());
  }

  void ReplayFunction(const FunctionInfo& fn) {
    std::vector<HeldInterval> intervals = HeldIntervals(fn);

    // Direct acquisitions while something else is held. Lambda-scope
    // intervals are skipped: a continuation's acquisitions replay against
    // its own scope, not its creator's.
    for (const HeldInterval& h : intervals) {
      if (h.lambda != -1) continue;
      std::set<std::string> held = HeldAt(intervals, h.from);
      for (const std::string& other : held) {
        int line = fn.line;
        std::string file = fn.file;
        for (const ScopedAcquire& sa : fn.scoped_acquires) {
          if (sa.tok == h.from) {
            line = sa.line;
            if (sa.file_index >= 0) file = m.files[sa.file_index].path;
            break;
          }
        }
        for (const CallSite& c : fn.calls) {
          if (c.tok == h.from) {
            line = c.line;
            file = FileOf(c);
            break;
          }
        }
        RecordObserved(other, h.node, "", file, line);
      }
    }

    for (const CallSite& c : fn.calls) {
      if (c.in_lambda) continue;
      std::set<std::string> held = HeldAt(intervals, c.tok);
      if (held.empty()) continue;

      if (IsCondVarWait(c)) {
        // The wait releases its own mutex; anything else stays held while
        // the thread sleeps.
        std::string arg = CallLastIdentArg(m, c);
        std::string waited;
        if (!arg.empty() && !fn.cls.empty() &&
            IsCapabilityType(m.FieldType(fn.cls, arg))) {
          waited = m.ResolveAlias(fn.cls) + "::" + arg;
        }
        std::set<std::string> blocked = held;
        blocked.erase(waited);
        if (waited.empty() && blocked.size() < 2) continue;  // can't tell
        if (blocked.empty()) continue;
        std::ostringstream msg;
        msg << "'" << fn.qual() << "' blocks on " << c.receiver_type
            << "::" << c.callee << " while holding ";
        bool sep = false;
        for (const std::string& b : blocked) {
          if (sep) msg << ", ";
          msg << "'" << b << "'";
          sep = true;
        }
        msg << " — a waker needing that mutex deadlocks";
        Report("wait|" + fn.key + "|" + std::to_string(c.tok), FileOf(c),
               c.line, msg.str());
        continue;
      }

      if (IsItemLockOp(c)) {
        std::ostringstream msg;
        msg << "item-lock operation '" << c.receiver_type << "::" << c.callee
            << "' under mutex ";
        bool sep = false;
        for (const std::string& b : held) {
          if (sep) msg << ", ";
          msg << "'" << b << "'";
          sep = true;
        }
        msg << " — waiter enqueue and grant callbacks belong on the "
               "lock-release path, outside any mutex";
        Report("item|" + fn.key + "|" + std::to_string(c.tok), FileOf(c),
               c.line, msg.str());
        continue;
      }

      // Interprocedural: edges to everything the callee may acquire, plus a
      // finding if the callee can block.
      for (int t : ResolveCallTargets(m, c)) {
        const FunctionInfo& callee = m.functions[t];
        for (const std::string& node : may_acquire[t]) {
          for (const std::string& h : held) {
            RecordObserved(h, node, callee.qual(), FileOf(c), c.line);
          }
        }
        if (may_block[t]) {
          std::ostringstream msg;
          msg << "call to '" << callee.qual()
              << "' may block (CondVar wait or item-lock op) while holding ";
          bool sep = false;
          for (const std::string& b : held) {
            if (sep) msg << ", ";
            msg << "'" << b << "'";
            sep = true;
          }
          Report("blockvia|" + fn.key + "|" + std::to_string(c.tok),
                 FileOf(c), c.line, msg.str());
        }
      }
    }
  }

  void Run() {
    CollectDeclared();
    CheckDeclaredAcyclic();
    ComputeSummaries();
    for (const FunctionInfo& fn : m.functions) ReplayFunction(fn);
  }
};

void JsonEscapeTo(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

LockGraph BuildLockGraph(const Model& model, const CheckOptions& opts,
                         std::vector<Finding>* findings) {
  LockOrderPass pass{model, opts, findings, {}, {}, {}, {}, {}};
  if (opts.check_lock_order) pass.Run();
  return std::move(pass.graph);
}

void WriteLockGraphDot(const LockGraph& graph, std::ostream& os) {
  os << "digraph lock_order {\n";
  os << "  rankdir=LR;\n";
  for (const std::string& n : graph.nodes) {
    os << "  \"" << n << "\";\n";
  }
  for (const LockGraph::Edge& e : graph.edges) {
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"" << e.kind;
    if (!e.via.empty()) os << " via " << e.via;
    os << "\"";
    if (e.kind == "observed") os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
}

void WriteLockGraphJson(const LockGraph& graph, std::ostream& os) {
  os << "{\n  \"nodes\": [";
  bool sep = false;
  for (const std::string& n : graph.nodes) {
    if (sep) os << ", ";
    os << "\"";
    JsonEscapeTo(n, os);
    os << "\"";
    sep = true;
  }
  os << "],\n  \"edges\": [\n";
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    const LockGraph::Edge& e = graph.edges[i];
    os << "    {\"from\": \"";
    JsonEscapeTo(e.from, os);
    os << "\", \"to\": \"";
    JsonEscapeTo(e.to, os);
    os << "\", \"kind\": \"" << e.kind << "\", \"via\": \"";
    JsonEscapeTo(e.via, os);
    os << "\", \"file\": \"";
    JsonEscapeTo(e.file, os);
    os << "\", \"line\": " << e.line << "}";
    os << (i + 1 < graph.edges.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace analyze
}  // namespace miniraid

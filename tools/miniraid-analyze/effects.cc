// Protocol-effect pass: effect summaries per MsgType handler.
//
// The dispatcher (`Site::OnMessage`) switches on MsgType; each case region is
// a protocol handler. Its effect summary is the union of effect tokens
// produced by the region's calls and everything they reach synchronously
// (call-graph closure via ResolveCallTargets). Lambda bodies are excluded on
// both sides: a timer continuation or posted closure is a *future* step of
// the protocol, not part of the handler's synchronous effect.
//
// Effect vocabulary (mirrors src/check/abstract_model.cc's action alphabet;
// see AbstractActionVocabulary() and the consistency test in
// tests/check_abstract_test.cc):
//
//   send:<kEnumerator>   a payload of that MsgType is transmitted (SendTo;
//                        payload classified from the last argument's type,
//                        through std::move and braced construction)
//   faillock.*           FailLockTable mutations (set / clear / merge)
//   session.*            SessionVector writes (set / mark_down / mark_up /
//                        merge)
//   lockmgr.*            item-lock manager ops (acquire / release / cancel /
//                        pin)
//   outcome.record       transaction-outcome cache writes
//
// The computed map is diffed against a checked-in golden
// (tools/miniraid-analyze/effects_golden.txt); any drift — a handler gaining
// or losing an effect class, appearing, or disappearing — is a
// "protocol-effect" finding, so implementation drift from the verified
// abstract model fails the build instead of surfacing as a checker-smoke
// surprise.

#include <algorithm>
#include <sstream>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

// Effect tokens a single call produces, ignoring the call graph.
void DirectEffects(const Model& m, const CheckOptions& opts,
                   const CallSite& c, std::set<std::string>* out) {
  if (c.callee == opts.send_function && !opts.send_function.empty()) {
    std::string payload = m.ResolveAlias(c.last_arg_type);
    std::string enumerator;
    auto alias = opts.codec_aliases.find(payload);
    if (alias != opts.codec_aliases.end()) {
      enumerator = alias->second;
    } else if (payload.size() > 4 &&
               payload.compare(payload.size() - 4, 4, "Args") == 0) {
      enumerator = "k";
      enumerator.append(payload, 0, payload.size() - 4);
    }
    out->insert(enumerator.empty() ? "send:?" : "send:" + enumerator);
    return;
  }
  if (!c.is_member || c.receiver_type.empty()) return;
  std::string recv = m.ResolveAlias(c.receiver_type);
  for (const EffectRule& rule : opts.effect_rules) {
    if (rule.method != c.callee) continue;
    const std::string& target =
        rule.receiver.empty() ? opts.effect_class : rule.receiver;
    if (m.DerivesFrom(recv, target)) out->insert(rule.effect);
  }
}

struct EffectPass {
  const Model& m;
  const CheckOptions& opts;
  std::vector<std::set<std::string>> summaries;  // per function index

  void ComputeSummaries() {
    size_t n = m.functions.size();
    summaries.assign(n, {});
    for (size_t i = 0; i < n; ++i) {
      for (const CallSite& c : m.functions[i].calls) {
        if (c.in_lambda) continue;
        DirectEffects(m, opts, c, &summaries[i]);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        for (const CallSite& c : m.functions[i].calls) {
          if (c.in_lambda) continue;
          if (c.callee == opts.send_function) continue;  // already counted
          for (int t : ResolveCallTargets(m, c)) {
            for (const std::string& e : summaries[t]) {
              if (summaries[i].insert(e).second) changed = true;
            }
          }
        }
      }
    }
  }

  EffectMap Build() {
    EffectMap map;
    ComputeSummaries();
    const FunctionInfo* dispatcher = nullptr;
    for (const FunctionInfo& fn : m.functions) {
      if (fn.cls == opts.effect_class && fn.name == opts.dispatch_function) {
        dispatcher = &fn;
        break;
      }
    }
    if (dispatcher == nullptr) return map;
    map.file = dispatcher->file;
    map.line = dispatcher->line;

    for (const SwitchInfo& sw : dispatcher->switches) {
      std::vector<CaseLabel> labels;
      for (const CaseLabel& c : sw.cases) {
        if (opts.dispatch_enum.empty() ||
            c.enum_qual == opts.dispatch_enum) {
          labels.push_back(c);
        }
      }
      if (labels.empty()) continue;
      std::sort(labels.begin(), labels.end(),
                [](const CaseLabel& a, const CaseLabel& b) {
                  return a.tok < b.tok;
                });
      for (const CaseLabel& label : labels) {
        map.handlers[label.enumerator];  // ensure pure handlers appear
        map.handler_lines[label.enumerator] = label.line;
      }
      for (const CallSite& call : dispatcher->calls) {
        if (call.in_lambda) continue;
        // Attribute the call to the case region containing it (same
        // token-position technique as the codec-symmetry decoder regions).
        const CaseLabel* owner = nullptr;
        for (const CaseLabel& label : labels) {
          if (label.tok < call.tok) {
            owner = &label;
          } else {
            break;
          }
        }
        if (owner == nullptr) continue;
        std::set<std::string>* effects = &map.handlers[owner->enumerator];
        DirectEffects(m, opts, call, effects);
        if (call.callee != opts.send_function) {
          for (int t : ResolveCallTargets(m, call)) {
            effects->insert(summaries[t].begin(), summaries[t].end());
          }
        }
      }
    }
    return map;
  }
};

}  // namespace

EffectMap BuildEffectMap(const Model& model, const CheckOptions& opts) {
  EffectPass pass{model, opts, {}};
  return pass.Build();
}

std::string FormatEffectMap(const EffectMap& map) {
  std::ostringstream os;
  for (const auto& kv : map.handlers) {
    os << kv.first << ":";
    if (kv.second.empty()) {
      os << " -";
    } else {
      for (const std::string& e : kv.second) os << " " << e;
    }
    os << "\n";
  }
  return os.str();
}

void WriteEffectMapJson(const EffectMap& map, std::ostream& os) {
  auto escape = [&os](const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
  };
  os << "{\n  \"dispatcher\": {\"file\": \"";
  escape(map.file);
  os << "\", \"line\": " << map.line << "},\n  \"handlers\": {\n";
  size_t i = 0;
  for (const auto& kv : map.handlers) {
    os << "    \"" << kv.first << "\": [";
    bool sep = false;
    for (const std::string& e : kv.second) {
      if (sep) os << ", ";
      os << "\"";
      escape(e);
      os << "\"";
      sep = true;
    }
    os << "]" << (++i < map.handlers.size() ? ",\n" : "\n");
  }
  os << "  }\n}\n";
}

// Parses golden text: `kEnumerator: effect effect` per line, "-" for a pure
// handler, '#' starts a comment, blank lines ignored.
static std::map<std::string, std::set<std::string>> ParseGolden(
    const std::string& text) {
  std::map<std::string, std::set<std::string>> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    name.erase(0, name.find_first_not_of(" \t"));
    name.erase(name.find_last_not_of(" \t") + 1);
    if (name.empty()) continue;
    std::set<std::string>& effects = out[name];
    std::istringstream rest(line.substr(colon + 1));
    std::string tok;
    while (rest >> tok) {
      if (tok != "-") effects.insert(tok);
    }
  }
  return out;
}

void DiffEffectsAgainstGolden(const EffectMap& map, const std::string& golden,
                              std::vector<Finding>* findings) {
  std::map<std::string, std::set<std::string>> want = ParseGolden(golden);
  auto at = [&map](const std::string& handler) {
    auto it = map.handler_lines.find(handler);
    return it != map.handler_lines.end() ? it->second : map.line;
  };
  for (const auto& kv : map.handlers) {
    auto wit = want.find(kv.first);
    if (wit == want.end()) {
      Finding f;
      f.rule = "protocol-effect";
      f.file = map.file;
      f.line = at(kv.first);
      f.message = "handler " + kv.first +
                  " is not in the effect golden — new protocol step? update "
                  "effects_golden.txt and the abstract model";
      findings->push_back(std::move(f));
      continue;
    }
    std::set<std::string> missing, unexpected;
    for (const std::string& e : wit->second) {
      if (!kv.second.count(e)) missing.insert(e);
    }
    for (const std::string& e : kv.second) {
      if (!wit->second.count(e)) unexpected.insert(e);
    }
    if (missing.empty() && unexpected.empty()) continue;
    std::ostringstream msg;
    msg << "handler " << kv.first << " drifts from the effect golden:";
    if (!unexpected.empty()) {
      msg << " gained {";
      bool sep = false;
      for (const std::string& e : unexpected) {
        if (sep) msg << ", ";
        msg << e;
        sep = true;
      }
      msg << "}";
    }
    if (!missing.empty()) {
      msg << " lost {";
      bool sep = false;
      for (const std::string& e : missing) {
        if (sep) msg << ", ";
        msg << e;
        sep = true;
      }
      msg << "}";
    }
    Finding f;
    f.rule = "protocol-effect";
    f.file = map.file;
    f.line = at(kv.first);
    f.message = msg.str();
    findings->push_back(std::move(f));
  }
  for (const auto& kv : want) {
    if (map.handlers.count(kv.first)) continue;
    Finding f;
    f.rule = "protocol-effect";
    f.file = map.file;
    f.line = map.line;
    f.message = "handler " + kv.first +
                " is in the effect golden but has no dispatch case";
    findings->push_back(std::move(f));
  }
}

}  // namespace analyze
}  // namespace miniraid

// The frontend-independent analysis passes. All of them consume the Model
// built by either frontend:
//
//   cross-context-call  - call-graph reachability from every MR_RUNS_ON
//                         entry point; a root confined to one context must
//                         never reach a function confined to another
//                         (MR_RUNS_ON(any) callees are always permitted,
//                         annotated callees re-anchor the search).
//   context-coverage    - every public method of a class that annotates at
//                         least one method must itself be annotated, so the
//                         call-graph pass has no blind entry points.
//   blocking-call       - no sleep / blocking syscall / CondVar::Wait is
//                         reachable from a managing-, loop-, or any-context
//                         entry point.
//   fail-lock-mutation  - FailLockTable mutators called outside the owning
//   session-mutation      module (receiver types resolved through aliases,
//                         references, fields, and accessor chains).
//   msg-dispatch        - switches over MsgType without a default cover
//                         every enumerator, and every enumerator is handled
//                         by some OnMessage dispatch switch.
//   codec-symmetry      - encoder writes match decoder reads field-by-field
//                         for every payload struct, including vector element
//                         helpers (PutFoo/GetFoo pairs).

#include <algorithm>
#include <sstream>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Join(const std::set<std::string>& items, const char* sep) {
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += sep;
    out += s;
  }
  return out;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Returns the text of the last top-level argument of the call whose callee
// identifier is at `tok` — used to recover the element helper passed to
// PutVector / GetVector. Empty if the argument is not a lone identifier.
std::string LastArg(const SourceFile& file, size_t tok) {
  const std::vector<Token>& t = file.tokens;
  size_t open = tok + 1;
  if (open >= t.size() || t[open].text != "(") return "";
  int depth = 0;
  size_t last_start = open + 1;
  size_t close = open;
  for (size_t i = open; i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") {
      ++depth;
    } else if (x == ")" || x == "]" || x == "}") {
      if (--depth == 0) {
        close = i;
        break;
      }
    } else if (x == "," && depth == 1) {
      last_start = i + 1;
    }
  }
  if (close <= last_start) return "";
  if (close - last_start == 1 && t[last_start].kind == Token::kIdent) {
    return t[last_start].text;
  }
  return "";
}

class Checker {
 public:
  Checker(const Model& m, const CheckOptions& opts) : m_(m), opts_(opts) {
    for (const auto& kv : m_.classes) {
      for (const std::string& b : kv.second.bases) {
        derived_[b].push_back(kv.first);
      }
    }
  }

  std::vector<Finding> Run() {
    if (opts_.check_contexts) {
      CheckCrossContext();
      CheckCoverage();
      CheckBlocking();
    }
    CheckOwnership();
    CheckDispatch();
    if (opts_.check_codec) CheckCodec();
    std::sort(findings_.begin(), findings_.end());
    return std::move(findings_);
  }

 private:
  const FunctionInfo& Fn(int i) const { return m_.functions[i]; }

  void Report(const std::string& rule, const std::string& file, int line,
              const std::string& message) {
    std::ostringstream key;
    key << rule << '|' << file << '|' << line << '|' << message;
    if (!reported_.insert(key.str()).second) return;
    Finding f;
    f.rule = rule;
    f.file = file;
    f.line = line;
    f.message = message;
    findings_.push_back(std::move(f));
  }

  std::string FileOf(const CallSite& c) const {
    return c.file_index >= 0 ? m_.files[c.file_index].path : "";
  }

  std::vector<int> Targets(const CallSite& c) const {
    return ResolveCallTargets(m_, c);
  }

  // ---------------- cross-context-call ----------------
  void CheckCrossContext() {
    for (size_t r = 0; r < m_.functions.size(); ++r) {
      const FunctionInfo& root = Fn(static_cast<int>(r));
      if (root.ctx == Ctx::kNone) continue;
      std::set<int> visited;
      std::vector<int> stack{static_cast<int>(r)};
      visited.insert(static_cast<int>(r));
      while (!stack.empty()) {
        const FunctionInfo& fn = Fn(stack.back());
        stack.pop_back();
        for (const CallSite& call : fn.calls) {
          // Lambda bodies are separate execution scopes: the Post /
          // PostAndWait marshalling idiom moves them to another context by
          // design, so the confinement pass does not follow them.
          if (call.in_lambda) continue;
          for (int t : Targets(call)) {
            const FunctionInfo& callee = Fn(t);
            if (callee.ctx != Ctx::kNone) {
              if (callee.ctx != Ctx::kAny && callee.ctx != root.ctx) {
                std::ostringstream msg;
                msg << "'" << root.qual() << "' runs on the "
                    << CtxName(root.ctx) << " context but ";
                if (&fn != &root) msg << "transitively (via '" << fn.qual()
                                      << "') ";
                msg << "calls '" << callee.qual() << "', which is confined to "
                    << "the " << CtxName(callee.ctx) << " context";
                Report("cross-context-call", FileOf(call), call.line,
                       msg.str());
              }
              continue;  // annotated callee re-anchors the search
            }
            if (callee.is_defn && visited.insert(t).second) stack.push_back(t);
          }
        }
      }
    }
  }

  // ---------------- context-coverage ----------------
  void CheckCoverage() {
    std::set<std::string> aware;
    for (const FunctionInfo& fn : m_.functions) {
      if (!fn.cls.empty() && fn.ctx != Ctx::kNone && !fn.ctx_inherited) {
        aware.insert(fn.cls);
      }
    }
    for (const FunctionInfo& fn : m_.functions) {
      if (fn.cls.empty() || !aware.count(fn.cls)) continue;
      if (!fn.is_public || fn.is_ctor_dtor || fn.is_operator) continue;
      if (fn.ctx != Ctx::kNone) continue;
      Report("context-coverage", fn.file, fn.line,
             "public method '" + fn.qual() + "' of context-annotated class '" +
                 fn.cls + "' lacks an MR_RUNS_ON annotation");
    }
  }

  // ---------------- blocking-call ----------------
  bool IsBlocking(const CallSite& c) const {
    if (c.is_member) {
      if (c.receiver_type.empty()) return false;
      auto it = opts_.blocking_members.find(m_.ResolveAlias(c.receiver_type));
      return it != opts_.blocking_members.end() && it->second.count(c.callee);
    }
    return opts_.blocking_free.count(c.callee) > 0;
  }

  void CheckBlocking() {
    for (size_t r = 0; r < m_.functions.size(); ++r) {
      const FunctionInfo& root = Fn(static_cast<int>(r));
      if (root.ctx != Ctx::kManaging && root.ctx != Ctx::kLoop &&
          root.ctx != Ctx::kAny) {
        continue;
      }
      std::set<int> visited;
      std::vector<int> stack{static_cast<int>(r)};
      visited.insert(static_cast<int>(r));
      while (!stack.empty()) {
        const FunctionInfo& fn = Fn(stack.back());
        stack.pop_back();
        // The blocking pass *does* follow lambda bodies: a lambda created on
        // a loop thread (timer callbacks, deferred work) runs on that loop.
        for (const CallSite& call : fn.calls) {
          if (IsBlocking(call)) {
            std::ostringstream msg;
            msg << "blocking call '" << call.callee << "' is reachable from "
                << CtxName(root.ctx) << "-context entry '" << root.qual()
                << "'";
            if (&fn != &root) msg << " via '" << fn.qual() << "'";
            Report("blocking-call", FileOf(call), call.line, msg.str());
            continue;
          }
          for (int t : Targets(call)) {
            const FunctionInfo& callee = Fn(t);
            if (callee.ctx != Ctx::kNone) continue;  // re-anchored elsewhere
            if (callee.is_defn && visited.insert(t).second) stack.push_back(t);
          }
        }
      }
    }
  }

  // ---------------- fail-lock-mutation / session-mutation ----------------
  void CheckOwnership() {
    for (const FunctionInfo& fn : m_.functions) {
      for (const CallSite& call : fn.calls) {
        if (!call.is_member || call.receiver_type.empty()) continue;
        std::string recv = m_.ResolveAlias(call.receiver_type);
        for (const OwnershipRule& rule : opts_.ownership) {
          if (!rule.mutators.count(call.callee)) continue;
          if (!m_.DerivesFrom(recv, rule.receiver)) continue;
          std::string file = FileOf(call);
          if (rule.home_basenames.count(Basename(file))) continue;
          Report(rule.rule, file, call.line,
                 "'" + rule.receiver + "::" + call.callee +
                     "' mutates protocol state owned by the Site engine "
                     "(allowed only in: " +
                     Join(rule.home_basenames, ", ") + ")");
        }
      }
    }
  }

  // ---------------- msg-dispatch ----------------
  void CheckDispatch() {
    if (opts_.dispatch_enum.empty()) return;
    const EnumInfo* target = nullptr;
    for (const EnumInfo& e : m_.enums) {
      if (e.name == opts_.dispatch_enum) {
        if (target != nullptr) return;  // ambiguous: bail out
        target = &e;
      }
    }
    if (target == nullptr) return;
    std::set<std::string> all(target->enumerators.begin(),
                              target->enumerators.end());
    std::set<std::string> handled;
    for (const FunctionInfo& fn : m_.functions) {
      for (const SwitchInfo& sw : fn.switches) {
        std::set<std::string> cases;
        bool relevant = false;
        for (const CaseLabel& c : sw.cases) {
          if (c.enum_qual == opts_.dispatch_enum) {
            relevant = true;
            cases.insert(c.enumerator);
          }
        }
        if (!relevant) continue;
        if (fn.name == opts_.dispatch_function) {
          handled.insert(cases.begin(), cases.end());
        }
        if (sw.has_default) continue;
        std::set<std::string> missing;
        for (const std::string& e : all) {
          if (!cases.count(e)) missing.insert(e);
        }
        if (!missing.empty()) {
          Report("msg-dispatch",
                 sw.file_index >= 0 ? m_.files[sw.file_index].path : fn.file,
                 sw.line,
                 "switch on " + opts_.dispatch_enum + " in '" + fn.qual() +
                     "' has no default and does not handle: " +
                     Join(missing, ", "));
        }
      }
    }
    for (const std::string& e : all) {
      if (!handled.count(e)) {
        Report("msg-dispatch", target->file, target->line,
               opts_.dispatch_enum + "::" + e + " is not handled by any '" +
                   opts_.dispatch_function + "' dispatch switch");
      }
    }
  }

  // ---------------- codec-symmetry ----------------
  struct Seq {
    std::vector<CodecOp> ops;
    std::string file;
    int line = 0;
  };

  Seq CollectOps(const FunctionInfo& fn, const char* prefix) const {
    Seq seq;
    seq.file = fn.file;
    seq.line = fn.line;
    for (const CallSite& call : fn.calls) {
      if (!StartsWith(call.callee, prefix)) continue;
      CodecOp op;
      op.kind = call.callee.substr(3);
      op.line = call.line;
      if (op.kind == "Vector") {
        op.helper = call.last_ident_arg;
        if (op.helper.empty() && call.file_index >= 0) {
          op.helper = LastArg(m_.files[call.file_index], call.tok);
        }
      }
      seq.ops.push_back(std::move(op));
    }
    return seq;
  }

  static std::string HelperSuffix(const std::string& helper) {
    if (StartsWith(helper, "Put") || StartsWith(helper, "Get")) {
      return helper.substr(3);
    }
    return helper;
  }

  void CompareSeqs(const std::string& what, const Seq& enc, const Seq& dec) {
    if (enc.ops.size() != dec.ops.size()) {
      std::ostringstream msg;
      msg << "codec asymmetry for " << what << ": encoder writes "
          << enc.ops.size() << " field(s) but decoder reads "
          << dec.ops.size();
      Report("codec-symmetry", dec.file, dec.line ? dec.line : enc.line,
             msg.str());
      return;
    }
    for (size_t i = 0; i < enc.ops.size(); ++i) {
      const CodecOp& e = enc.ops[i];
      const CodecOp& d = dec.ops[i];
      if (e.kind != d.kind) {
        std::ostringstream msg;
        msg << "codec asymmetry for " << what << ": field #" << (i + 1)
            << " is written as " << e.kind << " but read as " << d.kind;
        Report("codec-symmetry", dec.file, d.line ? d.line : dec.line,
               msg.str());
        continue;
      }
      if (e.kind == "Vector" && !e.helper.empty() && !d.helper.empty() &&
          HelperSuffix(e.helper) != HelperSuffix(d.helper)) {
        std::ostringstream msg;
        msg << "codec asymmetry for " << what << ": field #" << (i + 1)
            << " vector elements are written with " << e.helper
            << " but read with " << d.helper;
        Report("codec-symmetry", dec.file, d.line ? d.line : dec.line,
               msg.str());
      }
    }
  }

  void CheckCodec() {
    // Encoder sequences: PayloadEncoder::operator()(const XArgs&).
    std::map<std::string, Seq> encode;
    // Helper pairs: PutFoo(Encoder&, ...) / GetFoo(Decoder&, ...).
    std::map<std::string, Seq> put_helpers, get_helpers;
    const FunctionInfo* decode_fn = nullptr;
    for (const FunctionInfo& fn : m_.functions) {
      if (fn.cls == "PayloadEncoder" && fn.name == "operator()" &&
          !fn.param0_type.empty()) {
        encode[fn.param0_type] = CollectOps(fn, "Put");
      } else if (fn.cls.empty() && fn.name == "DecodePayload") {
        decode_fn = &fn;
      } else if (fn.cls.empty() && StartsWith(fn.name, "Put") &&
                 fn.name.size() > 3 && fn.param0_type == "Encoder") {
        put_helpers[fn.name.substr(3)] = CollectOps(fn, "Put");
      } else if (fn.cls.empty() && StartsWith(fn.name, "Get") &&
                 fn.name.size() > 3 && fn.param0_type == "Decoder") {
        get_helpers[fn.name.substr(3)] = CollectOps(fn, "Get");
      }
    }
    if (encode.empty() && decode_fn == nullptr) return;

    // Decoder sequences: Get* calls grouped by the MsgType case label they
    // fall under, by token position.
    std::map<std::string, Seq> decode;
    if (decode_fn != nullptr) {
      for (const SwitchInfo& sw : decode_fn->switches) {
        std::vector<CaseLabel> labels;
        for (const CaseLabel& c : sw.cases) {
          if (c.enum_qual == opts_.dispatch_enum || opts_.dispatch_enum.empty())
            labels.push_back(c);
        }
        if (labels.empty()) continue;
        std::sort(labels.begin(), labels.end(),
                  [](const CaseLabel& a, const CaseLabel& b) {
                    return a.tok < b.tok;
                  });
        std::string sw_file = sw.file_index >= 0
                                  ? m_.files[sw.file_index].path
                                  : decode_fn->file;
        for (size_t i = 0; i < labels.size(); ++i) {
          Seq& seq = decode[labels[i].enumerator];
          seq.file = sw_file;
          seq.line = labels[i].line;
        }
        for (const CallSite& call : decode_fn->calls) {
          if (!StartsWith(call.callee, "Get")) continue;
          // Find the case region containing this call.
          const CaseLabel* owner = nullptr;
          for (const CaseLabel& c : labels) {
            if (c.tok < call.tok) {
              owner = &c;
            } else {
              break;
            }
          }
          if (owner == nullptr) continue;
          CodecOp op;
          op.kind = call.callee.substr(3);
          op.line = call.line;
          if (op.kind == "Vector") {
            op.helper = call.last_ident_arg;
            if (op.helper.empty() && call.file_index >= 0) {
              op.helper = LastArg(m_.files[call.file_index], call.tok);
            }
          }
          decode[owner->enumerator].ops.push_back(std::move(op));
        }
      }
    }

    for (const auto& kv : encode) {
      std::string enumerator;
      auto alias = opts_.codec_aliases.find(kv.first);
      if (alias != opts_.codec_aliases.end()) {
        enumerator = alias->second;
      } else if (EndsWith(kv.first, "Args")) {
        enumerator = "k" + kv.first.substr(0, kv.first.size() - 4);
      } else {
        continue;
      }
      auto dit = decode.find(enumerator);
      if (dit == decode.end()) {
        if (decode_fn != nullptr) {
          Report("codec-symmetry", kv.second.file, kv.second.line,
                 "encoder overload for " + kv.first +
                     " has no matching decoder case MsgType::" + enumerator);
        }
        continue;
      }
      CompareSeqs(kv.first, kv.second, dit->second);
    }
    for (const auto& kv : decode) {
      std::string args = kv.first.substr(1) + "Args";
      for (const auto& alias : opts_.codec_aliases) {
        if (alias.second == kv.first) args = alias.first;
      }
      if (!encode.empty() && !encode.count(args)) {
        Report("codec-symmetry", kv.second.file, kv.second.line,
               "decoder case MsgType::" + kv.first +
                   " has no matching encoder overload for " + args);
      }
    }
    for (const auto& kv : put_helpers) {
      auto git = get_helpers.find(kv.first);
      if (git == get_helpers.end()) {
        Report("codec-symmetry", kv.second.file, kv.second.line,
               "codec helper Put" + kv.first + " has no Get" + kv.first +
                   " counterpart");
        continue;
      }
      CompareSeqs("codec helper pair Put/Get" + kv.first, kv.second,
                  git->second);
    }
    for (const auto& kv : get_helpers) {
      if (!put_helpers.count(kv.first)) {
        Report("codec-symmetry", kv.second.file, kv.second.line,
               "codec helper Get" + kv.first + " has no Put" + kv.first +
                   " counterpart");
      }
    }
  }

  const Model& m_;
  const CheckOptions& opts_;
  std::map<std::string, std::vector<std::string>> derived_;
  std::set<std::string> reported_;
  std::vector<Finding> findings_;
};

}  // namespace

// Call targets. An annotated method found through the receiver type is a
// contract: no virtual fan-out. An unannotated method fans out to every
// derived override so indirect dispatch is not a blind spot.
std::vector<int> ResolveCallTargets(const Model& m, const CallSite& c) {
  std::vector<int> out;
  if (c.is_member) {
    if (c.receiver_type.empty()) return out;
    std::string recv = m.ResolveAlias(c.receiver_type);
    int idx = m.FindMethod(recv, c.callee);
    if (idx < 0) return out;
    out.push_back(idx);
    if (m.functions[idx].ctx == Ctx::kNone) {
      const std::string& owner = m.functions[idx].cls;
      auto it = m.by_name.find(c.callee);
      if (it != m.by_name.end()) {
        for (int cand : it->second) {
          if (cand == idx || m.functions[cand].cls.empty()) continue;
          if (m.DerivesFrom(m.functions[cand].cls, owner)) out.push_back(cand);
        }
      }
    }
    return out;
  }
  auto it = m.by_name.find(c.callee);
  if (it != m.by_name.end()) {
    for (int cand : it->second) {
      if (m.functions[cand].cls.empty()) out.push_back(cand);
    }
  }
  return out;
}

std::string CallLastIdentArg(const Model& m, const CallSite& c) {
  if (!c.last_ident_arg.empty()) return c.last_ident_arg;
  if (c.file_index >= 0) return LastArg(m.files[c.file_index], c.tok);
  return "";
}

CheckOptions CheckOptions::Defaults() {
  CheckOptions opts;
  opts.ownership.push_back(OwnershipRule{
      "fail-lock-mutation",
      "FailLockTable",
      {"Set", "Clear", "MergeFrom"},
      {"site.cc", "site.h", "fail_locks.cc", "fail_locks.h"}});
  opts.ownership.push_back(OwnershipRule{
      "session-mutation",
      "SessionVector",
      {"Set", "MarkDown", "MarkUp", "MergeFrom"},
      {"site.cc", "site.h", "session_vector.cc", "session_vector.h"}});
  opts.blocking_free = {"sleep_for", "sleep_until", "usleep",  "sleep",
                        "nanosleep", "recv",        "send",    "accept",
                        "connect",   "poll",        "select",  "fsync",
                        "fdatasync", "system"};
  opts.blocking_members = {{"CondVar", {"Wait", "WaitFor", "WaitUntil"}},
                           {"thread", {"join"}}};
  opts.dispatch_enum = "MsgType";
  opts.dispatch_function = "OnMessage";
  opts.codec_aliases = {{"TxnResult", "kTxnReply"}};
  // Item-lock layer ops that must not run under a mutex: Acquire enqueues a
  // waiter (a logical block point), ReleaseAll/CancelWaits invoke grant
  // callbacks synchronously on the lock-release path.
  opts.item_lock_members = {
      {"LockManager", {"Acquire", "ReleaseAll", "CancelWaits"}}};
  opts.effect_class = "Site";
  opts.send_function = "SendTo";
  opts.effect_rules = {
      {"FailLockTable", "Set", "faillock.set"},
      {"FailLockTable", "Clear", "faillock.clear"},
      {"FailLockTable", "MergeFrom", "faillock.merge"},
      {"SessionVector", "Set", "session.set"},
      {"SessionVector", "MarkDown", "session.mark_down"},
      {"SessionVector", "MarkUp", "session.mark_up"},
      {"SessionVector", "MergeFrom", "session.merge"},
      {"LockManager", "Acquire", "lockmgr.acquire"},
      {"LockManager", "ReleaseAll", "lockmgr.release"},
      {"LockManager", "CancelWaits", "lockmgr.cancel"},
      {"LockManager", "Pin", "lockmgr.pin"},
      {"Site", "RecordOutcome", "outcome.record"},
  };
  // Deferred-execution sinks: a lambda handed to one of these runs later on
  // the stated context. PostAndWait and Drive complete before returning
  // (deferred = false), which is exactly why stack captures are legal there.
  opts.sinks = {
      {"EventLoop", "Post", Ctx::kLoop, true},
      {"EventLoop", "ScheduleAfter", Ctx::kLoop, true},
      {"EventLoop", "PostAndWait", Ctx::kLoop, false},
      {"Cluster", "Post", Ctx::kManaging, true},
      {"Cluster", "ScheduleAfter", Ctx::kManaging, true},
      {"Cluster", "SubmitTxn", Ctx::kManaging, true},
      {"Cluster", "Drive", Ctx::kNone, false},
      {"SiteRuntime", "Post", Ctx::kLoop, true},
      {"SiteRuntime", "ScheduleAfter", Ctx::kLoop, true},
  };
  // shared-state: internally synchronized (or lock) field types whose
  // accesses are not race evidence.
  opts.shared_state_exempt_types = {
      "atomic",       "Mutex",      "CondVar",   "once_flag",
      "mutex",        "shared_mutex", "condition_variable",
      "LockManager",  "EventLoop",
  };
  // Member calls that mutate their receiver: `items_.push_back(x)` is a
  // write of `items_` even though no assignment operator appears.
  opts.mutating_members = {
      "push_back", "emplace_back", "pop_back",  "pop_front", "push_front",
      "insert",    "emplace",      "erase",     "clear",     "resize",
      "assign",    "swap",         "reserve",   "Add",       "Record",
      "MergeFrom", "Set",          "Clear",     "Reset",     "append",
  };
  // view-escape vocabulary. `substr` on std::string returns an owning
  // string, so only data()/c_str() yield raw views of a buffer.
  opts.view_types = {"string_view", "Slice", "span"};
  opts.buffer_types = {"string", "vector", "deque", "array", "Buffer"};
  opts.view_source_calls = {"data", "c_str"};
  opts.container_inserts = {"push_back", "emplace_back", "insert", "emplace"};
  return opts;
}

std::vector<Finding> RunChecks(const Model& model, const CheckOptions& opts) {
  Checker checker(model, opts);
  return checker.Run();
}

}  // namespace analyze
}  // namespace miniraid

// Suppression matching and output: clickable file:line diagnostics for
// humans, a JSON findings report for CI artifacts.

#include <map>
#include <set>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

void ApplySuppressions(const Model& model, std::vector<Finding>* findings) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : model.files) by_path[f.path] = &f;
  for (Finding& finding : *findings) {
    auto it = by_path.find(finding.file);
    if (it == by_path.end()) continue;
    auto allow = it->second->allow.find(finding.line);
    if (allow == it->second->allow.end()) continue;
    if (allow->second.count(finding.rule) || allow->second.count("*") ||
        allow->second.count("all")) {
      finding.suppressed = true;
    }
  }
}

int PrintFindings(const std::vector<Finding>& findings, std::ostream& os) {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    ++count;
  }
  return count;
}

namespace {

void JsonEscape(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void WriteJson(const std::vector<Finding>& findings, std::ostream& os) {
  int unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  os << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"rule\": ";
    JsonEscape(f.rule, os);
    os << ", \"file\": ";
    JsonEscape(f.file, os);
    os << ", \"line\": " << f.line << ", \"suppressed\": "
       << (f.suppressed ? "true" : "false") << ", \"message\": ";
    JsonEscape(f.message, os);
    os << "}";
  }
  os << "\n  ],\n  \"total\": " << findings.size()
     << ",\n  \"unsuppressed\": " << unsuppressed << "\n}\n";
}

// Minimal SARIF 2.1.0: one run, one result per unsuppressed finding, rule
// ids deduplicated into the driver descriptor. Enough for code-scanning
// upload; nothing speculative.
void WriteSarif(const std::vector<Finding>& findings, std::ostream& os) {
  std::set<std::string> rules;
  for (const Finding& f : findings) {
    if (!f.suppressed) rules.insert(f.rule);
  }
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\"driver\": {\"name\": \"miniraid-analyze\", "
        "\"rules\": [";
  bool first = true;
  for (const std::string& r : rules) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": ";
    JsonEscape(r, os);
    os << "}";
  }
  os << "]}},\n      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    if (!first) os << ",";
    first = false;
    os << "\n        {\"ruleId\": ";
    JsonEscape(f.rule, os);
    os << ", \"level\": \"error\", \"message\": {\"text\": ";
    JsonEscape(f.message, os);
    os << "}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": ";
    JsonEscape(f.file, os);
    os << "}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
       << "}}}]}";
  }
  os << "\n      ]\n    }\n  ]\n}\n";
}

}  // namespace analyze
}  // namespace miniraid

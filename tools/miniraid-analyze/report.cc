// Suppression matching and output: clickable file:line diagnostics for
// humans, a JSON findings report for CI artifacts.

#include <map>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

void ApplySuppressions(const Model& model, std::vector<Finding>* findings) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : model.files) by_path[f.path] = &f;
  for (Finding& finding : *findings) {
    auto it = by_path.find(finding.file);
    if (it == by_path.end()) continue;
    auto allow = it->second->allow.find(finding.line);
    if (allow == it->second->allow.end()) continue;
    if (allow->second.count(finding.rule) || allow->second.count("*") ||
        allow->second.count("all")) {
      finding.suppressed = true;
    }
  }
}

int PrintFindings(const std::vector<Finding>& findings, std::ostream& os) {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    ++count;
  }
  return count;
}

namespace {

void JsonEscape(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void WriteJson(const std::vector<Finding>& findings, std::ostream& os) {
  int unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  os << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"rule\": ";
    JsonEscape(f.rule, os);
    os << ", \"file\": ";
    JsonEscape(f.file, os);
    os << ", \"line\": " << f.line << ", \"suppressed\": "
       << (f.suppressed ? "true" : "false") << ", \"message\": ";
    JsonEscape(f.message, os);
    os << "}";
  }
  os << "\n  ],\n  \"total\": " << findings.size()
     << ",\n  \"unsuppressed\": " << unsuppressed << "\n}\n";
}

}  // namespace analyze
}  // namespace miniraid

// Token stream for the built-in frontend. Deliberately small: identifiers,
// numbers, string/char literals, multi-char punctuation the indexer cares
// about ("::", "->"), comments (mined for miniraid-lint suppressions), and
// preprocessor lines (skipped wholesale, so macro *definitions* never leak
// tokens while macro *invocations* in normal code are seen verbatim).

#include <cctype>
#include <cstring>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

// Records `// miniraid-lint: allow(rule-a, rule-b)` for `line` and line+1,
// mirroring scripts/miniraid_lint.py (same-line or preceding-line comment).
void ParseAllowComment(const std::string& comment, int line, SourceFile* out) {
  size_t at = comment.find("miniraid-lint:");
  if (at == std::string::npos) return;
  size_t open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inner = comment.substr(open + 6, close - open - 6);
  std::string rule;
  auto flush = [&] {
    if (!rule.empty()) {
      out->allow[line].insert(rule);
      out->allow[line + 1].insert(rule);
      rule.clear();
    }
  };
  for (char c : inner) {
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
  flush();
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

SourceFile LexFile(const std::string& path, const std::string& content) {
  SourceFile out;
  out.path = path;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto push = [&](Token::Kind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out.tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line: skip to end of line, honouring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\n') {
          if (i > 0 && content[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      ParseAllowComment(content.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      size_t start_line = line;
      size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i, end - i);
      ParseAllowComment(body, static_cast<int>(start_line), &out);
      for (char bc : body) {
        if (bc == '\n') ++line;
      }
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t paren = content.find('(', i + 2);
      if (paren != std::string::npos) {
        std::string delim(")");
        delim.append(content, i + 2, paren - i - 2);
        delim.push_back('"');
        size_t end = content.find(delim, paren + 1);
        if (end == std::string::npos) end = n;
        for (size_t k = i; k < end && k < n; ++k) {
          if (content[k] == '\n') ++line;
        }
        push(Token::kString, "\"\"");
        i = (end == n) ? n : end + delim.size();
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i++;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\') ++i;
        if (i < n && content[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(Token::kString, content.substr(start, i - start));
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      push(Token::kIdent, content.substr(start, i - start));
      continue;
    }
    // Number (digits, hex, suffixes, and simple floats).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(content[i]) || content[i] == '.' ||
                       ((content[i] == '+' || content[i] == '-') && i > start &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E')))) {
        ++i;
      }
      push(Token::kNumber, content.substr(start, i - start));
      continue;
    }
    // Punctuation: keep "::" and "->" fused; everything else single-char.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      push(Token::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      push(Token::kPunct, "->");
      i += 2;
      continue;
    }
    push(Token::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

const char* CtxName(Ctx ctx) {
  switch (ctx) {
    case Ctx::kNone:
      return "none";
    case Ctx::kManaging:
      return "managing";
    case Ctx::kLoop:
      return "loop";
    case Ctx::kClient:
      return "client";
    case Ctx::kAny:
      return "any";
  }
  return "none";
}

Ctx ParseCtx(const std::string& name) {
  if (name == "managing") return Ctx::kManaging;
  if (name == "loop") return Ctx::kLoop;
  if (name == "client") return Ctx::kClient;
  if (name == "any") return Ctx::kAny;
  return Ctx::kNone;
}

}  // namespace analyze
}  // namespace miniraid

// Fixture: a justified blocking call on a loop entry, suppressed in place
// (the real tree does this for EventLoop's own idle wait).
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

struct Duration {
  long long ns;
};

void sleep_for(Duration d);

class Site {
 public:
  MR_RUNS_ON(loop) void IdleWait() {
    // The loop's own idle wait is what the loop *is*.
    // miniraid-lint: allow(blocking-call)
    sleep_for(Duration{1});
  }
};

// Fixture: blocking is fine on client-context entries (drivers, dedicated
// IO threads), and loop entries that stay non-blocking are clean.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

struct Duration {
  long long ns;
};

void sleep_for(Duration d);

class Site {
 public:
  MR_RUNS_ON(loop) void Step() { ++steps_; }

 private:
  long long steps_ = 0;
};

MR_RUNS_ON(client) void PollLoop(Site& /*site*/) {
  sleep_for(Duration{1000});  // client context: blocking permitted
}

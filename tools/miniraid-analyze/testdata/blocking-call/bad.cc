// Fixture: blocking calls reachable from loop- and any-context entries —
// directly, transitively through a helper, and inside a lambda (timer
// callbacks run on the loop, so the blocking pass follows lambda bodies).
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

struct Duration {
  long long ns;
};

void sleep_for(Duration d);

class Mutex {};

class CondVar {
 public:
  void Wait(Mutex& mu);
};

class Runtime {
 public:
  template <typename F>
  MR_RUNS_ON(any) void ScheduleAfter(Duration d, F fn) {
    pending_ns_ += d.ns;
    fn();
  }

 private:
  long long pending_ns_ = 0;
};

namespace {

void Helper() { sleep_for(Duration{1}); }

}  // namespace

class Site {
 public:
  MR_RUNS_ON(loop) void DirectSleep() { sleep_for(Duration{1}); }

  MR_RUNS_ON(loop) void TransitiveSleep() { Helper(); }

  MR_RUNS_ON(loop) void CondVarWait() {
    Mutex mu;
    CondVar cv;
    cv.Wait(mu);  // member blocking call, receiver-resolved
  }

  MR_RUNS_ON(loop) void TimerSleep(Runtime& rt) {
    rt.ScheduleAfter(Duration{5}, [] { sleep_for(Duration{1}); });
  }
};

// Fixture: SessionVector mutations outside the Site engine, including
// through a wrapper class member and a pointer receiver.
class SessionVector {
 public:
  void MarkDown(unsigned site);
  void MarkUp(unsigned site);
  bool IsUp(unsigned site) const;
};

class Baseline {
 public:
  void ForceFailover(unsigned site) {
    sessions_.MarkDown(site);  // member field receiver
  }

 private:
  SessionVector sessions_;
};

void MutateViaPointer(SessionVector* sessions) {
  sessions->MarkUp(3);
}

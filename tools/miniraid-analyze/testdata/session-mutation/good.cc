// Fixture: reads are fine anywhere; mutators on unrelated types that share
// spellings (MarkDown on a renderer) must not fire.
class SessionVector {
 public:
  bool IsUp(unsigned site) const;
  unsigned UpCount() const;
};

class Document {
 public:
  void MarkDown(unsigned heading_level);  // unrelated same-named method
};

bool ReadAnywhere(const SessionVector& sessions) {
  return sessions.IsUp(1) && sessions.UpCount() > 0;
}

void UnrelatedReceiver(Document& doc) { doc.MarkDown(2); }

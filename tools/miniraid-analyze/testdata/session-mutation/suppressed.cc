// Fixture: an out-of-engine session mutation with an explicit waiver.
class SessionVector {
 public:
  void MarkDown(unsigned site);
};

void TestOnlyPartition(SessionVector& sessions) {
  // White-box fault injection for a recovery test.
  // miniraid-lint: allow(session-mutation)
  sessions.MarkDown(1);
}

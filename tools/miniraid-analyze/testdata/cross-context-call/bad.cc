// Fixture: a client-context entry reaching loop-confined state, both
// directly and transitively through an unannotated helper. Self-contained:
// the macro is defined inline so both frontends see the annotation.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class Site {
 public:
  MR_RUNS_ON(loop) void Crash() { crashed_ = true; }
  MR_RUNS_ON(loop) bool is_up() const { return !crashed_; }

 private:
  bool crashed_ = false;
};

namespace {

void Helper(Site& site) { site.Crash(); }

}  // namespace

MR_RUNS_ON(client) bool DirectViolation(Site& site) {
  return site.is_up();  // client touching loop-confined state
}

MR_RUNS_ON(client) void TransitiveViolation(Site& site) {
  Helper(site);  // reaches Site::Crash through the helper
}

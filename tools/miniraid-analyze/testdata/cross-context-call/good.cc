// Fixture: the legal shapes — calling MR_RUNS_ON(any) helpers from any
// context, and marshalling into another context through a posted lambda
// (the confinement pass does not follow lambda bodies by design).
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

template <typename F>
class Fn;

class Site {
 public:
  MR_RUNS_ON(loop) void Crash() { crashed_ = true; }
  MR_RUNS_ON(any) int id() const { return id_; }

 private:
  int id_ = 0;
  bool crashed_ = false;
};

class EventLoop {
 public:
  template <typename F>
  MR_RUNS_ON(any) void Post(F fn) {
    fn();
  }
};

MR_RUNS_ON(client) int ReadShared(Site& site) {
  return site.id();  // any-context accessor: fine from everywhere
}

MR_RUNS_ON(client) void MarshalledCrash(EventLoop& loop, Site& site) {
  Site* target = &site;  // heap-lived object: by-value capture is sound
  loop.Post([target] { target->Crash(); });  // lambda runs on the loop
}

// Fixture: the bad shape silenced by a per-line suppression comment.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class Site {
 public:
  MR_RUNS_ON(loop) void Crash() { crashed_ = true; }

 private:
  bool crashed_ = false;
};

MR_RUNS_ON(client) void SuppressedViolation(Site& site) {
  // Test-only direct poke, single-threaded here by construction.
  // miniraid-lint: allow(cross-context-call)
  site.Crash();
}

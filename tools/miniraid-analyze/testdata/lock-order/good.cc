// Fixture: clean lock discipline. Nested acquisition follows the declared
// MR_ACQUIRED_BEFORE order (directly and through a call), and the condition
// wait only holds the mutex it atomically releases.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MR_CAPABILITY(x) __attribute__((capability(x)))
#define MR_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define MR_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define MR_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define MR_ACQUIRED_BEFORE(...) \
  __attribute__((acquired_before(__VA_ARGS__)))
#endif
#endif
#ifndef MR_CAPABILITY
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_ACQUIRED_BEFORE(...)
#endif

class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};

class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};

class CondVar {
 public:
  void Wait(Mutex& mu);
  void SignalAll();
};

class Engine {
 public:
  void Helper() {
    MutexLock lock(inner_);
  }
  void Run() {
    MutexLock lock(outer_);
    Helper();
  }
  void Nested() {
    MutexLock lock(outer_);
    MutexLock inner_lock(inner_);
  }
  void Await() {
    MutexLock lock(outer_);
    cv_.Wait(outer_);  // waits only on the mutex it releases
  }

 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
  CondVar cv_;
};

// Fixture: two lock-order defects. (1) The declared MR_ACQUIRED_BEFORE
// graph has a cycle (a_ before b_ AND b_ before a_) — no acquisition order
// can satisfy it. (2) A function acquires locks in the order opposite to
// the declared one, through an interprocedural call.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MR_CAPABILITY(x) __attribute__((capability(x)))
#define MR_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define MR_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define MR_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define MR_ACQUIRED_BEFORE(...) \
  __attribute__((acquired_before(__VA_ARGS__)))
#endif
#endif
#ifndef MR_CAPABILITY
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_ACQUIRED_BEFORE(...)
#endif

class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};

class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};

// Defect 1: declared cycle.
class Cyclic {
 private:
  Mutex a_ MR_ACQUIRED_BEFORE(b_);
  Mutex b_ MR_ACQUIRED_BEFORE(a_);
};

// Defect 2: Outer holds inner_ while Helper acquires outer_, contradicting
// the declared outer_-before-inner_ order.
class Engine {
 public:
  void Helper() {
    MutexLock lock(outer_);
  }
  void Run() {
    MutexLock lock(inner_);
    Helper();
  }

 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};

// Fixture: the same inverted acquisition as bad.cc defect 2, silenced with
// an allow() comment at the call that acquires against the declared order.
// The analyzer must still SEE the defect (a suppressed finding proves the
// pass ran); the comment is what keeps the exit code at zero.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MR_CAPABILITY(x) __attribute__((capability(x)))
#define MR_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define MR_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define MR_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define MR_ACQUIRED_BEFORE(...) \
  __attribute__((acquired_before(__VA_ARGS__)))
#endif
#endif
#ifndef MR_CAPABILITY
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_ACQUIRED_BEFORE(...)
#endif

class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};

class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};

class Engine {
 public:
  void Helper() {
    MutexLock lock(outer_);
  }
  void Run() {
    MutexLock lock(inner_);
    // Transitional: Run() predates the declared order; tracked for removal.
    // miniraid-lint: allow(lock-order)
    Helper();
  }

 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};

// Fixture: two shared-state defects. (1) A field written from the managing
// context and read from the loop context with no common mutex held, no
// MR_GUARDED_BY, and no MR_CONTEXT_CONFINED waiver — a cross-context race.
// (2) A field declared MR_GUARDED_BY one mutex while every observed access
// holds a different one — the annotation and the locking disagree.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MR_CAPABILITY(x) __attribute__((capability(x)))
#define MR_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define MR_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define MR_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define MR_GUARDED_BY(x) __attribute__((guarded_by(x)))
#endif
#endif
#ifndef MR_CAPABILITY
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_GUARDED_BY(x)
#endif
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};

class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};

// Defect 1: hits_ is written on the managing context and read on the loop
// context with no synchronization whatsoever.
class Tally {
 public:
  MR_RUNS_ON(managing) void Bump() { hits_ = hits_ + 1; }
  MR_RUNS_ON(loop) int Snapshot() { return hits_; }

 private:
  int hits_ = 0;
};

// Defect 2: count_ claims mu_a_ as its guard, but both accessors lock
// mu_b_ — whichever of the two the author meant, one of them is wrong.
class Ledger {
 public:
  MR_RUNS_ON(managing) void Add() {
    MutexLock lock(mu_b_);
    count_ = count_ + 1;
  }
  MR_RUNS_ON(managing) int Total() {
    MutexLock lock(mu_b_);
    return count_;
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int count_ MR_GUARDED_BY(mu_a_) = 0;
};

// Fixture: the same cross-context race as bad.cc, silenced by an explicit
// allow() at the field declaration. The analyzer must still SEE the defect
// (the JSON report shows a suppressed shared-state finding); the comment is
// what keeps the exit code at zero.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class Tally {
 public:
  MR_RUNS_ON(managing) void Bump() { hits_ = hits_ + 1; }
  MR_RUNS_ON(loop) int Snapshot() { return hits_; }

 private:
  // Torn reads are tolerated here by design (stats sampling only).
  // miniraid-lint: allow(shared-state)
  int hits_ = 0;
};

// Fixture: multi-context field access done right, four ways. (1) A field
// reached from two contexts with a common mutex held at every access
// (inferred "guarded" — no annotation needed). (2) A field with a
// MR_CONTEXT_CONFINED waiver documenting phase separation. (3) A field
// only ever touched from one context. (4) A multi-context field that is
// written only during construction and read-only afterwards.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MR_CAPABILITY(x) __attribute__((capability(x)))
#define MR_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define MR_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define MR_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define MR_GUARDED_BY(x) __attribute__((guarded_by(x)))
#endif
#endif
#ifndef MR_CAPABILITY
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_GUARDED_BY(x)
#endif
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#define MR_CONTEXT_CONFINED(ctx) \
  __attribute__((annotate("mr_context_confined:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#define MR_CONTEXT_CONFINED(ctx)
#endif

class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};

class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};

// (1) Both contexts hold mu_ at every access: the pass infers "guarded".
class Tally {
 public:
  MR_RUNS_ON(managing) void Bump() {
    MutexLock lock(mu_);
    hits_ = hits_ + 1;
  }
  MR_RUNS_ON(loop) int Snapshot() {
    MutexLock lock(mu_);
    return hits_;
  }

 private:
  Mutex mu_;
  int hits_ = 0;
};

// (2) Reached from two contexts in the call graph, but the phases are
// separated dynamically — documented with a waiver at the field.
class Config {
 public:
  MR_RUNS_ON(client) void Load() { revision_ = revision_ + 1; }
  MR_RUNS_ON(loop) int revision() { return revision_; }

 private:
  // Written only before the loop thread starts; the waiver records the
  // phase argument the call graph cannot see.
  int revision_ MR_CONTEXT_CONFINED(client) = 0;
};

// (3) Single context: no possibility of a race.
class Journal {
 public:
  MR_RUNS_ON(loop) void Append() { entries_ = entries_ + 1; }
  MR_RUNS_ON(loop) int entries() { return entries_; }

 private:
  int entries_ = 0;
};

// (4) Written only in the constructor (single-owner phase), read-only from
// both contexts afterwards.
class Limits {
 public:
  Limits() { cap_ = 64; }
  MR_RUNS_ON(managing) int CapA() { return cap_; }
  MR_RUNS_ON(loop) int CapB() { return cap_; }

 private:
  int cap_ = 0;
};

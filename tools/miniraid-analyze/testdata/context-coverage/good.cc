// Fixture: full coverage — every public method annotated; constructors,
// operators, private helpers and unannotated classes are exempt.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class SubmitWindow {
 public:
  SubmitWindow() = default;  // constructors need no annotation

  MR_RUNS_ON(managing) void Submit(int txn) { Track(txn); }
  MR_RUNS_ON(managing) void Close() { closed_ = true; }
  MR_RUNS_ON(managing) bool closed() const { return closed_; }

  bool operator==(const SubmitWindow& o) const {  // operators exempt
    return closed_ == o.closed_;
  }

 private:
  void Track(int txn) { inflight_ += txn ? 1 : 0; }  // private exempt

  int inflight_ = 0;
  bool closed_ = false;
};

class Unaware {  // no annotations at all: not held to coverage
 public:
  void Anything() {}
};

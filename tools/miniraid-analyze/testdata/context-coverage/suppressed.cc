// Fixture: the coverage gap silenced at the declaration line.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class SubmitWindow {
 public:
  MR_RUNS_ON(managing) void Submit(int txn) { inflight_ += txn ? 1 : 0; }

  // Transitional API kept callable everywhere while callers migrate.
  // miniraid-lint: allow(context-coverage)
  void Close() { closed_ = true; }

 private:
  int inflight_ = 0;
  bool closed_ = false;
};

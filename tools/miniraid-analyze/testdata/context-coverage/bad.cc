// Fixture: a class that annotates one public method must annotate them
// all — an unannotated public entry is a blind spot for the call-graph
// passes.
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

class SubmitWindow {
 public:
  MR_RUNS_ON(managing) void Submit(int txn) { inflight_ += txn ? 1 : 0; }

  void Close() { closed_ = true; }  // public but unannotated: flagged

 private:
  int inflight_ = 0;
  bool closed_ = false;
};

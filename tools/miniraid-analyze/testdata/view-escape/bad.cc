// Fixture: four view-escape defects — every way a view of a function-local
// buffer can outlive the buffer. (1) Stored into a field. (2) A raw
// pointer into a local buffer returned past the frame. (3) Inserted into a
// member container. (4) A stack local captured by reference in a lambda
// handed to a deferred sink (EventLoop::Post) — the PR 8 gap: the lambda
// runs after the frame is gone.
#include <functional>
#include <string>
#include <string_view>
#include <vector>

class EventLoop {
 public:
  void Post(std::function<void()> fn);
};

// (1) view_ outlives frame: the field points into Parse()'s dead buffer.
class Parser {
 public:
  void Parse() {
    std::string frame = Fetch();
    std::string_view view(frame);
    view_ = view;
  }

 private:
  std::string Fetch();
  std::string_view view_;
};

// (2) The returned pointer dangles the moment scratch is destroyed.
class Renderer {
 public:
  const char* Render() {
    std::string scratch = Build();
    return scratch.c_str();
  }

 private:
  std::string Build();
};

// (3) The container outlives the buffer every element points into.
class Splitter {
 public:
  void Split() {
    std::string line = Next();
    std::string_view token(line);
    parts_.push_back(token);
  }

 private:
  std::string Next();
  std::vector<std::string_view> parts_;
};

// (4) Post defers the lambda past Go()'s frame; &n is then a dangling
// stack reference.
class Worker {
 public:
  void Go() {
    int n = 0;
    loop_->Post([&n] { n = 1; });
  }

 private:
  EventLoop* loop_;
};

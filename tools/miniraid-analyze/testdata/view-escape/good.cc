// Fixture: view-shaped code whose lifetimes are actually sound, four ways.
// (1) The arena pattern: a member view pointing into a member buffer —
// field and buffer share the object's lifetime. (2) A synchronous sink
// (PostAndWait) that completes before the frame returns, so stack captures
// are the intended idiom. (3) A view parameter returned through — the
// caller owns the buffer, not this frame. (4) Values captured by copy into
// a deferred lambda.
#include <functional>
#include <string>
#include <string_view>
#include <vector>

class EventLoop {
 public:
  void Post(std::function<void()> fn);
  void PostAndWait(std::function<void()> fn);
};

// (1) view_ points into buf_: both die with the Arena.
class Arena {
 public:
  void Reindex() {
    std::string_view view(buf_);
    view_ = view;
  }

 private:
  std::string buf_;
  std::string_view view_;
};

// (2) PostAndWait blocks until the lambda has run on the loop; capturing
// the frame by reference is the intended synchronous-handoff idiom.
class Collector {
 public:
  int Sample() {
    int total = 0;
    loop_->PostAndWait([&total] { total = total + 1; });
    return total;
  }

 private:
  EventLoop* loop_;
};

// (3) The view roots in the caller's buffer, not this frame.
class Echo {
 public:
  std::string_view First(std::string_view input) { return input; }
};

// (4) Copies into a deferred lambda carry their own storage.
class Ticker {
 public:
  void Arm() {
    int seq = next_;
    loop_->Post([seq] {});
    next_ = next_ + 1;
  }

 private:
  EventLoop* loop_;
  int next_ = 0;
};

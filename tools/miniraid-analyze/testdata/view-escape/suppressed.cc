// Fixture: the same deferred-capture defect as bad.cc, silenced by an
// explicit allow() with the lifetime argument spelled out. The analyzer
// must still SEE the defect (the JSON report shows a suppressed
// view-escape finding); the comment keeps the exit code at zero.
#include <functional>

class EventLoop {
 public:
  void Post(std::function<void()> fn);
  void Drain();
};

class Worker {
 public:
  void Go() {
    int n = 0;
    // The caller drains the loop before this frame returns (test harness
    // only), so the reference never outlives the stack slot.
    // miniraid-lint: allow(view-escape)
    loop_->Post([&n] { n = 1; });
    loop_->Drain();
  }

 private:
  EventLoop* loop_;
};

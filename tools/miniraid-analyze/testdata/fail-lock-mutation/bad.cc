// Fixture: FailLockTable mutations outside the owning module, through the
// receiver shapes the old regex lint could not see — an aliased local, a
// reference parameter, and an accessor chain.
class FailLockTable {
 public:
  void Set(unsigned item, unsigned site);
  void Clear(unsigned item, unsigned site);
  bool IsSet(unsigned item, unsigned site) const;
};

using LockTable = FailLockTable;

class Site {
 public:
  FailLockTable& fail_locks() { return locks_; }

 private:
  FailLockTable locks_;
};

void MutateViaAlias(LockTable& table) {
  table.Set(1, 2);  // alias resolves to FailLockTable
}

void MutateViaAccessorChain(Site& site) {
  site.fail_locks().Clear(1, 2);  // accessor return type resolved
}

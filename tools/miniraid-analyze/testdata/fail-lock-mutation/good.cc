// Fixture: reads of the fail-lock table are fine anywhere, and mutators on
// UNRELATED types that happen to share method names must not fire (the old
// regex lint matched on spelling; the analyzer resolves the receiver).
class FailLockTable {
 public:
  void Set(unsigned item, unsigned site);
  bool IsSet(unsigned item, unsigned site) const;
  unsigned CountFor(unsigned site) const;
};

class Bitmap {
 public:
  void Set(unsigned bit);
  void Clear(unsigned bit);
};

bool ReadAnywhere(const FailLockTable& table) {
  return table.IsSet(1, 2) || table.CountFor(2) > 0;
}

void SameNameDifferentType(Bitmap& bits) {
  bits.Set(3);    // Bitmap::Set is not FailLockTable::Set
  bits.Clear(3);
}

// Fixture: an out-of-module mutation with an explicit waiver.
class FailLockTable {
 public:
  void Set(unsigned item, unsigned site);
};

void TestOnlySetup(FailLockTable& table) {
  // Fixture setup for a white-box test; not protocol code.
  // miniraid-lint: allow(fail-lock-mutation)
  table.Set(1, 2);
}

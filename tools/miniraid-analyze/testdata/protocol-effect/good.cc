// Fixture: the dispatcher's computed effect map matches the checked-in
// golden (kPing answers with a kPong payload, kStop is pure).
using SiteId = unsigned;

enum class MsgType {
  kPing,
  kStop,
};

struct PingArgs {
  SiteId from;
};
struct PongArgs {
  SiteId from;
};

struct Message {
  MsgType type;
  SiteId from;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      case MsgType::kPing:
        SendTo(msg.from, PongArgs{self_});
        break;
      case MsgType::kStop:
        running_ = false;
        break;
    }
  }

 private:
  void SendTo(SiteId to, PongArgs args);

  SiteId self_ = 0;
  bool running_ = true;
};

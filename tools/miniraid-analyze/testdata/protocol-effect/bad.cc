// Fixture: handler-effect drift. The kPing handler was changed to answer
// with a kExtra payload instead of the kPong the golden approves — the
// protocol gained a transition the abstract model has never seen.
using SiteId = unsigned;

enum class MsgType {
  kPing,
  kStop,
};

struct PingArgs {
  SiteId from;
};
struct PongArgs {
  SiteId from;
};
struct ExtraArgs {
  SiteId from;
};

struct Message {
  MsgType type;
  SiteId from;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      case MsgType::kPing:
        SendTo(msg.from, ExtraArgs{self_});
        break;
      case MsgType::kStop:
        running_ = false;
        break;
    }
  }

 private:
  void SendTo(SiteId to, ExtraArgs args);

  SiteId self_ = 0;
  bool running_ = true;
};

// Fixture: the same kPing drift as bad.cc, silenced with an allow()
// comment on the dispatch case while the golden catches up. The analyzer
// must still SEE the drift (a suppressed finding proves the diff ran).
using SiteId = unsigned;

enum class MsgType {
  kPing,
  kStop,
};

struct PingArgs {
  SiteId from;
};
struct PongArgs {
  SiteId from;
};
struct ExtraArgs {
  SiteId from;
};

struct Message {
  MsgType type;
  SiteId from;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      // Migration window: kExtra replaces kPong next release; golden and
      // abstract model update land together.
      // miniraid-lint: allow(protocol-effect)
      case MsgType::kPing:
        SendTo(msg.from, ExtraArgs{self_});
        break;
      case MsgType::kStop:
        running_ = false;
        break;
    }
  }

 private:
  void SendTo(SiteId to, ExtraArgs args);

  SiteId self_ = 0;
  bool running_ = true;
};

// Fixture: a symmetric codec — every encoder overload matches its decoder
// case field-for-field, vector element helpers pair up, and an
// empty-payload message writes and reads nothing.
enum class MsgType : unsigned char {
  kTxnRequest = 0,
  kItemList = 1,
  kShutdown = 2,
};

struct TxnRequestArgs {
  unsigned long long txn;
  unsigned char kind;
};
struct ItemListArgs {
  int items;
};
struct ShutdownArgs {};

class Encoder {
 public:
  void PutU8(unsigned char v);
  void PutU64(unsigned long long v);
  template <typename C, typename F>
  void PutVector(const C& c, F f);
};

class Decoder {
 public:
  bool GetU8(unsigned char* v);
  bool GetU64(unsigned long long* v);
  template <typename C, typename F>
  bool GetVector(C* c, F f);
};

void PutItem(Encoder& enc, int item);
bool GetItem(Decoder& dec, int* item);

// Exhaustive dispatcher so only codec-symmetry is under test here.
class Site {
 public:
  void OnMessage(MsgType type) {
    switch (type) {
      case MsgType::kTxnRequest:
      case MsgType::kItemList:
      case MsgType::kShutdown:
        break;
    }
  }
};

struct PayloadEncoder {
  Encoder& enc;

  void operator()(const TxnRequestArgs& a) {
    enc.PutU64(a.txn);
    enc.PutU8(a.kind);
  }
  void operator()(const ItemListArgs& a) { enc.PutVector(a.items, PutItem); }
  void operator()(const ShutdownArgs&) {}
};

bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kTxnRequest: {
      unsigned long long txn = 0;
      unsigned char kind = 0;
      return dec.GetU64(&txn) && dec.GetU8(&kind);
    }
    case MsgType::kItemList: {
      int items = 0;
      return dec.GetVector(&items, GetItem);
    }
    case MsgType::kShutdown:
      return true;
  }
  return false;
}

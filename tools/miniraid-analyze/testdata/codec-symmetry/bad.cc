// Fixture: three codec asymmetries — a field-count mismatch, a width
// mismatch, and a vector element helper pair that disagrees.
enum class MsgType : unsigned char {
  kTxnRequest = 0,
  kTxnReply = 1,
  kItemList = 2,
};

struct TxnRequestArgs {
  unsigned long long txn;
  unsigned char kind;
};
struct TxnResult {
  unsigned long long txn;
};
struct ItemListArgs {
  int items;
};

class Encoder {
 public:
  void PutU8(unsigned char v);
  void PutU32(unsigned v);
  void PutU64(unsigned long long v);
  template <typename C, typename F>
  void PutVector(const C& c, F f);
};

class Decoder {
 public:
  bool GetU8(unsigned char* v);
  bool GetU32(unsigned* v);
  bool GetU64(unsigned long long* v);
  template <typename C, typename F>
  bool GetVector(C* c, F f);
};

void PutItem(Encoder& enc, int item);
bool GetRow(Decoder& dec, int* item);

// Exhaustive dispatcher so only codec-symmetry is under test here.
class Site {
 public:
  void OnMessage(MsgType type) {
    switch (type) {
      case MsgType::kTxnRequest:
      case MsgType::kTxnReply:
      case MsgType::kItemList:
        break;
    }
  }
};

struct PayloadEncoder {
  Encoder& enc;

  void operator()(const TxnRequestArgs& a) {
    enc.PutU64(a.txn);
    enc.PutU8(a.kind);  // decoder never reads this: count mismatch
  }
  void operator()(const TxnResult& a) {
    enc.PutU32(static_cast<unsigned>(a.txn));  // written 32, read 64
  }
  void operator()(const ItemListArgs& a) {
    enc.PutVector(a.items, PutItem);  // elements written as Item, read as Row
  }
};

bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kTxnRequest: {
      unsigned long long txn = 0;
      return dec.GetU64(&txn);
    }
    case MsgType::kTxnReply: {
      unsigned long long txn = 0;
      return dec.GetU64(&txn);
    }
    case MsgType::kItemList: {
      int items = 0;
      return dec.GetVector(&items, GetRow);
    }
  }
  return false;
}

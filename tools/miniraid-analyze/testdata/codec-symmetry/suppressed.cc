// Fixture: a deliberate asymmetry (decoder tolerates a truncated legacy
// frame) with the waiver on the reporting line.
enum class MsgType : unsigned char {
  kTxnRequest = 0,
};

struct TxnRequestArgs {
  unsigned long long txn;
  unsigned char kind;
};

class Encoder {
 public:
  void PutU8(unsigned char v);
  void PutU64(unsigned long long v);
};

class Decoder {
 public:
  bool GetU64(unsigned long long* v);
};

struct PayloadEncoder {
  Encoder& enc;

  void operator()(const TxnRequestArgs& a) {
    enc.PutU64(a.txn);
    enc.PutU8(a.kind);
  }
};

// Exhaustive dispatcher so only codec-symmetry is under test here.
class Site {
 public:
  void OnMessage(MsgType type) {
    switch (type) {
      case MsgType::kTxnRequest:
        break;
    }
  }
};

bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    // Legacy peers omit the kind byte; the decoder defaults it.
    // miniraid-lint: allow(codec-symmetry)
    case MsgType::kTxnRequest: {
      unsigned long long txn = 0;
      return dec.GetU64(&txn);
    }
  }
  return false;
}

// Seeded defect: the codec-buffer reuse bug the view-escape pass exists to
// catch. A frame reader decodes length-prefixed records out of a transport
// into a function-local scratch buffer, then stashes a string_view of the
// payload in a field "to avoid a copy". The buffer dies (or is reused for
// the next frame) the moment ReadNext returns — every later use of
// payload() reads freed or overwritten memory. This fixture gates the
// `miniraid_analyze_seeded_view_escape` ctest: the indexer frontend must
// flag it (exit 1, rule view-escape) in under a minute.
#include <cstdint>
#include <string>
#include <string_view>

class Transport {
 public:
  std::string ReadRecord();
};

class FrameReader {
 public:
  explicit FrameReader(Transport* transport) : transport_(transport) {}

  // BUG: payload_ points into `scratch`, which is destroyed on return.
  bool ReadNext() {
    std::string scratch = transport_->ReadRecord();
    std::string_view payload(scratch);
    payload_ = payload;
    return !scratch.empty();
  }

  std::string_view payload() const { return payload_; }

 private:
  Transport* transport_;
  std::string_view payload_;
  uint64_t frames_read_ = 0;
};

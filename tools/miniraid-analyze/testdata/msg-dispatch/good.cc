// Fixture: a default-less dispatch switch covering every enumerator, and a
// helper switch that opts out of exhaustiveness with a default.
enum class MsgType : unsigned char {
  kPrepare = 0,
  kCommit = 1,
  kAbort = 2,
};

struct Message {
  MsgType type;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      case MsgType::kPrepare:
        ++prepares_;
        break;
      case MsgType::kCommit:
        ++commits_;
        break;
      case MsgType::kAbort:
        ++aborts_;
        break;
    }
  }

 private:
  int prepares_ = 0;
  int commits_ = 0;
  int aborts_ = 0;
};

int CountVotes(const Message& msg) {
  switch (msg.type) {  // default present: exhaustiveness not required
    case MsgType::kPrepare:
      return 1;
    default:
      return 0;
  }
}

// Fixture: the incomplete dispatch switch silenced in place. The
// unhandled-anywhere finding reports at the enum declaration, so the
// waiver for kDebugOnly sits there.
// miniraid-lint: allow(msg-dispatch)
enum class MsgType : unsigned char {
  kPrepare = 0,
  kDebugOnly = 1,  // intentionally unhandled outside debug builds
};

struct Message {
  MsgType type;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    // Debug messages are stripped in this build.
    // miniraid-lint: allow(msg-dispatch)
    switch (msg.type) {
      case MsgType::kPrepare:
        ++prepares_;
        break;
    }
  }

 private:
  int prepares_ = 0;
};

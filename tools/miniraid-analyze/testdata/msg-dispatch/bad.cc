// Fixture: a default-less dispatch switch missing an enumerator, and an
// enumerator no OnMessage switch handles at all.
enum class MsgType : unsigned char {
  kPrepare = 0,
  kCommit = 1,
  kAbort = 2,
  kOrphan = 3,  // handled by no dispatch switch anywhere
};

struct Message {
  MsgType type;
};

class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {  // no default, kAbort and kOrphan missing
      case MsgType::kPrepare:
        ++prepares_;
        break;
      case MsgType::kCommit:
        ++commits_;
        break;
    }
  }

 private:
  int prepares_ = 0;
  int commits_ = 0;
};

void HandleAbort(const Message& msg) {
  switch (msg.type) {  // non-dispatch switch: exhaustiveness still applies
    case MsgType::kAbort:
      break;
    case MsgType::kPrepare:
    case MsgType::kCommit:
    case MsgType::kOrphan:
      break;
  }
}

// miniraid-analyze CLI.
//
//   miniraid-analyze [options] <paths...>
//
//   --frontend=index   built-in semantic indexer (default; no toolchain
//                      dependency, used by the local ctest entries)
//   --frontend=clang   Clang LibTooling frontend over compile_commands.json
//                      (available when built with MINIRAID_ANALYZE_CLANG=ON)
//   -p <dir>           compilation database directory (clang frontend)
//   --json <path>      write the full findings report (incl. suppressed)
//   --no-context       skip the MR_RUNS_ON passes (fixture debugging)
//   --effects <path>        write the computed protocol-effect map (text)
//   --effects-json <path>   write the computed protocol-effect map (JSON)
//   --effects-golden <path> diff the effect map against a golden; drift is
//                           reported under the "protocol-effect" rule
//   --lock-graph-dot <path>  write the lock acquisition graph (Graphviz)
//   --lock-graph-json <path> write the lock acquisition graph (JSON)
//   --shared-state-json <path> write the per-field guarded-by inference
//                              report (every field with its contexts,
//                              common held mutexes, and verdict)
//   --view-escape-json <path>  write the view-escape findings (JSON)
//   --sarif <path>             write unsuppressed findings as SARIF 2.1.0
//
// Paths may be files or directories (directories are scanned recursively for
// .h/.cc). Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

#ifdef MINIRAID_ANALYZE_HAVE_CLANG
// clang_frontend.cc
int RunClangFrontend(const std::vector<std::string>& files,
                     const std::string& build_path, Model* model,
                     std::string* error);
#endif

namespace {

namespace fs = std::filesystem;

void CollectSources(const std::string& path, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (fs::recursive_directory_iterator it(path, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      std::string p = it->path().string();
      if (p.size() > 2 && (p.compare(p.size() - 2, 2, ".h") == 0 ||
                           (p.size() > 3 &&
                            p.compare(p.size() - 3, 3, ".cc") == 0))) {
        out->push_back(p);
      }
    }
    return;
  }
  out->push_back(path);
}

int Run(int argc, char** argv) {
  std::string frontend = "index";
  std::string json_path;
  std::string build_path;
  std::string effects_path, effects_json_path, effects_golden_path;
  std::string lock_dot_path, lock_json_path;
  std::string shared_state_path, view_escape_path, sarif_path;
  bool contexts = true;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--frontend=", 0) == 0) {
      frontend = arg.substr(11);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "-p" && i + 1 < argc) {
      build_path = argv[++i];
    } else if (arg == "--effects" && i + 1 < argc) {
      effects_path = argv[++i];
    } else if (arg == "--effects-json" && i + 1 < argc) {
      effects_json_path = argv[++i];
    } else if (arg == "--effects-golden" && i + 1 < argc) {
      effects_golden_path = argv[++i];
    } else if (arg == "--lock-graph-dot" && i + 1 < argc) {
      lock_dot_path = argv[++i];
    } else if (arg == "--lock-graph-json" && i + 1 < argc) {
      lock_json_path = argv[++i];
    } else if (arg == "--shared-state-json" && i + 1 < argc) {
      shared_state_path = argv[++i];
    } else if (arg == "--view-escape-json" && i + 1 < argc) {
      view_escape_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--no-context") {
      contexts = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: miniraid-analyze [--frontend=index|clang] "
                   "[-p build-dir] [--json out.json] "
                   "[--effects[-json] out] [--effects-golden golden.txt] "
                   "[--lock-graph-dot|-json out] [--shared-state-json out] "
                   "[--view-escape-json out] [--sarif out] <paths...>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "miniraid-analyze: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "miniraid-analyze: no input paths\n";
    return 2;
  }
  std::vector<std::string> files;
  for (const std::string& p : paths) CollectSources(p, &files);
  if (files.empty()) {
    std::cerr << "miniraid-analyze: no .h/.cc sources under given paths\n";
    return 2;
  }

  Model model;
  if (frontend == "index") {
    Indexer indexer;
    for (const std::string& f : files) {
      std::ifstream in(f);
      if (!in) {
        std::cerr << "miniraid-analyze: cannot read " << f << "\n";
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      indexer.AddFile(LexFile(f, content.str()));
    }
    model = indexer.Build();
  } else if (frontend == "clang") {
#ifdef MINIRAID_ANALYZE_HAVE_CLANG
    std::string error;
    if (RunClangFrontend(files, build_path, &model, &error) != 0) {
      std::cerr << "miniraid-analyze: clang frontend failed: " << error
                << "\n";
      return 2;
    }
#else
    std::cerr << "miniraid-analyze: built without Clang support "
                 "(reconfigure with -DMINIRAID_ANALYZE_CLANG=ON)\n";
    return 2;
#endif
  } else {
    std::cerr << "miniraid-analyze: unknown frontend '" << frontend << "'\n";
    return 2;
  }

  CheckOptions opts = CheckOptions::Defaults();
  opts.check_contexts = contexts;
  if (!effects_golden_path.empty()) {
    std::ifstream in(effects_golden_path);
    if (!in) {
      std::cerr << "miniraid-analyze: cannot read effect golden "
                << effects_golden_path << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    opts.effects_golden = content.str();
  }
  std::vector<Finding> findings = RunChecks(model, opts);

  LockGraph lock_graph = BuildLockGraph(model, opts, &findings);
  EffectMap effects = BuildEffectMap(model, opts);
  if (!opts.effects_golden.empty()) {
    DiffEffectsAgainstGolden(effects, opts.effects_golden, &findings);
  }
  SharedStateReport shared_state =
      BuildSharedStateReport(model, opts, &findings);
  CheckViewEscape(model, opts, &findings);
  std::sort(findings.begin(), findings.end());
  ApplySuppressions(model, &findings);

  auto write_file = [](const std::string& path, const std::string& what,
                       auto&& writer) {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "miniraid-analyze: cannot write " << what << " " << path
                << "\n";
      return false;
    }
    writer(out);
    return true;
  };
  bool io_ok =
      write_file(effects_path, "effect map",
                 [&](std::ostream& os) { os << FormatEffectMap(effects); }) &&
      write_file(effects_json_path, "effect map",
                 [&](std::ostream& os) { WriteEffectMapJson(effects, os); }) &&
      write_file(lock_dot_path, "lock graph",
                 [&](std::ostream& os) { WriteLockGraphDot(lock_graph, os); }) &&
      write_file(lock_json_path, "lock graph",
                 [&](std::ostream& os) { WriteLockGraphJson(lock_graph, os); }) &&
      write_file(shared_state_path, "shared-state report",
                 [&](std::ostream& os) {
                   WriteSharedStateJson(shared_state, os);
                 }) &&
      write_file(view_escape_path, "view-escape report",
                 [&](std::ostream& os) {
                   std::vector<Finding> ve;
                   for (const Finding& f : findings) {
                     if (f.rule == "view-escape") ve.push_back(f);
                   }
                   WriteJson(ve, os);
                 }) &&
      write_file(sarif_path, "SARIF report",
                 [&](std::ostream& os) { WriteSarif(findings, os); });
  if (!io_ok) return 2;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "miniraid-analyze: cannot write " << json_path << "\n";
      return 2;
    }
    WriteJson(findings, out);
  }
  int unsuppressed = PrintFindings(findings, std::cerr);
  if (unsuppressed > 0) {
    std::cerr << unsuppressed << " finding(s)\n";
    return 1;
  }
  std::cout << "miniraid-analyze: " << files.size() << " file(s), "
            << findings.size() << " finding(s), all suppressed or none\n";
  return 0;
}

}  // namespace
}  // namespace analyze
}  // namespace miniraid

int main(int argc, char** argv) {
  return miniraid::analyze::Run(argc, argv);
}

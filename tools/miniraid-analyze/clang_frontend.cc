// Clang LibTooling frontend: builds the same Model the built-in indexer
// produces, but from the real AST — types are resolved by the compiler, so
// receiver resolution, alias chasing and overload selection are exact.
//
// Only compiled when MINIRAID_ANALYZE_CLANG=ON (requires the libclang-dev /
// llvm-dev packages; CI installs them, local dev containers may not have
// them — the built-in indexer is the default frontend everywhere).
//
// Translation units are the .cc files among the inputs, driven by the
// compile_commands.json the build exports; facts about headers are picked
// up while parsing the TUs and deduplicated by merge key, mirroring
// Indexer::Build. CallSite/CaseLabel `tok` fields carry source offsets
// (only their relative order matters to the checks), and vector-element
// helpers are pre-resolved into CallSite::last_ident_arg since there is no
// token stream to recover them from.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace miniraid {
namespace analyze {
namespace {

namespace fs = std::filesystem;

std::string Canonical(const std::string& path) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(fs::path(path), ec);
  return ec ? path : p.string();
}

// Shared state across all TUs: the model under construction plus the
// merge-key maps that deduplicate redeclarations seen in many TUs.
struct Collector {
  Model* model = nullptr;
  std::map<std::string, int> file_index;  // canonical path -> files[] index
  std::map<std::string, int> fn_index;    // merge key -> functions[] index

  int FileIndexFor(const std::string& canonical_path) const {
    auto it = file_index.find(canonical_path);
    return it == file_index.end() ? -1 : it->second;
  }
};

// Core type name: the class name with references, cv-qualifiers and sugar
// stripped — "const TxnRequestArgs&" -> "TxnRequestArgs". The model's type
// vocabulary is the one the source spells (the built-in indexer reads raw
// tokens), so std:: library sugar maps back: basic_string -> "string",
// basic_string_view -> "string_view", and builtin typedefs (uint8_t,
// size_t) keep their typedef name rather than desugaring to "unsigned
// char" / "unsigned long".
std::string CoreTypeName(clang::QualType qt) {
  if (qt.isNull()) return "";
  qt = qt.getNonReferenceType();
  if (qt->isPointerType()) qt = qt->getPointeeType();
  qt = qt.getUnqualifiedType();
  if (const clang::TypedefType* tt = qt->getAs<clang::TypedefType>()) {
    const clang::CXXRecordDecl* rd = qt->getAsCXXRecordDecl();
    if (rd == nullptr || rd->getName() == "basic_string" ||
        rd->getName() == "basic_string_view") {
      return tt->getDecl()->getNameAsString();
    }
  }
  if (const clang::CXXRecordDecl* rd = qt->getAsCXXRecordDecl()) {
    std::string name = rd->getNameAsString();
    if (name == "basic_string") return "string";
    if (name == "basic_string_view") return "string_view";
    return name;
  }
  if (const clang::EnumType* et = qt->getAs<clang::EnumType>()) {
    return et->getDecl()->getNameAsString();
  }
  if (const clang::BuiltinType* bt = qt->getAs<clang::BuiltinType>()) {
    clang::LangOptions lang_opts;
    clang::PrintingPolicy policy(lang_opts);
    return bt->getName(policy).str();
  }
  return "";
}

Ctx CtxFromAttrs(const clang::Decl* d) {
  for (const clang::AnnotateAttr* a :
       d->specific_attrs<clang::AnnotateAttr>()) {
    llvm::StringRef ann = a->getAnnotation();
    if (ann.startswith("mr_runs_on:")) {
      return ParseCtx(ann.drop_front(11).str());
    }
  }
  return Ctx::kNone;
}

// Splits the stringized MR_ACQUIRED_BEFORE/AFTER argument list
// ("loop_->mu_", "a_, b_") into per-target identifier chains, the same shape
// Indexer::ParseEdgeTargets produces from the macro tokens.
std::vector<std::vector<std::string>> ParseEdgeAnnotation(
    llvm::StringRef args) {
  std::vector<std::vector<std::string>> targets;
  llvm::SmallVector<llvm::StringRef, 4> parts;
  args.split(parts, ',');
  for (llvm::StringRef part : parts) {
    std::vector<std::string> chain;
    std::string ident;
    auto flush = [&] {
      if (!ident.empty() && ident != "this") chain.push_back(ident);
      ident.clear();
    };
    for (char c : part) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ident.push_back(c);
      } else {
        flush();
      }
    }
    flush();
    if (!chain.empty()) targets.push_back(std::move(chain));
  }
  return targets;
}

// "OwnerClass::field" when the expression is a member-field access; the
// lock-order pass keys mutex identities on this form. Empty for anything
// else (locals, temporaries, calls) — same conservatism as the indexer.
std::string LockNodeFor(const clang::Expr* e) {
  if (e == nullptr) return "";
  e = e->IgnoreParenImpCasts();
  if (const clang::MemberExpr* me = llvm::dyn_cast<clang::MemberExpr>(e)) {
    if (const clang::FieldDecl* fd =
            llvm::dyn_cast<clang::FieldDecl>(me->getMemberDecl())) {
      if (const clang::RecordDecl* rd = fd->getParent()) {
        if (!rd->getName().empty()) {
          return rd->getNameAsString() + "::" + fd->getNameAsString();
        }
      }
    }
  }
  return "";
}

// Identifier chain of a thread-safety attribute argument or member access
// path (`loop_->mu_` -> {"loop_", "mu_"}), the shape the lock-resolution
// helpers expect. `this` is dropped, same as the token indexer.
std::vector<std::string> ChainOf(const clang::Expr* e) {
  std::vector<std::string> reversed;
  while (e != nullptr) {
    e = e->IgnoreParenImpCasts();
    if (const clang::MemberExpr* me = llvm::dyn_cast<clang::MemberExpr>(e)) {
      reversed.push_back(me->getMemberDecl()->getNameAsString());
      e = me->getBase();
      if (e != nullptr &&
          llvm::isa<clang::CXXThisExpr>(e->IgnoreParenImpCasts())) {
        break;
      }
      continue;
    }
    if (const clang::DeclRefExpr* dre =
            llvm::dyn_cast<clang::DeclRefExpr>(e)) {
      reversed.push_back(dre->getDecl()->getNameAsString());
      break;
    }
    if (const clang::UnaryOperator* uo =
            llvm::dyn_cast<clang::UnaryOperator>(e)) {
      e = uo->getSubExpr();
      continue;
    }
    break;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

// Dataflow root of an initializer / RHS / return expression: the base-most
// identifier plus the trailing member call (`buf.data()` -> root "buf",
// call "data"), descending through constructors, temporaries, std::move
// and subscripts — the AST mirror of the indexer's ExtractRootCall.
void RootAndCall(const clang::Expr* e, std::string* root, std::string* call) {
  while (e != nullptr) {
    e = e->IgnoreParenImpCasts();
    if (const clang::ExprWithCleanups* x =
            llvm::dyn_cast<clang::ExprWithCleanups>(e)) {
      e = x->getSubExpr();
      continue;
    }
    if (const clang::MaterializeTemporaryExpr* x =
            llvm::dyn_cast<clang::MaterializeTemporaryExpr>(e)) {
      e = x->getSubExpr();
      continue;
    }
    if (const clang::CXXBindTemporaryExpr* x =
            llvm::dyn_cast<clang::CXXBindTemporaryExpr>(e)) {
      e = x->getSubExpr();
      continue;
    }
    if (const clang::CXXFunctionalCastExpr* x =
            llvm::dyn_cast<clang::CXXFunctionalCastExpr>(e)) {
      e = x->getSubExpr();
      continue;
    }
    if (const clang::CXXConstructExpr* x =
            llvm::dyn_cast<clang::CXXConstructExpr>(e)) {
      e = x->getNumArgs() > 0 ? x->getArg(0) : nullptr;
      continue;
    }
    if (const clang::InitListExpr* x =
            llvm::dyn_cast<clang::InitListExpr>(e)) {
      e = x->getNumInits() > 0 ? x->getInit(0) : nullptr;
      continue;
    }
    if (const clang::CXXMemberCallExpr* x =
            llvm::dyn_cast<clang::CXXMemberCallExpr>(e)) {
      if (call->empty() && x->getMethodDecl() != nullptr) {
        *call = x->getMethodDecl()->getNameAsString();
      }
      e = x->getImplicitObjectArgument();
      continue;
    }
    if (const clang::CXXOperatorCallExpr* x =
            llvm::dyn_cast<clang::CXXOperatorCallExpr>(e)) {
      e = x->getNumArgs() > 0 ? x->getArg(0) : nullptr;
      continue;
    }
    if (const clang::CallExpr* x = llvm::dyn_cast<clang::CallExpr>(e)) {
      const clang::FunctionDecl* callee = x->getDirectCallee();
      std::string name =
          callee != nullptr ? callee->getNameAsString() : std::string();
      if ((name == "move" || name == "forward") && x->getNumArgs() > 0) {
        e = x->getArg(0);  // wrapper: the root is the argument
        continue;
      }
      if (root->empty() && !name.empty()) *root = name;
      return;
    }
    if (const clang::MemberExpr* me = llvm::dyn_cast<clang::MemberExpr>(e)) {
      const clang::Expr* base = me->getBase()->IgnoreParenImpCasts();
      if (llvm::isa<clang::CXXThisExpr>(base)) {
        *root = me->getMemberDecl()->getNameAsString();
        return;
      }
      e = base;
      continue;
    }
    if (const clang::DeclRefExpr* dre =
            llvm::dyn_cast<clang::DeclRefExpr>(e)) {
      *root = dre->getDecl()->getNameAsString();
      return;
    }
    if (const clang::UnaryOperator* uo =
            llvm::dyn_cast<clang::UnaryOperator>(e)) {
      e = uo->getSubExpr();
      continue;
    }
    if (const clang::ArraySubscriptExpr* ase =
            llvm::dyn_cast<clang::ArraySubscriptExpr>(e)) {
      e = ase->getBase();
      continue;
    }
    return;
  }
}

// The member expression when `e` is a root-level access to a field of the
// enclosing class (`count_`, `this->count_`); null for anything else. This
// is the AST equivalent of the indexer's "rooted identifier that resolves
// to a field" test — locals shadow fields for free under real name lookup.
const clang::MemberExpr* ThisField(const clang::Expr* e) {
  const clang::MemberExpr* me = llvm::dyn_cast<clang::MemberExpr>(e);
  if (me == nullptr) return nullptr;
  if (!llvm::isa<clang::FieldDecl>(me->getMemberDecl())) return nullptr;
  const clang::Expr* base = me->getBase();
  if (base == nullptr) return nullptr;
  return llvm::isa<clang::CXXThisExpr>(base->IgnoreParenImpCasts()) ? me
                                                                    : nullptr;
}

// Declaring class of the accessed field (may be a base of the enclosing
// class) — FieldAccess/FieldStore key on it.
std::string DeclaringClass(const clang::MemberExpr* me) {
  if (const clang::FieldDecl* fd =
          llvm::dyn_cast<clang::FieldDecl>(me->getMemberDecl())) {
    if (const clang::RecordDecl* rd = fd->getParent()) {
      return rd->getNameAsString();
    }
  }
  return "";
}

// Collects calls and switches from one function body into `fn`, tracking
// lambda nesting (calls inside a lambda body belong to the enclosing
// function record but are flagged in_lambda).
class BodyVisitor : public clang::RecursiveASTVisitor<BodyVisitor> {
 public:
  BodyVisitor(const Collector& collector, clang::ASTContext& ctx,
              FunctionInfo* fn)
      : collector_(collector), ctx_(ctx), sm_(ctx.getSourceManager()),
        fn_(fn) {}

  // Each lambda literal becomes a LambdaInfo with its capture list and — when
  // the lambda is a direct call argument — the host call that receives it,
  // which the dataflow passes map to an execution-context sink. Capture
  // initializers evaluate in the enclosing frame and are traversed under the
  // enclosing lambda index; only the body runs under the new one.
  bool TraverseLambdaExpr(clang::LambdaExpr* e) {
    LambdaInfo li;
    clang::SourceLocation loc = sm_.getExpansionLoc(e->getBeginLoc());
    li.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    li.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    li.tok = sm_.getFileOffset(loc);
    switch (e->getCaptureDefault()) {
      case clang::LCD_ByRef:
        li.capture_default = '&';
        break;
      case clang::LCD_ByCopy:
        li.capture_default = '=';
        break;
      default:
        break;
    }
    for (const clang::LambdaCapture& c : e->explicit_captures()) {
      if (c.capturesThis()) {
        li.captures_this = true;
        continue;
      }
      if (!c.capturesVariable()) continue;
      LambdaInfo::Capture cap;
      cap.name = c.getCapturedVar()->getNameAsString();
      cap.by_ref = c.getCaptureKind() == clang::LCK_ByRef;
      cap.is_init = c.getCapturedVar()->isInitCapture();
      li.captures.push_back(std::move(cap));
    }
    if (const clang::CallExpr* host = HostCallOf(e)) {
      if (const clang::CXXMemberCallExpr* mce =
              llvm::dyn_cast<clang::CXXMemberCallExpr>(host)) {
        if (const clang::CXXMethodDecl* md = mce->getMethodDecl()) {
          li.host_callee = md->getNameAsString();
        }
        if (const clang::Expr* obj = mce->getImplicitObjectArgument()) {
          li.host_receiver = CoreTypeName(obj->getType());
        }
      } else if (const clang::FunctionDecl* fd = host->getDirectCallee()) {
        li.host_callee = fd->getNameAsString();
        if (const clang::CXXMethodDecl* md =
                llvm::dyn_cast<clang::CXXMethodDecl>(fd)) {
          li.host_receiver = md->getParent()->getNameAsString();
        }
      }
    }
    int index = static_cast<int>(fn_->lambdas.size());
    fn_->lambdas.push_back(std::move(li));
    for (clang::Expr* init : e->capture_inits()) {
      if (init != nullptr) TraverseStmt(init);
    }
    int prev = cur_lambda_;
    cur_lambda_ = index;
    ++lambda_depth_;
    bool result = TraverseStmt(e->getBody());
    --lambda_depth_;
    cur_lambda_ = prev;
    return result;
  }

  // Scoped-acquire extents (ScopedAcquire::release_tok) are the enclosing
  // block's closing brace; a compound-statement stack recovers it without a
  // token stream.
  bool TraverseCompoundStmt(clang::CompoundStmt* s) {
    compound_ends_.push_back(
        sm_.getFileOffset(sm_.getExpansionLoc(s->getRBracLoc())));
    bool result =
        clang::RecursiveASTVisitor<BodyVisitor>::TraverseCompoundStmt(s);
    compound_ends_.pop_back();
    return result;
  }

  bool VisitVarDecl(clang::VarDecl* d) {
    if (!d->isLocalVarDecl() || llvm::isa<clang::ParmVarDecl>(d)) {
      return true;
    }
    clang::SourceLocation loc = sm_.getExpansionLoc(d->getLocation());
    // Every named local is a dataflow fact for the view-escape pass: its
    // resolved type plus its initializer's root and trailing call.
    if (!d->getName().empty()) {
      LocalVar lv;
      lv.name = d->getNameAsString();
      lv.type = CoreTypeName(d->getType());
      if (const clang::Expr* init = d->getInit()) {
        RootAndCall(init, &lv.init_root, &lv.init_call);
      }
      lv.tok = sm_.getFileOffset(loc);
      lv.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
      lv.file_index =
          collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
      lv.lambda = cur_lambda_;
      fn_->locals.push_back(std::move(lv));
    }
    const clang::CXXRecordDecl* rd =
        d->getType().getNonReferenceType()->getAsCXXRecordDecl();
    if (rd == nullptr || !rd->hasAttr<clang::ScopedLockableAttr>()) {
      return true;
    }
    const clang::Expr* init = d->getInit();
    if (init == nullptr) return true;
    const clang::CXXConstructExpr* ctor =
        llvm::dyn_cast<clang::CXXConstructExpr>(init->IgnoreImplicit());
    ScopedAcquire sa;
    if (ctor != nullptr && ctor->getNumArgs() >= 1) {
      sa.node = LockNodeFor(ctor->getArg(0));
    }
    sa.tok = sm_.getFileOffset(loc);
    sa.release_tok = compound_ends_.empty() ? sa.tok : compound_ends_.back();
    sa.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    sa.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    sa.in_lambda = lambda_depth_ > 0;
    sa.lambda = cur_lambda_;
    fn_->scoped_acquires.push_back(std::move(sa));
    return true;
  }

  bool VisitReturnStmt(clang::ReturnStmt* s) {
    const clang::Expr* value = s->getRetValue();
    if (value == nullptr) return true;
    ReturnInfo ri;
    RootAndCall(value, &ri.root, &ri.call);
    clang::SourceLocation loc = sm_.getExpansionLoc(s->getReturnLoc());
    ri.tok = sm_.getFileOffset(loc);
    ri.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    ri.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    ri.lambda = cur_lambda_;
    fn_->returns.push_back(std::move(ri));
    return true;
  }

  // Pre-order visitation means assignment / increment parents run before
  // their member-expression children, so VisitMemberExpr can look up
  // whether the access it records is a write (and which trailing member
  // call, if any, operates on the field itself).
  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isAssignmentOp()) return true;
    MarkWrite(op->getLHS());
    if (op->getOpcode() == clang::BO_Assign) {
      if (const clang::MemberExpr* me =
              ThisField(op->getLHS()->IgnoreParenImpCasts())) {
        RecordFieldStore(me, op->getRHS());
      }
    }
    return true;
  }

  bool VisitUnaryOperator(clang::UnaryOperator* op) {
    if (op->isIncrementDecrementOp()) MarkWrite(op->getSubExpr());
    return true;
  }

  // Class-typed fields assign through operator= — a CXXOperatorCallExpr,
  // not a BinaryOperator. `view_ = view;` on a string_view field is exactly
  // the store the view-escape pass must see, so this path records the
  // FieldStore too.
  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* e) {
    clang::OverloadedOperatorKind op = e->getOperator();
    bool is_assign =
        op == clang::OO_Equal || op == clang::OO_PlusEqual ||
        op == clang::OO_MinusEqual || op == clang::OO_StarEqual ||
        op == clang::OO_SlashEqual || op == clang::OO_PercentEqual ||
        op == clang::OO_AmpEqual || op == clang::OO_PipeEqual ||
        op == clang::OO_CaretEqual || op == clang::OO_LessLessEqual ||
        op == clang::OO_GreaterGreaterEqual;
    bool is_incdec =
        op == clang::OO_PlusPlus || op == clang::OO_MinusMinus;
    if ((!is_assign && !is_incdec) || e->getNumArgs() == 0) return true;
    MarkWrite(e->getArg(0));
    if (op == clang::OO_Equal && e->getNumArgs() >= 2) {
      if (const clang::MemberExpr* me =
              ThisField(e->getArg(0)->IgnoreParenImpCasts())) {
        RecordFieldStore(me, e->getArg(1));
      }
    }
    return true;
  }

  bool VisitMemberExpr(clang::MemberExpr* e) {
    const clang::MemberExpr* me = ThisField(e);
    if (me == nullptr) return true;
    FieldAccess fa;
    fa.cls = DeclaringClass(me);
    fa.field = me->getMemberDecl()->getNameAsString();
    fa.is_write = write_exprs_.count(e) > 0;
    auto it = via_call_.find(e);
    if (it != via_call_.end()) fa.via_call = it->second;
    clang::SourceLocation loc = sm_.getExpansionLoc(e->getExprLoc());
    fa.tok = sm_.getFileOffset(loc);
    fa.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    fa.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    fa.lambda = cur_lambda_;
    fn_->accesses.push_back(std::move(fa));
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    const clang::CXXMethodDecl* method = e->getMethodDecl();
    if (method == nullptr) return true;
    CallSite call = BaseCall(e->getExprLoc());
    call.callee = method->getNameAsString();
    call.is_member = true;
    if (const clang::Expr* obj = e->getImplicitObjectArgument()) {
      call.receiver_type = CoreTypeName(obj->getType());
      call.receiver_node = LockNodeFor(obj);
      // A call one hop deep operates on the field itself
      // (`counters_.Add(..)`); deeper chains mutate some other object
      // reached through the field and are not the field's mutation.
      if (const clang::MemberExpr* fme =
              ThisField(obj->IgnoreParenImpCasts())) {
        via_call_[fme] = method->getNameAsString();
      }
    }
    if (call.receiver_type.empty() && method->getParent() != nullptr) {
      call.receiver_type = method->getParent()->getNameAsString();
    }
    RecordLastIdentArg(e, &call);
    fn_->calls.push_back(std::move(call));
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    if (llvm::isa<clang::CXXMemberCallExpr>(e) ||
        llvm::isa<clang::CXXOperatorCallExpr>(e)) {
      return true;  // handled above / not modelled
    }
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    CallSite call = BaseCall(e->getExprLoc());
    call.callee = callee->getNameAsString();
    if (const clang::CXXMethodDecl* method =
            llvm::dyn_cast<clang::CXXMethodDecl>(callee)) {
      // Qualified static call (Status::IoError(...)).
      call.is_member = true;
      call.receiver_type = method->getParent()->getNameAsString();
    } else {
      call.qualified = callee->getDeclContext()->isNamespace() ||
                       e->getCallee()->getType().isNull();
    }
    RecordLastIdentArg(e, &call);
    fn_->calls.push_back(std::move(call));
    return true;
  }

  bool VisitSwitchStmt(clang::SwitchStmt* s) {
    SwitchInfo sw;
    clang::SourceLocation loc = sm_.getExpansionLoc(s->getSwitchLoc());
    sw.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    sw.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    for (const clang::SwitchCase* sc = s->getSwitchCaseList(); sc != nullptr;
         sc = sc->getNextSwitchCase()) {
      if (llvm::isa<clang::DefaultStmt>(sc)) {
        sw.has_default = true;
        continue;
      }
      const clang::CaseStmt* cs = llvm::dyn_cast<clang::CaseStmt>(sc);
      if (cs == nullptr) continue;
      const clang::Expr* lhs = cs->getLHS();
      if (lhs == nullptr) continue;
      while (const clang::ConstantExpr* ce =
                 llvm::dyn_cast<clang::ConstantExpr>(lhs)) {
        lhs = ce->getSubExpr();
      }
      lhs = lhs->IgnoreParenImpCasts();
      const clang::DeclRefExpr* ref = llvm::dyn_cast<clang::DeclRefExpr>(lhs);
      if (ref == nullptr) continue;
      const clang::EnumConstantDecl* ecd =
          llvm::dyn_cast<clang::EnumConstantDecl>(ref->getDecl());
      if (ecd == nullptr) continue;
      CaseLabel label;
      label.enumerator = ecd->getNameAsString();
      if (const clang::EnumDecl* ed =
              llvm::dyn_cast<clang::EnumDecl>(ecd->getDeclContext())) {
        label.enum_qual = ed->getNameAsString();
      }
      clang::SourceLocation case_loc = sm_.getExpansionLoc(cs->getCaseLoc());
      label.line = static_cast<int>(sm_.getExpansionLineNumber(case_loc));
      label.tok = sm_.getFileOffset(case_loc);
      sw.cases.push_back(std::move(label));
    }
    fn_->switches.push_back(std::move(sw));
    return true;
  }

 private:
  CallSite BaseCall(clang::SourceLocation loc) {
    CallSite call;
    loc = sm_.getExpansionLoc(loc);
    call.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    call.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    call.tok = sm_.getFileOffset(loc);
    call.in_lambda = lambda_depth_ > 0;
    call.lambda = cur_lambda_;
    return call;
  }

  // Marks an assignment target (and, through subscripts, the container
  // field being indexed into) as written, for the FieldAccess records that
  // VisitMemberExpr emits when it reaches the same nodes.
  void MarkWrite(const clang::Expr* e) {
    while (e != nullptr) {
      e = e->IgnoreParenImpCasts();
      write_exprs_.insert(e);
      if (const clang::ArraySubscriptExpr* ase =
              llvm::dyn_cast<clang::ArraySubscriptExpr>(e)) {
        e = ase->getBase();
        continue;
      }
      if (const clang::CXXOperatorCallExpr* oce =
              llvm::dyn_cast<clang::CXXOperatorCallExpr>(e)) {
        if (oce->getOperator() == clang::OO_Subscript &&
            oce->getNumArgs() >= 1) {
          e = oce->getArg(0);
          continue;
        }
      }
      break;
    }
  }

  void RecordFieldStore(const clang::MemberExpr* me, const clang::Expr* rhs) {
    FieldStore fs;
    fs.cls = DeclaringClass(me);
    fs.field = me->getMemberDecl()->getNameAsString();
    RootAndCall(rhs, &fs.rhs_root, &fs.rhs_call);
    clang::SourceLocation loc = sm_.getExpansionLoc(me->getExprLoc());
    fs.tok = sm_.getFileOffset(loc);
    fs.line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    fs.file_index =
        collector_.FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    fs.lambda = cur_lambda_;
    fn_->field_stores.push_back(std::move(fs));
  }

  // The call expression a lambda literal is a direct argument of, climbing
  // through the implicit conversion/construction wrappers the lambda ->
  // std::function handoff inserts. Null when the lambda is stored in a
  // variable or otherwise not handed straight to a call.
  const clang::CallExpr* HostCallOf(const clang::Stmt* s) {
    const clang::Stmt* cur = s;
    for (int depth = 0; depth < 8; ++depth) {
      clang::DynTypedNodeList parents = ctx_.getParents(*cur);
      if (parents.empty()) return nullptr;
      const clang::Stmt* p = parents[0].get<clang::Stmt>();
      if (p == nullptr) return nullptr;
      if (const clang::CallExpr* call = llvm::dyn_cast<clang::CallExpr>(p)) {
        for (unsigned i = 0; i < call->getNumArgs(); ++i) {
          if (call->getArg(i) == cur) return call;
        }
        return nullptr;  // the callee position, not an argument
      }
      if (llvm::isa<clang::ImplicitCastExpr>(p) ||
          llvm::isa<clang::CXXConstructExpr>(p) ||
          llvm::isa<clang::MaterializeTemporaryExpr>(p) ||
          llvm::isa<clang::CXXBindTemporaryExpr>(p) ||
          llvm::isa<clang::CXXFunctionalCastExpr>(p)) {
        cur = p;
        continue;
      }
      return nullptr;
    }
    return nullptr;
  }

  // The element-helper argument of PutVector/GetVector calls (a plain
  // function reference), the waited-on mutex of a CondVar::Wait (a member
  // field), and the payload type of a SendTo (any expression — the AST type
  // is exact through std::move, temporaries and braced construction).
  static void RecordLastIdentArg(const clang::CallExpr* e, CallSite* call) {
    if (e->getNumArgs() == 0) return;
    const clang::Expr* last = e->getArg(e->getNumArgs() - 1);
    if (last == nullptr) return;
    call->last_arg_type = CoreTypeName(last->getType());
    last = last->IgnoreParenImpCasts();
    if (const clang::DeclRefExpr* ref =
            llvm::dyn_cast<clang::DeclRefExpr>(last)) {
      if (llvm::isa<clang::FunctionDecl>(ref->getDecl()) ||
          llvm::isa<clang::VarDecl>(ref->getDecl())) {
        call->last_ident_arg = ref->getDecl()->getNameAsString();
      }
    } else if (const clang::MemberExpr* me =
                   llvm::dyn_cast<clang::MemberExpr>(last)) {
      call->last_ident_arg = me->getMemberDecl()->getNameAsString();
    }
  }

  const Collector& collector_;
  clang::ASTContext& ctx_;
  const clang::SourceManager& sm_;
  FunctionInfo* fn_;
  int lambda_depth_ = 0;
  int cur_lambda_ = -1;  // index into fn_->lambdas, -1 = body proper
  std::vector<unsigned> compound_ends_;
  // Filled by the write/call parents before the member expressions they
  // contain are visited (pre-order traversal).
  std::set<const clang::Expr*> write_exprs_;
  std::map<const clang::MemberExpr*, std::string> via_call_;
};

class IndexVisitor : public clang::RecursiveASTVisitor<IndexVisitor> {
 public:
  IndexVisitor(Collector* collector, clang::ASTContext& ctx)
      : collector_(collector), ctx_(ctx), sm_(ctx.getSourceManager()) {}

  bool VisitCXXRecordDecl(clang::CXXRecordDecl* d) {
    if (!d->isThisDeclarationADefinition() || d->getName().empty()) {
      return true;
    }
    if (d->isLambda()) return true;
    std::string file;
    int line = 0;
    if (!LocateInModel(d->getLocation(), &file, &line)) return true;
    ClassInfo& cls = collector_->model->classes[d->getNameAsString()];
    if (cls.name.empty()) {
      cls.name = d->getNameAsString();
      cls.is_struct = d->isStruct();
      cls.file = file;
      cls.line = line;
      for (const clang::CXXBaseSpecifier& base : d->bases()) {
        std::string name = CoreTypeName(base.getType());
        if (!name.empty()) cls.bases.push_back(name);
      }
      for (const clang::FieldDecl* f : d->fields()) {
        std::string type = CoreTypeName(f->getType());
        if (!type.empty()) cls.fields[f->getNameAsString()] = type;
        cls.field_lines[f->getNameAsString()] =
            static_cast<int>(sm_.getExpansionLineNumber(
                sm_.getExpansionLoc(f->getLocation())));
        if (const clang::GuardedByAttr* g =
                f->getAttr<clang::GuardedByAttr>()) {
          std::vector<std::string> chain = ChainOf(g->getArg());
          if (!chain.empty()) {
            cls.field_guards[f->getNameAsString()] = std::move(chain);
          }
        }
        for (const clang::AnnotateAttr* a :
             f->specific_attrs<clang::AnnotateAttr>()) {
          llvm::StringRef ann = a->getAnnotation();
          if (ann.startswith("mr_context_confined:")) {
            cls.field_confined[f->getNameAsString()] =
                ParseCtx(ann.drop_front(20).str());
            continue;
          }
          bool before = ann.startswith("mr_acquired_before:");
          if (!before && !ann.startswith("mr_acquired_after:")) continue;
          llvm::StringRef args =
              ann.drop_front(before ? 19 : 18);
          for (std::vector<std::string>& chain : ParseEdgeAnnotation(args)) {
            ClassInfo::LockEdge edge;
            edge.field = f->getNameAsString();
            edge.target = std::move(chain);
            edge.before = before;
            edge.line = static_cast<int>(sm_.getExpansionLineNumber(
                sm_.getExpansionLoc(f->getLocation())));
            cls.lock_edges.push_back(std::move(edge));
          }
        }
      }
    }
    if (d->hasAttr<clang::CapabilityAttr>()) cls.is_capability = true;
    if (d->hasAttr<clang::ScopedLockableAttr>()) {
      cls.is_scoped_capability = true;
    }
    for (const clang::CXXMethodDecl* m : d->methods()) {
      if (m->isImplicit()) continue;
      cls.methods.insert(m->getNameAsString());
      std::string ret = CoreTypeName(m->getReturnType());
      if (!ret.empty()) cls.method_ret[m->getNameAsString()] = ret;
    }
    return true;
  }

  bool VisitEnumDecl(clang::EnumDecl* d) {
    if (!d->isThisDeclarationADefinition() || d->getName().empty()) {
      return true;
    }
    std::string file;
    int line = 0;
    if (!LocateInModel(d->getLocation(), &file, &line)) return true;
    for (const EnumInfo& existing : collector_->model->enums) {
      if (existing.name == d->getNameAsString() && existing.file == file &&
          existing.line == line) {
        return true;  // already recorded from another TU
      }
    }
    EnumInfo info;
    info.name = d->getNameAsString();
    if (const clang::CXXRecordDecl* scope = llvm::dyn_cast<clang::CXXRecordDecl>(
            d->getDeclContext())) {
      info.scope = scope->getNameAsString();
    }
    info.file = file;
    info.line = line;
    for (const clang::EnumConstantDecl* e : d->enumerators()) {
      info.enumerators.push_back(e->getNameAsString());
    }
    collector_->model->enums.push_back(std::move(info));
    return true;
  }

  bool VisitFunctionDecl(clang::FunctionDecl* d) {
    if (d->isImplicit() || llvm::isa<clang::CXXDeductionGuideDecl>(d)) {
      return true;
    }
    const clang::CXXMethodDecl* method =
        llvm::dyn_cast<clang::CXXMethodDecl>(d);
    if (method != nullptr && method->getParent()->isLambda()) return true;
    std::string file;
    int line = 0;
    if (!LocateInModel(d->getLocation(), &file, &line)) return true;

    FunctionInfo fn;
    fn.name = d->getNameAsString();
    if (method != nullptr) fn.cls = method->getParent()->getNameAsString();
    fn.is_ctor_dtor = llvm::isa<clang::CXXConstructorDecl>(d) ||
                      llvm::isa<clang::CXXDestructorDecl>(d);
    fn.is_operator = d->isOverloadedOperator();
    fn.is_static = method != nullptr ? method->isStatic()
                                     : !d->isExternallyVisible();
    fn.is_public = method == nullptr || d->getAccess() == clang::AS_public;
    fn.file = file;
    fn.line = line;
    fn.file_index = collector_->FileIndexFor(
        Canonical(sm_.getFilename(sm_.getExpansionLoc(d->getLocation())).str()));
    fn.ctx = CtxFromAttrs(d);
    if (d->getNumParams() > 0) {
      fn.param0_type = CoreTypeName(d->getParamDecl(0)->getType());
    }
    if (!fn.is_ctor_dtor && !fn.is_operator) {
      fn.ret_type = CoreTypeName(d->getReturnType());
    }
    // MR_REQUIRES lowers to the native requires_capability attribute; its
    // argument expressions become the identifier chains the held-set
    // machinery resolves against the whole model.
    for (const clang::RequiresCapabilityAttr* r :
         d->specific_attrs<clang::RequiresCapabilityAttr>()) {
      for (const clang::Expr* arg : r->args()) {
        std::vector<std::string> chain = ChainOf(arg);
        if (!chain.empty()) fn.entry_locks.push_back(std::move(chain));
      }
    }
    fn.key = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
    if (fn.name == "operator()") fn.key += "@" + fn.param0_type;

    bool has_body = d->doesThisDeclarationHaveABody();
    Model* model = collector_->model;
    auto it = collector_->fn_index.find(fn.key);
    int index;
    if (it == collector_->fn_index.end()) {
      index = static_cast<int>(model->functions.size());
      collector_->fn_index[fn.key] = index;
      model->functions.push_back(std::move(fn));
    } else {
      index = it->second;
      FunctionInfo& existing = model->functions[index];
      if (existing.ctx == Ctx::kNone) existing.ctx = fn.ctx;
      if (existing.ret_type.empty()) existing.ret_type = fn.ret_type;
      if (existing.entry_locks.empty()) {
        existing.entry_locks = std::move(fn.entry_locks);
      }
      // Prefer the header declaration site for diagnostics, matching the
      // built-in indexer's headers-first merge order.
      bool existing_is_header =
          existing.file.size() > 2 &&
          existing.file.compare(existing.file.size() - 2, 2, ".h") == 0;
      bool new_is_header = file.size() > 2 &&
                           file.compare(file.size() - 2, 2, ".h") == 0;
      if (new_is_header && !existing_is_header) {
        existing.file = file;
        existing.line = line;
        existing.file_index = fn.file_index;
        existing.is_public = fn.is_public;
        if (fn.ctx != Ctx::kNone) existing.ctx = fn.ctx;
      }
    }

    if (has_body && !model->functions[index].is_defn) {
      model->functions[index].is_defn = true;
      BodyVisitor body(*collector_, ctx_, &model->functions[index]);
      body.TraverseStmt(d->getBody());
    }
    return true;
  }

 private:
  // Maps a location to a scanned input file; false for everything else
  // (system headers, gtest, generated code).
  bool LocateInModel(clang::SourceLocation loc, std::string* file,
                     int* line) {
    loc = sm_.getExpansionLoc(loc);
    if (loc.isInvalid()) return false;
    int index = collector_->FileIndexFor(Canonical(sm_.getFilename(loc).str()));
    if (index < 0) return false;
    *file = collector_->model->files[index].path;
    *line = static_cast<int>(sm_.getExpansionLineNumber(loc));
    return true;
  }

  Collector* collector_;
  clang::ASTContext& ctx_;
  const clang::SourceManager& sm_;
};

class IndexConsumer : public clang::ASTConsumer {
 public:
  explicit IndexConsumer(Collector* collector) : collector_(collector) {}

  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    IndexVisitor visitor(collector_, ctx);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  Collector* collector_;
};

class IndexAction : public clang::ASTFrontendAction {
 public:
  explicit IndexAction(Collector* collector) : collector_(collector) {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& /*ci*/, llvm::StringRef /*file*/) override {
    return std::make_unique<IndexConsumer>(collector_);
  }

 private:
  Collector* collector_;
};

class IndexActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit IndexActionFactory(Collector* collector) : collector_(collector) {}

  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<IndexAction>(collector_);
  }

 private:
  Collector* collector_;
};

}  // namespace

int RunClangFrontend(const std::vector<std::string>& files,
                     const std::string& build_path, Model* model,
                     std::string* error) {
  // The model still needs per-file suppression maps (and paths for
  // diagnostics); lex each input for its allow comments only. Token streams
  // are dropped — offsets from the AST replace them.
  Collector collector;
  collector.model = model;
  std::vector<std::string> tus;
  for (const std::string& f : files) {
    std::ifstream in(f);
    if (!in) {
      *error = "cannot read " + f;
      return 1;
    }
    std::ostringstream content;
    content << in.rdbuf();
    SourceFile lexed = LexFile(f, content.str());
    lexed.tokens.clear();
    collector.file_index[Canonical(f)] =
        static_cast<int>(model->files.size());
    model->files.push_back(std::move(lexed));
    if (f.size() > 3 && f.compare(f.size() - 3, 3, ".cc") == 0) {
      tus.push_back(f);
    }
  }
  if (tus.empty()) {
    *error = "no .cc translation units among the inputs";
    return 1;
  }

  std::string db_error;
  std::unique_ptr<clang::tooling::CompilationDatabase> db;
  if (!build_path.empty()) {
    db = clang::tooling::CompilationDatabase::loadFromDirectory(build_path,
                                                                db_error);
  } else {
    db = clang::tooling::CompilationDatabase::autoDetectFromSource(tus[0],
                                                                   db_error);
  }
  if (db == nullptr) {
    *error = "no compilation database: " + db_error +
             " (configure a build first; pass -p <build-dir>)";
    return 1;
  }

  // A TU missing from the database would otherwise be parsed with default
  // flags (or skipped by wrappers) and silently analyzed against the wrong
  // build — fail loudly and name the fix instead.
  std::vector<std::string> missing;
  for (const std::string& tu : tus) {
    if (db->getCompileCommands(clang::tooling::getAbsolutePath(tu)).empty()) {
      missing.push_back(tu);
    }
  }
  if (!missing.empty()) {
    std::ostringstream msg;
    msg << "compile_commands.json is stale: no entry for";
    for (const std::string& f : missing) msg << " " << f;
    msg << " — re-run cmake (the tree configures with "
           "CMAKE_EXPORT_COMPILE_COMMANDS=ON) so new sources are indexed";
    *error = msg.str();
    return 1;
  }

  clang::tooling::ClangTool tool(*db, tus);
  // The tool re-parses the tree with whatever warnings the database
  // recorded; findings are the analyzer's job, so silence diagnostics.
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-Wno-everything", clang::tooling::ArgumentInsertPosition::END));
  IndexActionFactory factory(&collector);
  if (tool.run(&factory) != 0) {
    *error = "one or more translation units failed to parse";
    return 1;
  }

  for (size_t i = 0; i < model->functions.size(); ++i) {
    const FunctionInfo& fn = model->functions[i];
    model->by_key[fn.key].push_back(static_cast<int>(i));
    model->by_name[fn.name].push_back(static_cast<int>(i));
  }
  return 0;
}

}  // namespace analyze
}  // namespace miniraid

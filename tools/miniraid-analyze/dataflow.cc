// Dataflow passes: shared-state (guarded-by inference) and view-escape
// (buffer-lifetime analysis).
//
// shared-state generalizes the MR_RUNS_ON context discipline from annotated
// entry points to the whole program: the set of execution contexts reaching
// each function is the closure of the annotated context graph (annotated
// functions are contracts and re-anchor; unannotated functions accumulate
// their callers' contexts; a lambda handed to a deferred sink runs on that
// sink's context), and the set of mutexes observably held at each field
// access combines the lock-order pass's intra-procedural held intervals with
// an interprocedural entry-held fixpoint (MR_REQUIRES chains union the
// intersection over call sites of what each caller demonstrably holds).
// A field reachable from two or more contexts with writes, no common held
// mutex, no MR_GUARDED_BY, and no MR_CONTEXT_CONFINED waiver is a race
// finding; a field whose declared guard is provably absent from the common
// held set while some other mutex is always held is a guard-disagreement
// finding. Everything else gets a benign verdict in the JSON report
// (single-context, read-only, annotated, confined, guarded).
//
// view-escape tracks string_view/Slice/span and raw character pointers
// derived from owning buffers (std::string, std::vector, ...) through local
// initializers (taint closure), and flags the four ways such a view can
// outlive its buffer: stored into a field, returned past the frame, inserted
// into a member container, or captured by a lambda handed to a *deferred*
// sink (Post/ScheduleAfter). By-reference captures into deferred lambdas are
// flagged unconditionally — that is the PR 8 gap (a stack reference smuggled
// into EventLoop::Post) folded into this rule. PostAndWait and Drive
// complete before returning, so their stack captures are the allowed idiom.
//
// Conservatism inherits the indexer's no-guess policy: an unresolved
// receiver, a hostless lambda (assigned to a variable and posted later), or
// an initializer the root extractor cannot pin down produces no finding.

#include <algorithm>
#include <iterator>
#include <sstream>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

// Context sets as bitmasks; kAny means callable from all three.
int CtxBit(Ctx c) {
  switch (c) {
    case Ctx::kManaging: return 1;
    case Ctx::kLoop: return 2;
    case Ctx::kClient: return 4;
    case Ctx::kAny: return 7;
    default: return 0;
  }
}

std::set<std::string> CtxMaskNames(int mask) {
  std::set<std::string> out;
  if (mask & 1) out.insert("managing");
  if (mask & 2) out.insert("loop");
  if (mask & 4) out.insert("client");
  return out;
}

int CtxCount(int mask) {
  return ((mask >> 0) & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);
}

const CheckOptions::DeferredSink* MatchSink(const Model& m,
                                            const CheckOptions& opts,
                                            const std::string& receiver,
                                            const std::string& method) {
  if (receiver.empty()) return nullptr;
  std::string r = m.ResolveAlias(receiver);
  for (const CheckOptions::DeferredSink& s : opts.sinks) {
    if (s.method == method &&
        (s.receiver.empty() || m.DerivesFrom(r, s.receiver))) {
      return &s;
    }
  }
  return nullptr;
}

void JsonStr(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Whole-program context and held-set inference, shared by both passes.
struct Dataflow {
  const Model& m;
  const CheckOptions& opts;

  std::vector<int> fctx;  // inferred context mask per function index
  std::vector<std::vector<HeldInterval>> intervals;
  std::vector<std::set<std::string>> entry;  // entry-held (includes requires)

  // Context a lambda body runs on: its deferred sink's context when the
  // lambda is a direct argument to one, the enclosing function's contexts
  // otherwise (synchronous callables — std::sort comparators, PostAndWait —
  // run on the caller's context).
  int LambdaCtx(size_t i, int l) const {
    const LambdaInfo& li = m.functions[i].lambdas[l];
    if (!li.host_callee.empty()) {
      const CheckOptions::DeferredSink* s =
          MatchSink(m, opts, li.host_receiver, li.host_callee);
      if (s != nullptr && s->runs_on != Ctx::kNone) {
        return CtxBit(s->runs_on);
      }
    }
    return fctx[i];
  }

  void InferContexts() {
    size_t n = m.functions.size();
    fctx.assign(n, 0);
    // Seeds: annotated functions; unannotated overrides inherit the base
    // method's contract as a seed (virtual dispatch from an annotated base
    // lands there even when no direct call edge names the override).
    for (size_t i = 0; i < n; ++i) {
      if (m.functions[i].ctx != Ctx::kNone) {
        fctx[i] = CtxBit(m.functions[i].ctx);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const FunctionInfo& fn = m.functions[i];
      if (fn.ctx != Ctx::kNone || fn.cls.empty()) continue;
      std::vector<std::string> stack;
      auto cit = m.classes.find(m.ResolveAlias(fn.cls));
      if (cit != m.classes.end()) stack = cit->second.bases;
      std::set<std::string> seen;
      while (!stack.empty()) {
        std::string b = stack.back();
        stack.pop_back();
        if (!seen.insert(b).second) continue;
        const FunctionInfo* bf = m.Find(b + "::" + fn.name);
        if (bf != nullptr && bf->ctx != Ctx::kNone) {
          fctx[i] |= CtxBit(bf->ctx);
          break;
        }
        auto bit = m.classes.find(b);
        if (bit == m.classes.end()) continue;
        for (const std::string& bb : bit->second.bases) stack.push_back(bb);
      }
    }
    // Closure: caller contexts flow into unannotated callees; annotated
    // callees re-anchor (their own declaration is the contract). Calls made
    // inside a lambda flow the lambda's context, not the frame's.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        for (const CallSite& c : m.functions[i].calls) {
          int src = c.lambda >= 0 ? LambdaCtx(i, c.lambda) : fctx[i];
          if (src == 0) continue;
          for (int t : ResolveCallTargets(m, c)) {
            if (m.functions[t].ctx != Ctx::kNone) continue;
            if ((fctx[t] | src) != fctx[t]) {
              fctx[t] |= src;
              changed = true;
            }
          }
        }
      }
    }
  }

  void ComputeHeldSets() {
    size_t n = m.functions.size();
    intervals.resize(n);
    std::vector<std::set<std::string>> requires_set(n);
    entry.assign(n, {});
    for (size_t i = 0; i < n; ++i) {
      intervals[i] = ComputeHeldIntervals(m, m.functions[i]);
      for (const auto& chain : m.functions[i].entry_locks) {
        std::string node = ResolveLockNode(m, m.functions[i].cls, chain);
        if (!node.empty()) requires_set[i].insert(node);
      }
      entry[i] = requires_set[i];
    }
    // Entry-held fixpoint, decreasing from top. A call site contributes
    // what is observably held there plus the caller's own entry set; call
    // sites inside lambdas contribute only lambda-local intervals (the
    // continuation does not run under its creator's locks). Functions with
    // no call sites keep their MR_REQUIRES set only.
    struct Site {
      int caller;
      size_t tok;
      int lambda;
    };
    std::vector<std::vector<Site>> callers(n);
    for (size_t i = 0; i < n; ++i) {
      for (const CallSite& c : m.functions[i].calls) {
        for (int t : ResolveCallTargets(m, c)) {
          callers[t].push_back({static_cast<int>(i), c.tok, c.lambda});
        }
      }
    }
    std::vector<char> top(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (!callers[i].empty()) top[i] = 1;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        if (callers[i].empty()) continue;
        bool meet_defined = false;
        std::set<std::string> meet;
        for (const Site& s : callers[i]) {
          if (s.lambda < 0 && top[s.caller]) continue;  // still unconstrained
          std::set<std::string> contrib =
              HeldNodesAt(intervals[s.caller], s.tok, s.lambda);
          if (s.lambda < 0) {
            contrib.insert(entry[s.caller].begin(), entry[s.caller].end());
          }
          if (!meet_defined) {
            meet = std::move(contrib);
            meet_defined = true;
          } else {
            std::set<std::string> inter;
            std::set_intersection(meet.begin(), meet.end(), contrib.begin(),
                                  contrib.end(),
                                  std::inserter(inter, inter.begin()));
            meet = std::move(inter);
          }
          if (meet.empty()) break;
        }
        if (!meet_defined) continue;  // every caller still at top
        std::set<std::string> next = requires_set[i];
        next.insert(meet.begin(), meet.end());
        if (top[i]) {
          top[i] = 0;
          entry[i] = std::move(next);
          changed = true;
        } else if (next != entry[i]) {
          entry[i] = std::move(next);
          changed = true;
        }
      }
    }
    // Functions whose callers never grounded (call cycles unreachable from
    // any rooted entry) fall back to their MR_REQUIRES set.
    for (size_t i = 0; i < n; ++i) {
      if (top[i]) entry[i] = requires_set[i];
    }
  }

  std::set<std::string> HeldAtAccess(size_t i, const FieldAccess& a) const {
    if (a.lambda >= 0) {
      // A deferred continuation holds only what it acquires itself.
      return HeldNodesAt(intervals[i], a.tok, a.lambda);
    }
    std::set<std::string> out = entry[i];
    std::set<std::string> local = HeldNodesAt(intervals[i], a.tok, -1);
    out.insert(local.begin(), local.end());
    return out;
  }
};

std::string JoinSet(const std::set<std::string>& s) {
  std::string out;
  for (const std::string& e : s) {
    if (!out.empty()) out += ", ";
    out += e;
  }
  return out;
}

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& c : chain) {
    if (!out.empty()) out += ".";
    out += c;
  }
  return out;
}

}  // namespace

SharedStateReport BuildSharedStateReport(const Model& m,
                                         const CheckOptions& opts,
                                         std::vector<Finding>* findings) {
  SharedStateReport report;
  if (!opts.check_shared_state) return report;
  Dataflow df{m, opts, {}, {}, {}};
  df.InferContexts();
  df.ComputeHeldSets();

  struct Acc {
    int ctx_mask = 0;
    int reads = 0;
    int writes = 0;
    bool held_defined = false;
    std::set<std::string> common_held;
  };
  std::map<std::pair<std::string, std::string>, Acc> acc;

  for (size_t i = 0; i < m.functions.size(); ++i) {
    const FunctionInfo& fn = m.functions[i];
    for (const FieldAccess& a : fn.accesses) {
      // Construction and destruction are single-owner phases; a lambda
      // created there still escapes, so only frame accesses are excluded.
      if (fn.is_ctor_dtor && a.lambda < 0) continue;
      Acc& f = acc[{a.cls, a.field}];
      bool write = a.is_write || (!a.via_call.empty() &&
                                  opts.mutating_members.count(a.via_call));
      if (write) {
        ++f.writes;
      } else {
        ++f.reads;
      }
      int actx = a.lambda >= 0 ? df.LambdaCtx(i, a.lambda) : df.fctx[i];
      if (actx == 0) continue;  // unreachable from any annotated root
      f.ctx_mask |= actx;
      std::set<std::string> held = df.HeldAtAccess(i, a);
      if (!f.held_defined) {
        f.common_held = std::move(held);
        f.held_defined = true;
      } else {
        std::set<std::string> inter;
        std::set_intersection(f.common_held.begin(), f.common_held.end(),
                              held.begin(), held.end(),
                              std::inserter(inter, inter.begin()));
        f.common_held = std::move(inter);
      }
    }
  }

  for (const auto& kv : acc) {
    const std::string& cls = kv.first.first;
    const std::string& field = kv.first.second;
    const Acc& f = kv.second;
    auto cit = m.classes.find(cls);
    if (cit == m.classes.end()) continue;
    const ClassInfo& ci = cit->second;
    auto tit = ci.fields.find(field);
    std::string ftype =
        tit != ci.fields.end() ? m.ResolveAlias(tit->second) : "";
    // Internally synchronized and lock-typed fields are not race evidence.
    if (opts.shared_state_exempt_types.count(ftype)) continue;
    auto fcls = m.classes.find(ftype);
    if (fcls != m.classes.end() && (fcls->second.is_capability ||
                                    fcls->second.is_scoped_capability)) {
      continue;
    }

    SharedStateReport::Field out;
    out.cls = cls;
    out.field = field;
    out.type = ftype;
    out.file = ci.file;
    auto lit = ci.field_lines.find(field);
    out.line = lit != ci.field_lines.end() ? lit->second : ci.line;
    out.contexts = CtxMaskNames(f.ctx_mask);
    if (f.held_defined) out.common_guards = f.common_held;
    out.reads = f.reads;
    out.writes = f.writes;

    auto git = ci.field_guards.find(field);
    if (git != ci.field_guards.end()) {
      out.declared_guard = ResolveLockNode(m, cls, git->second);
      if (out.declared_guard.empty()) {
        out.declared_guard = JoinChain(git->second);  // unresolved, verbatim
      }
    }
    auto wit = ci.field_confined.find(field);
    if (wit != ci.field_confined.end()) out.waiver = CtxName(wit->second);

    if (git != ci.field_guards.end()) {
      // Declared MR_GUARDED_BY is trusted (clang TSA is the authority on
      // enforcement) — unless the observably-held evidence names a common
      // mutex and the declared one is not in it.
      bool resolvable = !ResolveLockNode(m, cls, git->second).empty();
      if (resolvable && f.held_defined && !f.common_held.empty() &&
          !f.common_held.count(out.declared_guard)) {
        out.verdict = "guard-disagreement";
        Finding fd;
        fd.rule = "shared-state";
        fd.file = out.file;
        fd.line = out.line;
        std::ostringstream msg;
        msg << "field '" << cls << "::" << field << "' is declared "
            << "MR_GUARDED_BY '" << out.declared_guard
            << "' but every observed access holds '"
            << JoinSet(f.common_held)
            << "' instead — annotation and locking disagree";
        fd.message = msg.str();
        findings->push_back(std::move(fd));
      } else {
        out.verdict = "annotated";
      }
    } else if (!out.waiver.empty()) {
      out.verdict = "confined";
    } else if (CtxCount(f.ctx_mask) < 2) {
      out.verdict = "single-context";
    } else if (f.writes == 0) {
      out.verdict = "read-only";
    } else if (f.held_defined && !f.common_held.empty()) {
      out.verdict = "guarded";
    } else {
      out.verdict = "race";
      Finding fd;
      fd.rule = "shared-state";
      fd.file = out.file;
      fd.line = out.line;
      std::ostringstream msg;
      msg << "field '" << cls << "::" << field << "' ("
          << (ftype.empty() ? "unknown type" : ftype)
          << ") is written and reachable from contexts {"
          << JoinSet(out.contexts)
          << "} with no common mutex held, no MR_GUARDED_BY, and no "
             "MR_CONTEXT_CONFINED waiver";
      fd.message = msg.str();
      findings->push_back(std::move(fd));
    }
    report.fields.push_back(std::move(out));
  }
  return report;
}

void WriteSharedStateJson(const SharedStateReport& report, std::ostream& os) {
  os << "{\n  \"fields\": [";
  bool first = true;
  for (const SharedStateReport::Field& f : report.fields) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"class\": ";
    JsonStr(f.cls, os);
    os << ", \"field\": ";
    JsonStr(f.field, os);
    os << ", \"type\": ";
    JsonStr(f.type, os);
    os << ", \"file\": ";
    JsonStr(f.file, os);
    os << ", \"line\": " << f.line << ", \"contexts\": [";
    bool sep = false;
    for (const std::string& c : f.contexts) {
      if (sep) os << ", ";
      JsonStr(c, os);
      sep = true;
    }
    os << "], \"common_guards\": [";
    sep = false;
    for (const std::string& g : f.common_guards) {
      if (sep) os << ", ";
      JsonStr(g, os);
      sep = true;
    }
    os << "], \"declared_guard\": ";
    JsonStr(f.declared_guard, os);
    os << ", \"waiver\": ";
    JsonStr(f.waiver, os);
    os << ", \"reads\": " << f.reads << ", \"writes\": " << f.writes
       << ", \"verdict\": ";
    JsonStr(f.verdict, os);
    os << "}";
  }
  os << "\n  ],\n  \"total\": " << report.fields.size() << "\n}\n";
}

void CheckViewEscape(const Model& m, const CheckOptions& opts,
                     std::vector<Finding>* findings) {
  if (!opts.check_view_escape) return;
  auto path_of = [&](int fi, const FunctionInfo& fn) {
    return fi >= 0 && fi < static_cast<int>(m.files.size())
               ? m.files[fi].path
               : fn.file;
  };
  auto report = [&](const std::string& file, int line,
                    const std::string& message) {
    Finding f;
    f.rule = "view-escape";
    f.file = file;
    f.line = line;
    f.message = message;
    findings->push_back(std::move(f));
  };

  for (const FunctionInfo& fn : m.functions) {
    if (fn.locals.empty() && fn.field_stores.empty() && fn.returns.empty() &&
        fn.lambdas.empty()) {
      continue;
    }
    std::map<std::string, const LocalVar*> locals;
    for (const LocalVar& lv : fn.locals) locals[lv.name] = &lv;
    auto local_type = [&](const std::string& name) -> std::string {
      auto it = locals.find(name);
      return it != locals.end() ? it->second->type : "";
    };
    auto is_buffer_local = [&](const std::string& name) {
      return opts.buffer_types.count(local_type(name)) > 0;
    };

    // Taint closure: locals that are views of (or raw pointers into) a
    // function-local owning buffer. Separately, locals that are views of a
    // *member* buffer (the arena pattern) are member-anchored: storing one
    // into a field of the same object is lifetime-sound.
    std::set<std::string> tainted, member_anchored;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const LocalVar& lv : fn.locals) {
        if (lv.init_root.empty()) continue;
        bool viewy = opts.view_types.count(lv.type) > 0;
        bool src_call = !lv.init_call.empty() &&
                        opts.view_source_calls.count(lv.init_call) > 0;
        if (!viewy && !src_call) continue;
        bool root_hot =
            tainted.count(lv.init_root) || is_buffer_local(lv.init_root);
        if (root_hot && tainted.insert(lv.name).second) changed = true;
        bool root_member = member_anchored.count(lv.init_root) ||
                           (locals.count(lv.init_root) == 0 &&
                            !m.FieldOwner(fn.cls, lv.init_root).empty());
        if (root_member && member_anchored.insert(lv.name).second) {
          changed = true;
        }
      }
    }

    // (1) view stored into a field. Member-rooted RHS is allowed (a view of
    // the object's own buffer shares its lifetime); anything rooted in the
    // frame — a local, a parameter, a tainted chain — escapes it.
    if (!fn.is_ctor_dtor && !fn.is_operator) {
      for (const FieldStore& fs : fn.field_stores) {
        std::string ftype = m.FieldType(fs.cls, fs.field);
        bool view_field = opts.view_types.count(ftype) > 0;
        bool ptr_field = ftype == "char" || ftype == "uint8_t";
        if (!view_field && !ptr_field) continue;
        if (fs.rhs_root.empty()) continue;
        bool member_rooted =
            member_anchored.count(fs.rhs_root) > 0 ||
            (locals.count(fs.rhs_root) == 0 &&
             !m.FieldOwner(fn.cls, fs.rhs_root).empty());
        bool rhs_tainted = tainted.count(fs.rhs_root) > 0;
        bool src_call = !fs.rhs_call.empty() &&
                        opts.view_source_calls.count(fs.rhs_call) > 0;
        bool hot = rhs_tainted ||
                   (view_field && !member_rooted) ||
                   (ptr_field && src_call && !member_rooted);
        if (!hot) continue;
        std::ostringstream msg;
        msg << "'" << fn.qual() << "' stores a view rooted at '"
            << fs.rhs_root << "' into field '" << fs.cls << "::" << fs.field
            << "' — the field outlives the buffer the view points into";
        report(path_of(fs.file_index, fn), fs.line, msg.str());
      }
    }

    // (2) view returned past the frame.
    bool ret_view = opts.view_types.count(fn.ret_type) > 0;
    bool ret_ptr = fn.ret_type == "char" || fn.ret_type == "uint8_t" ||
                   fn.ret_type == "byte";
    for (const ReturnInfo& r : fn.returns) {
      if (r.lambda >= 0 || r.root.empty()) continue;
      bool root_tainted = tainted.count(r.root) > 0;
      bool root_local_buffer = is_buffer_local(r.root);
      bool src_call = !r.call.empty() &&
                      opts.view_source_calls.count(r.call) > 0;
      bool hot = (ret_view && (root_tainted || root_local_buffer)) ||
                 (ret_ptr && src_call && (root_tainted || root_local_buffer));
      if (!hot) continue;
      std::ostringstream msg;
      msg << "'" << fn.qual() << "' returns a view of function-local buffer '"
          << r.root << "' — it dangles as soon as the frame is gone";
      report(path_of(r.file_index, fn), r.line, msg.str());
    }

    // (3) view inserted into a member container.
    for (const CallSite& c : fn.calls) {
      if (!c.is_member || c.receiver_node.empty()) continue;
      if (!opts.container_inserts.count(c.callee)) continue;
      std::string arg = CallLastIdentArg(m, c);
      if (arg.empty() || !tainted.count(arg)) continue;
      std::ostringstream msg;
      msg << "'" << fn.qual() << "' inserts view-of-local-buffer '" << arg
          << "' into member container '" << c.receiver_node
          << "' — the container outlives the buffer";
      report(path_of(c.file_index, fn), c.line, msg.str());
    }

    // (4) captures escaping into a deferred lambda. `this` is fine (the
    // continuation runs on the object's own context); references and views
    // of frame state are not — the frame is gone when the lambda runs.
    for (const LambdaInfo& li : fn.lambdas) {
      if (li.host_callee.empty()) continue;
      const CheckOptions::DeferredSink* sink =
          MatchSink(m, opts, li.host_receiver, li.host_callee);
      if (sink == nullptr || !sink->deferred) continue;
      std::string file = path_of(li.file_index, fn);
      std::string via = (li.host_receiver.empty() ? std::string()
                                                  : li.host_receiver + "::") +
                        li.host_callee;
      if (li.capture_default == '&') {
        std::ostringstream msg;
        msg << "'" << fn.qual() << "' captures the enclosing frame by "
            << "reference ([&]) in a lambda deferred via '" << via
            << "' — the frame may be gone when it runs";
        report(file, li.line, msg.str());
      }
      for (const LambdaInfo::Capture& cap : li.captures) {
        if (cap.by_ref) {
          std::ostringstream msg;
          msg << "'" << fn.qual() << "' captures '" << cap.name
              << "' by reference in a lambda deferred via '" << via
              << "' — stack capture outliving its frame (use PostAndWait "
                 "for synchronous handoff, or capture by value)";
          report(file, li.line, msg.str());
        } else if (tainted.count(cap.name)) {
          std::ostringstream msg;
          msg << "'" << fn.qual() << "' captures view-of-local-buffer '"
              << cap.name << "' by value in a lambda deferred via '" << via
              << "' — the copy still points into the dead frame's buffer";
          report(file, li.line, msg.str());
        }
      }
    }
  }
}

}  // namespace analyze
}  // namespace miniraid

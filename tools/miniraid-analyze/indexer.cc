// Built-in frontend: a two-pass syntactic indexer that builds the analysis
// Model without a compiler. Pass 1 records declarations (classes, bases,
// fields, method signatures, enums, aliases, MR_RUNS_ON annotations); pass 2
// parses function bodies, resolving member-call receivers through locals,
// parameters, fields (including inherited ones), accessor return types, and
// type aliases. It is deliberately conservative: anything it cannot resolve
// produces *no* call edge rather than a guess, and the Clang frontend
// (clang_frontend.cc) provides exact resolution where this one approximates.

#include <algorithm>
#include <cassert>
#include <functional>

#include "analyzer.h"

namespace miniraid {
namespace analyze {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsTypeKeyword(const std::string& s) {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "void", "bool", "char", "int", "unsigned", "signed", "short", "long",
      "float", "double", "auto", "wchar_t", "size_t", "int8_t", "uint8_t",
      "int16_t", "uint16_t", "int32_t", "uint32_t", "int64_t", "uint64_t"};
  return kWords->count(s) > 0;
}

bool IsDeclSkipWord(const std::string& s) {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "const",    "constexpr", "static",   "inline",   "mutable",
      "volatile", "virtual",   "explicit", "unsigned", "signed",
      "struct",   "class",     "enum",     "typename", "register",
      "extern",   "thread_local", "override", "final",  "noexcept",
      "long",     "short"};
  return kWords->count(s) > 0;
}

bool IsStmtKeyword(const std::string& s) {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "if",       "for",         "while",    "do",         "else",
      "return",   "break",       "continue", "goto",       "new",
      "delete",   "throw",       "try",      "catch",      "sizeof",
      "alignof",  "decltype",    "typename", "template",   "true",
      "false",    "nullptr",     "const",    "constexpr",  "static",
      "struct",   "class",       "enum",     "public",     "private",
      "protected", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "static_assert", "co_return", "co_await",
      "co_yield", "operator",    "noexcept", "mutable",    "inline",
      "volatile", "unsigned",    "signed",   "long",       "short",
      "else"};
  return kWords->count(s) > 0;
}

// All-caps identifiers are macro invocations (MR_CHECK, EXPECT_EQ, ...);
// their argument tokens are still scanned, but the name itself is not a call.
bool IsMacroName(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

// std:: vocabulary the dataflow passes track as locals: owning buffers, the
// view types that can dangle into them, and the character types raw-pointer
// views are spelled with (`const char* p = buf.data()`).
bool IsTrackedStdType(const std::string& s) {
  static const std::set<std::string>* kTypes = new std::set<std::string>{
      "string", "string_view", "vector", "span",
      "deque",  "array",       "char",   "uint8_t"};
  return kTypes->count(s) > 0;
}

struct Parser {
  Model* model;
  SourceFile* file;
  int file_index;
  bool bodies;  // pass 2?

  const std::vector<Token>& toks() const { return file->tokens; }
  size_t size() const { return file->tokens.size(); }
  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    return i < size() ? file->tokens[i].text : kEmpty;
  }
  Token::Kind Kind(size_t i) const {
    return i < size() ? file->tokens[i].kind : Token::kPunct;
  }
  int Line(size_t i) const {
    return i < size() ? file->tokens[i].line : 0;
  }

  // `i` is at an opening ( { [ ; returns the index *after* the matching
  // closer (clamped to end on malformed input).
  size_t SkipBalanced(size_t i) const {
    const std::string& open = Text(i);
    std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (; i < size(); ++i) {
      if (Text(i) == open) {
        ++depth;
      } else if (Text(i) == close) {
        if (--depth == 0) return i + 1;
      }
    }
    return size();
  }

  // `i` is at '<'; returns index after the matching '>'. Bails out (returns
  // i + 1) if the run hits ';' or '{', which means this was a comparison.
  size_t SkipAngles(size_t i) const {
    int depth = 0;
    size_t start = i;
    for (; i < size(); ++i) {
      const std::string& t = Text(i);
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return i + 1;
      } else if (t == ";" || t == "{") {
        return start + 1;
      }
    }
    return start + 1;
  }

  // Extracts the "core" user-type name from a declaration-ish token span:
  // skips cv/storage keywords and attribute macros, takes the first
  // identifier chain (a::b::c<...>), and returns its last component.
  std::string CoreType(size_t begin, size_t end) const {
    for (size_t i = begin; i < end; ++i) {
      if (Kind(i) != Token::kIdent) continue;
      const std::string& t = Text(i);
      if (IsDeclSkipWord(t)) continue;
      if (t == "MR_RUNS_ON" || (IsMacroName(t) && Text(i + 1) == "(")) {
        if (Text(i + 1) == "(") i = SkipBalanced(i + 1) - 1;
        continue;
      }
      // Identifier chain.
      std::string last = t;
      size_t j = i + 1;
      while (j + 1 < end) {
        if (Text(j) == "<") {
          j = SkipAngles(j);
          continue;
        }
        if (Text(j) == "::" && Kind(j + 1) == Token::kIdent) {
          last = Text(j + 1);
          j += 2;
          continue;
        }
        break;
      }
      return last;
    }
    return "";
  }

  ClassInfo* GetClass(const std::string& name) {
    ClassInfo& c = model->classes[name];
    if (c.name.empty()) {
      c.name = name;
      c.file = file->path;
    }
    return &c;
  }

  FunctionInfo* GetFunction(const std::string& key) {
    auto it = model->by_key.find(key);
    if (it != model->by_key.end()) {
      return &model->functions[it->second.front()];
    }
    model->functions.emplace_back();
    int idx = static_cast<int>(model->functions.size()) - 1;
    model->by_key[key].push_back(idx);
    FunctionInfo* fn = &model->functions[idx];
    fn->key = key;
    return fn;
  }

  // ------------------------------------------------------------------
  // Declaration scope (namespace / file / class body).
  // ------------------------------------------------------------------
  void ParseDeclScope(size_t begin, size_t end, const std::string& cls,
                      bool is_struct) {
    std::string access = cls.empty() || is_struct ? "public" : "private";
    size_t i = begin;
    while (i < end) {
      const std::string& t = Text(i);
      if (t == ";" || t == "}") {
        ++i;
        continue;
      }
      if (Kind(i) == Token::kIdent) {
        if (t == "namespace") {
          i = ParseNamespace(i, end);
          continue;
        }
        if (t == "template") {
          ++i;
          if (Text(i) == "<") i = SkipAngles(i);
          continue;
        }
        if (t == "extern") {
          if (Kind(i + 1) == Token::kString && Text(i + 2) == "{") {
            size_t close = SkipBalanced(i + 2);
            ParseDeclScope(i + 3, close - 1, cls, is_struct);
            i = close;
            continue;
          }
          ++i;
          continue;
        }
        if (t == "using" || t == "typedef") {
          i = ParseAlias(i, end);
          continue;
        }
        if (t == "friend" || t == "static_assert") {
          while (i < end && Text(i) != ";") {
            if (Text(i) == "{") {
              i = SkipBalanced(i);
              break;
            }
            ++i;
          }
          ++i;
          continue;
        }
        if ((t == "public" || t == "private" || t == "protected") &&
            Text(i + 1) == ":") {
          access = t;
          i += 2;
          continue;
        }
        if (t == "enum") {
          i = ParseEnum(i, end, cls);
          continue;
        }
        if ((t == "class" || t == "struct") && LooksLikeClassDef(i, end)) {
          i = ParseClass(i, end);
          continue;
        }
        i = ParseDeclaration(i, end, cls, access);
        continue;
      }
      if (t == "[" && Text(i + 1) == "[") {
        i = SkipBalanced(i);
        continue;
      }
      ++i;
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    ++i;  // 'namespace'
    while (i < end && (Kind(i) == Token::kIdent || Text(i) == "::")) ++i;
    if (Text(i) == "=") {  // namespace alias
      while (i < end && Text(i) != ";") ++i;
      return i + 1;
    }
    if (Text(i) == "{") {
      size_t close = SkipBalanced(i);
      ParseDeclScope(i + 1, close - 1, "", false);
      return close;
    }
    return i + 1;
  }

  size_t ParseAlias(size_t i, size_t end) {
    bool is_typedef = Text(i) == "typedef";
    size_t begin = i + 1;
    size_t semi = begin;
    while (semi < end && Text(semi) != ";") {
      if (Text(semi) == "{") {
        semi = SkipBalanced(semi) - 1;
      }
      ++semi;
    }
    if (is_typedef) {
      // typedef <type tokens> NAME;
      if (semi > begin + 1 && Kind(semi - 1) == Token::kIdent) {
        std::string target = CoreType(begin, semi - 1);
        if (!target.empty()) model->aliases[Text(semi - 1)] = target;
      }
    } else if (Text(begin) != "namespace") {
      // using NAME = <type tokens>;
      if (Kind(begin) == Token::kIdent && Text(begin + 1) == "=") {
        std::string target = CoreType(begin + 2, semi);
        if (!target.empty()) model->aliases[Text(begin)] = target;
      }
    }
    return semi + 1;
  }

  size_t ParseEnum(size_t i, size_t end, const std::string& cls) {
    ++i;  // 'enum'
    if (Text(i) == "class" || Text(i) == "struct") ++i;
    std::string name;
    if (Kind(i) == Token::kIdent) {
      name = Text(i);
      ++i;
    }
    while (i < end && Text(i) != "{" && Text(i) != ";") ++i;  // ': uint8_t'
    if (i >= end || Text(i) == ";") return i + 1;
    size_t close = SkipBalanced(i);
    if (!bodies && !name.empty()) {
      EnumInfo info;
      info.name = name;
      info.scope = cls;
      info.file = file->path;
      info.line = Line(i);
      // Enumerators: identifiers directly after '{' or ','.
      bool expect = true;
      int depth = 0;
      for (size_t j = i + 1; j + 1 < close; ++j) {
        const std::string& t = Text(j);
        if (t == "(" || t == "{" || t == "[") {
          j = SkipBalanced(j) - 1;
          continue;
        }
        if (t == ",") {
          expect = true;
          continue;
        }
        if (expect && Kind(j) == Token::kIdent) {
          info.enumerators.push_back(t);
          expect = false;
        }
      }
      (void)depth;
      model->enums.push_back(std::move(info));
    }
    return close;
  }

  bool LooksLikeClassDef(size_t i, size_t end) const {
    // 'class'/'struct' introduces a definition or forward declaration if a
    // '{' or ';' appears before any '=' or '(' — otherwise it is an
    // elaborated type in some declaration. Attribute-macro arguments
    // (`class MR_CAPABILITY("mutex") Mutex`) do not count as the '('.
    for (size_t j = i + 1; j < end && j < i + 24; ++j) {
      const std::string& t = Text(j);
      if (Kind(j) == Token::kIdent && IsMacroName(t) && Text(j + 1) == "(") {
        j = SkipBalanced(j + 1) - 1;
        continue;
      }
      if (t == "{" || t == ";") return true;
      if (t == "=" || t == "(" || t == ")") return false;
    }
    return false;
  }

  size_t ParseClass(size_t i, size_t end) {
    bool is_struct = Text(i) == "struct";
    ++i;
    // Skip attribute macros, take the name. Capability annotations on the
    // class head make it a lock type for the lock-order pass.
    std::string name;
    bool capability = false, scoped_capability = false;
    while (i < end) {
      if (Kind(i) == Token::kIdent) {
        if (IsMacroName(Text(i))) {
          if (Text(i) == "MR_CAPABILITY") capability = true;
          if (Text(i) == "MR_SCOPED_CAPABILITY") scoped_capability = true;
          // Attribute macros may be parenless (MR_SCOPED_CAPABILITY).
          i = Text(i + 1) == "(" ? SkipBalanced(i + 1) : i + 1;
          continue;
        }
        if (Text(i) == "final") {
          ++i;
          continue;
        }
        name = Text(i);
        ++i;
        break;
      }
      if (Text(i) == "[" && Text(i + 1) == "[") {
        i = SkipBalanced(i);
        continue;
      }
      break;
    }
    if (Text(i) == "final") ++i;
    if (Text(i) == ";") return i + 1;  // forward declaration
    std::vector<std::string> bases;
    if (Text(i) == ":") {
      size_t base_begin = ++i;
      while (i < end && Text(i) != "{" && Text(i) != ";") ++i;
      // Split base-clause on top-level ','.
      size_t seg = base_begin;
      for (size_t j = base_begin; j <= i; ++j) {
        if (j == i || Text(j) == ",") {
          // CoreType takes the first identifier, so the access specifier
          // must be stepped over, not filtered out after the fact.
          size_t s = seg;
          while (s < j && (Text(s) == "public" || Text(s) == "protected" ||
                           Text(s) == "private" || Text(s) == "virtual")) {
            ++s;
          }
          std::string b = CoreType(s, j);
          if (!b.empty()) bases.push_back(b);
          seg = j + 1;
        } else if (Text(j) == "<") {
          j = SkipAngles(j) - 1;
        }
      }
    }
    if (Text(i) != "{") return i + 1;
    size_t close = SkipBalanced(i);
    if (!name.empty()) {
      ClassInfo* info = GetClass(name);
      info->is_struct = is_struct;
      info->is_capability = info->is_capability || capability;
      info->is_scoped_capability = info->is_scoped_capability ||
                                   scoped_capability;
      if (!bodies) {
        info->line = Line(i);
        info->file = file->path;
        for (const std::string& b : bases) {
          if (std::find(info->bases.begin(), info->bases.end(), b) ==
              info->bases.end()) {
            info->bases.push_back(b);
          }
        }
      }
      ParseDeclScope(i + 1, close - 1, name, is_struct);
    } else {
      ParseDeclScope(i + 1, close - 1, "", true);
    }
    // Optional trailing declarator: `} instance_;`
    size_t j = close;
    while (j < end && Kind(j) == Token::kIdent) ++j;
    if (j < end && Text(j) == ";") return j + 1;
    return close;
  }

  // ------------------------------------------------------------------
  // A single declaration at class or namespace scope: field, alias-free
  // variable, or function (with optional body).
  // ------------------------------------------------------------------
  size_t ParseDeclaration(size_t i, size_t end, const std::string& cls,
                          const std::string& access) {
    size_t start = i;
    int paren = 0;
    size_t paren_open = kNpos, paren_close = kNpos;
    bool seen_eq = false, after_params = false, expect_params = false;
    bool has_body = false, is_defaulted = false;
    size_t body_open = kNpos;
    Ctx ctx = Ctx::kNone;
    bool is_static = false, is_operator = false;
    std::string op_name;
    size_t j = i;
    size_t last_ident = kNpos;  // candidate field name
    // MR_ACQUIRED_BEFORE/_AFTER edges seen on this declaration; attached to
    // the field below once the declaration turns out to be a field.
    std::vector<ClassInfo::LockEdge> edges;
    // MR_GUARDED_BY / MR_CONTEXT_CONFINED on a field; MR_REQUIRES chains on
    // a function.
    std::vector<std::string> guard_chain;
    Ctx confined = Ctx::kNone;
    std::vector<std::vector<std::string>> req_chains;

    while (j < end) {
      const std::string& t = Text(j);
      if (Kind(j) == Token::kIdent) {
        if (t == "MR_RUNS_ON" && Text(j + 1) == "(" &&
            Kind(j + 2) == Token::kIdent && Text(j + 3) == ")") {
          ctx = ParseCtx(Text(j + 2));
          j += 4;
          continue;
        }
        if ((t == "MR_ACQUIRED_BEFORE" || t == "MR_ACQUIRED_AFTER") &&
            Text(j + 1) == "(" && paren == 0) {
          size_t close = SkipBalanced(j + 1);
          ParseEdgeTargets(j + 2, close - 1, t == "MR_ACQUIRED_BEFORE",
                           Line(j), &edges);
          j = close;
          continue;
        }
        if ((t == "MR_GUARDED_BY" || t == "MR_PT_GUARDED_BY") &&
            Text(j + 1) == "(" && paren == 0) {
          size_t close = SkipBalanced(j + 1);
          guard_chain.clear();
          for (size_t k = j + 2; k + 1 < close; ++k) {
            if (Kind(k) == Token::kIdent && Text(k) != "this") {
              guard_chain.push_back(Text(k));
            }
          }
          j = close;
          continue;
        }
        if (t == "MR_CONTEXT_CONFINED" && Text(j + 1) == "(" &&
            Kind(j + 2) == Token::kIdent && Text(j + 3) == ")" &&
            paren == 0) {
          confined = ParseCtx(Text(j + 2));
          j += 4;
          continue;
        }
        if ((t == "MR_REQUIRES" || t == "MR_REQUIRES_SHARED") &&
            Text(j + 1) == "(" && paren == 0) {
          size_t close = SkipBalanced(j + 1);
          ParseReqTargets(j + 2, close - 1, &req_chains);
          j = close;
          continue;
        }
        if (IsMacroName(t) && Text(j + 1) == "(" && paren == 0) {
          j = SkipBalanced(j + 1);
          continue;
        }
        if (t == "static" && paren == 0) is_static = true;
        if (t == "operator" && paren == 0 && !seen_eq) {
          is_operator = true;
          op_name = "operator";
          size_t k = j + 1;
          if (Text(k) == "(" && Text(k + 1) == ")") {
            op_name += "()";
            k += 2;
          } else {
            while (k < end && Kind(k) == Token::kPunct && Text(k) != "(" &&
                   Text(k) != ";") {
              op_name += Text(k);
              ++k;
            }
            if (Kind(k) == Token::kIdent) {
              // conversion operator: `operator bool()`
              op_name += " " + Text(k);
              ++k;
            }
          }
          expect_params = true;
          j = k;
          continue;
        }
        if (paren == 0 && !seen_eq && !IsDeclSkipWord(t)) last_ident = j;
        ++j;
        continue;
      }
      if (t == "(") {
        if (paren == 0 && paren_open == kNpos && !seen_eq &&
            (expect_params ||
             (j > start && Kind(j - 1) == Token::kIdent &&
              !IsTypeKeyword(Text(j - 1)) && !IsDeclSkipWord(Text(j - 1))))) {
          paren_open = j;
        }
        ++paren;
        ++j;
        continue;
      }
      if (t == ")") {
        --paren;
        if (paren == 0 && paren_open != kNpos && paren_close == kNpos) {
          paren_close = j;
          after_params = true;
        }
        ++j;
        continue;
      }
      if (paren > 0) {
        ++j;
        continue;
      }
      if (t == "<" && !seen_eq && !after_params) {
        j = SkipAngles(j);
        continue;
      }
      if (t == "[") {
        j = SkipBalanced(j);
        continue;
      }
      if (t == "=") {
        if (after_params) {
          is_defaulted = true;  // = default / = delete / = 0
        } else {
          seen_eq = true;
        }
        ++j;
        continue;
      }
      if (t == ":" && after_params) {
        // Constructor initializer list: consume until the body '{'.
        ++j;
        while (j < end && Text(j) != "{" && Text(j) != ";") {
          if (Text(j) == "(" || Text(j) == "[") {
            j = SkipBalanced(j);
          } else if (Text(j) == "<") {
            j = SkipAngles(j);
          } else {
            ++j;
          }
        }
        continue;
      }
      if (t == "{") {
        if (after_params && !is_defaulted) {
          has_body = true;
          body_open = j;
          break;
        }
        j = SkipBalanced(j);  // brace initializer
        continue;
      }
      if (t == ";") break;
      ++j;
    }

    size_t next_i = j < end ? j + 1 : end;
    if (has_body) next_i = SkipBalanced(body_open);
    if (next_i <= i) next_i = i + 1;

    const bool is_function = paren_open != kNpos;
    if (!is_function) {
      // Field / variable.
      if (!bodies && !cls.empty() && last_ident != kNpos) {
        std::string fname = Text(last_ident);
        std::string ftype = CoreType(start, last_ident);
        if (!fname.empty() && !ftype.empty()) {
          ClassInfo* ci = GetClass(cls);
          ci->fields[fname] = ftype;
          ci->field_lines[fname] = Line(last_ident);
          if (!guard_chain.empty()) ci->field_guards[fname] = guard_chain;
          if (confined != Ctx::kNone) ci->field_confined[fname] = confined;
          for (ClassInfo::LockEdge& e : edges) {
            e.field = fname;
            ci->lock_edges.push_back(std::move(e));
          }
        }
      }
      return next_i;
    }

    // Function name (and possibly out-of-class qualifier).
    std::string name, fn_cls = cls;
    bool ctor_dtor = false;
    if (is_operator) {
      name = op_name;
      // Out-of-class operator definitions: `Foo::operator()(...)`.
      // (Scan back from 'operator' is skipped; in-class is the common case.)
    } else {
      size_t k = paren_open - 1;
      if (Kind(k) != Token::kIdent) return next_i;
      name = Text(k);
      if (k > start && Text(k - 1) == "~") {
        name = "~" + name;
        ctor_dtor = true;
        --k;
      }
      // Qualified name: A::B::name — last qualifier is the class.
      while (k >= 2 && Text(k - 1) == "::" && Kind(k - 2) == Token::kIdent) {
        fn_cls = Text(k - 2);
        k -= 2;
        break;  // only the innermost qualifier matters
      }
      if (IsTypeKeyword(name) || IsStmtKeyword(name)) return next_i;
      if (name == fn_cls) ctor_dtor = true;
    }

    // First parameter's core type (for operator() keying and codec helpers).
    std::string param0;
    {
      size_t p_end = paren_close;
      for (size_t k = paren_open + 1; k < paren_close; ++k) {
        if (Text(k) == "(" || Text(k) == "[" || Text(k) == "{") {
          k = SkipBalanced(k) - 1;
        } else if (Text(k) == "<") {
          k = SkipAngles(k) - 1;
        } else if (Text(k) == ",") {
          p_end = k;
          break;
        }
      }
      param0 = CoreType(paren_open + 1, p_end);
    }

    std::string key = fn_cls.empty() ? name : fn_cls + "::" + name;
    if (name == "operator()") key += "@" + param0;

    FunctionInfo* fn = GetFunction(key);
    if (!bodies) {
      if (fn->name.empty()) {
        fn->cls = fn_cls;
        fn->name = name;
        fn->file = file->path;
        fn->line = Line(start);
        fn->file_index = file_index;
        fn->param0_type = param0;
      }
      if (ctx != Ctx::kNone && fn->ctx == Ctx::kNone) {
        fn->ctx = ctx;
        fn->ctx_inherited = false;
      }
      if (fn->ret_type.empty() && !ctor_dtor && !is_operator) {
        fn->ret_type = CoreType(start, paren_open - 1);
      }
      if (fn->entry_locks.empty() && !req_chains.empty()) {
        fn->entry_locks = std::move(req_chains);
      }
      if (!cls.empty()) {
        fn->is_public = fn->is_public || access == "public";
        fn->is_ctor_dtor = fn->is_ctor_dtor || ctor_dtor;
        fn->is_operator = fn->is_operator || is_operator;
        fn->is_static = fn->is_static || is_static;
        ClassInfo* ci = GetClass(cls);
        ci->methods.insert(name);
        if (!ctor_dtor) {
          std::string ret = CoreType(start, is_operator ? paren_open
                                                        : paren_open - 1);
          if (!ret.empty()) ci->method_ret[name] = ret;
        }
      }
      if (has_body) fn->is_defn = true;
    } else if (has_body) {
      // Parameters seed the local symbol table.
      std::map<std::string, std::string> locals;
      SeedParams(paren_open, paren_close, &locals);
      size_t body_close = SkipBalanced(body_open);
      ParseStmts(body_open + 1, body_close - 1, fn_cls, &locals, -1,
                 nullptr, fn);
    }
    return next_i;
  }

  void SeedParams(size_t open, size_t close,
                  std::map<std::string, std::string>* locals) {
    size_t seg = open + 1;
    for (size_t j = open + 1; j <= close; ++j) {
      if (j == close || (Text(j) == "," && j < close)) {
        if (j > seg + 1) {
          // name = last identifier; type = core of the rest.
          size_t name_idx = kNpos;
          for (size_t k = j; k-- > seg;) {
            if (Kind(k) == Token::kIdent && !IsDeclSkipWord(Text(k))) {
              name_idx = k;
              break;
            }
          }
          if (name_idx != kNpos && name_idx > seg) {
            std::string ty = CoreType(seg, name_idx);
            if (!ty.empty()) (*locals)[Text(name_idx)] = ty;
          }
        }
        seg = j + 1;
        continue;
      }
      if (Text(j) == "(" || Text(j) == "[" || Text(j) == "{") {
        j = SkipBalanced(j) - 1;
      } else if (Text(j) == "<") {
        j = SkipAngles(j) - 1;
      }
    }
  }

  // Capture list of a lambda literal: tokens in [begin, end_tok) between
  // the '[' and its ']'. Splits on top-level commas; recognizes the capture
  // defaults '&' and '=', `this` / `*this`, by-reference and init captures.
  void ParseCaptures(size_t begin, size_t end_tok, LambdaInfo* li) const {
    size_t seg = begin;
    for (size_t k = begin; k <= end_tok; ++k) {
      if (k < end_tok &&
          (Text(k) == "(" || Text(k) == "[" || Text(k) == "{")) {
        k = SkipBalanced(k) - 1;
        continue;
      }
      if (k < end_tok && Text(k) != ",") continue;
      size_t b = seg;
      seg = k + 1;
      if (b >= k) continue;
      if (Text(b) == "&" && b + 1 == k) {
        li->capture_default = '&';
        continue;
      }
      if (Text(b) == "=" && b + 1 == k) {
        li->capture_default = '=';
        continue;
      }
      if (Text(b) == "this" ||
          (Text(b) == "*" && Text(b + 1) == "this")) {
        li->captures_this = true;
        continue;
      }
      LambdaInfo::Capture cap;
      size_t m = b;
      if (Text(m) == "&") {
        cap.by_ref = true;
        ++m;
      }
      if (Kind(m) != Token::kIdent) continue;
      cap.name = Text(m);
      cap.is_init = m + 1 < k && Text(m + 1) == "=";
      li->captures.push_back(std::move(cap));
    }
  }

  // When the lambda literal at `lam_tok` is written directly as a call
  // argument (`loop_->Post(0, [this] {...})`), records that call's callee
  // and resolved receiver class so the dataflow passes can map the lambda
  // to a deferred-execution sink. Lambdas first assigned to a variable and
  // posted later stay hostless (conservative: no context, no escape rule).
  void DetectLambdaHost(size_t lam_tok, const std::string& cls,
                        const std::map<std::string, std::string>& locals,
                        LambdaInfo* li) const {
    int depth = 0;
    size_t k = lam_tok;
    while (k > 0) {
      --k;
      const std::string& t = Text(k);
      if (t == ")" || t == "]" || t == "}") {
        ++depth;
      } else if (t == "(" || t == "[" || t == "{") {
        if (depth == 0) {
          if (t != "(") return;  // brace-init / subscript: not a call arg
          break;
        }
        --depth;
      } else if (depth == 0 && (t == ";" || t == "=" || t == "{")) {
        return;  // statement or assignment boundary reached first
      }
      if (k == 0) return;
    }
    if (k == 0 || Kind(k - 1) != Token::kIdent) return;
    size_t callee_tok = k - 1;
    const std::string& callee = Text(callee_tok);
    if (IsMacroName(callee) || IsStmtKeyword(callee)) return;
    li->host_callee = callee;
    const std::string& prev = callee_tok > 0 ? Text(callee_tok - 1) : "";
    if (prev == "." || prev == "->") {
      li->host_receiver = ResolveReceiver(callee_tok - 1, cls, locals);
    } else if (prev != "::" && !cls.empty() &&
               model->FindMethod(cls, callee) >= 0) {
      li->host_receiver = cls;  // implicit this
    }
  }

  // Splits an MR_ACQUIRED_BEFORE/_AFTER argument span on top-level commas;
  // each target becomes an identifier chain (`loop_->mu_` -> {loop_, mu_}).
  void ParseEdgeTargets(size_t begin, size_t end_tok, bool before, int line,
                        std::vector<ClassInfo::LockEdge>* out) const {
    ClassInfo::LockEdge cur;
    cur.before = before;
    cur.line = line;
    for (size_t k = begin; k <= end_tok; ++k) {
      if (k == end_tok || Text(k) == ",") {
        if (!cur.target.empty()) out->push_back(cur);
        cur.target.clear();
        continue;
      }
      if (Text(k) == "(" || Text(k) == "[" || Text(k) == "{") {
        k = SkipBalanced(k) - 1;
        continue;
      }
      if (Kind(k) == Token::kIdent && Text(k) != "this") {
        cur.target.push_back(Text(k));
      }
    }
  }

  // Splits an MR_REQUIRES argument span on top-level commas; each target
  // becomes an identifier chain (resolved to a lock node by the passes,
  // once the whole model exists).
  void ParseReqTargets(size_t begin, size_t end_tok,
                       std::vector<std::vector<std::string>>* out) const {
    std::vector<std::string> cur;
    for (size_t k = begin; k <= end_tok; ++k) {
      if (k == end_tok || Text(k) == ",") {
        if (!cur.empty()) out->push_back(cur);
        cur.clear();
        continue;
      }
      if (Text(k) == "(" || Text(k) == "[" || Text(k) == "{") {
        k = SkipBalanced(k) - 1;
        continue;
      }
      if (Kind(k) == Token::kIdent && Text(k) != "this") cur.push_back(Text(k));
    }
  }

  // Dataflow root of an expression span: the first identifier that is not a
  // wrapper (std::move, a constructor of a tracked type, a macro), plus the
  // last member call on it (`Slice(buf.data(), n)` -> root "buf", call
  // "data"). Used for local initializers, field-store RHS, and returns.
  void ExtractRootCall(size_t begin, size_t end_tok, std::string* root,
                       std::string* call) const {
    for (size_t k = begin; k < end_tok; ++k) {
      const std::string& t = Text(k);
      if (t == "<" && root->empty()) {
        k = SkipAngles(k) - 1;
        continue;
      }
      if (Kind(k) != Token::kIdent) continue;
      if (t == "std" || t == "this" || IsStmtKeyword(t) || IsDeclSkipWord(t)) {
        continue;
      }
      if (t == "move" && Text(k + 1) == "(") continue;
      std::string core = model->ResolveAlias(t);
      if ((model->classes.count(core) || IsTrackedStdType(core)) &&
          (Text(k + 1) == "(" || Text(k + 1) == "{")) {
        continue;  // constructor wrapper: the root is inside its arguments
      }
      if (IsMacroName(t)) {
        if (Text(k + 1) == "(") k = SkipBalanced(k + 1) - 1;
        continue;
      }
      if (root->empty()) *root = t;
      if (k > begin && (Text(k - 1) == "." || Text(k - 1) == "->") &&
          Text(k + 1) == "(") {
        *call = t;
      }
    }
  }

  // Resolves an identifier chain (tokens in [begin, end_tok), punctuation
  // ignored) to a lock node "OwnerClass::field". Locals that are themselves
  // mutexes have no cross-function identity and resolve to "".
  std::string ResolveNodeChain(size_t begin, size_t end_tok,
                               const std::string& cls,
                               const std::map<std::string, std::string>& locals)
      const {
    std::vector<std::string> chain;
    for (size_t k = begin; k < end_tok; ++k) {
      if (Kind(k) == Token::kIdent && Text(k) != "this") {
        chain.push_back(Text(k));
      } else if (Text(k) == "(" || Text(k) == "[" || Text(k) == "{") {
        k = SkipBalanced(k) - 1;
      }
    }
    return ResolveChainToNode(chain, cls, locals);
  }

  std::string ResolveChainToNode(
      const std::vector<std::string>& chain, const std::string& cls,
      const std::map<std::string, std::string>& locals) const {
    if (chain.empty()) return "";
    std::string owner;  // class owning the final field
    if (chain.size() == 1) {
      if (locals.count(chain[0])) return "";  // function-local mutex
      owner = model->ResolveAlias(cls);
    } else {
      auto it = locals.find(chain[0]);
      std::string cur = it != locals.end()
                            ? it->second
                            : model->FieldType(cls, chain[0]);
      if (cur.empty()) return "";
      for (size_t e = 1; e + 1 < chain.size(); ++e) {
        cur = model->FieldType(cur, chain[e]);
        if (cur.empty()) return "";
      }
      owner = model->ResolveAlias(cur);
    }
    if (owner.empty()) return "";
    if (model->FieldType(owner, chain.back()).empty()) return "";
    return owner + "::" + chain.back();
  }

  // Position of the '}' closing the block that encloses `from` (file end if
  // the scan runs out — the function's own closing brace at the latest).
  size_t FindScopeEnd(size_t from) const {
    int depth = 0;
    for (size_t k = from; k < size(); ++k) {
      if (Text(k) == "{") {
        ++depth;
      } else if (Text(k) == "}") {
        if (--depth < 0) return k;
      }
    }
    return size();
  }

  // Resolved core type of the last top-level argument of the call whose
  // callee token is at `callee_tok` — through std::move and braced/paren
  // construction. Used for SendTo payload classification; "" when the type
  // cannot be pinned down.
  std::string ResolveLastArgType(
      size_t callee_tok, const std::string& cls,
      const std::map<std::string, std::string>& locals) const {
    size_t open = callee_tok + 1;
    if (Text(open) != "(") return "";
    size_t close = SkipBalanced(open) - 1;
    size_t seg = open + 1;
    for (size_t k = open + 1; k < close; ++k) {
      if (Text(k) == "(" || Text(k) == "[" || Text(k) == "{") {
        k = SkipBalanced(k) - 1;
      } else if (Text(k) == "<") {
        k = SkipAngles(k) - 1;
      } else if (Text(k) == ",") {
        seg = k + 1;
      }
    }
    return ResolveArgType(seg, close, cls, locals);
  }

  std::string ResolveArgType(
      size_t begin, size_t end_tok, const std::string& cls,
      const std::map<std::string, std::string>& locals) const {
    if (begin >= end_tok) return "";
    // std::move(x) / move(x): the inner expression's type.
    size_t k = begin;
    if (Text(k) == "std" && Text(k + 1) == "::") k += 2;
    if (Text(k) == "move" && Text(k + 1) == "(") {
      return ResolveArgType(k + 2, SkipBalanced(k + 1) - 1, cls, locals);
    }
    // Type{...} / Type(...): direct construction of a known class.
    for (size_t m = begin; m < end_tok; ++m) {
      if (Kind(m) != Token::kIdent) continue;
      std::string core = model->ResolveAlias(Text(m));
      if (model->classes.count(core) &&
          (Text(m + 1) == "{" || Text(m + 1) == "(")) {
        return core;
      }
      break;
    }
    // Lone identifier (or x.y chain): a local, parameter, or field.
    std::vector<std::string> chain;
    for (size_t m = begin; m < end_tok; ++m) {
      if (Kind(m) == Token::kIdent) {
        if (IsStmtKeyword(Text(m))) return "";
        chain.push_back(Text(m));
      } else if (Text(m) != "." && Text(m) != "->" && Text(m) != "*" &&
                 Text(m) != "&") {
        return "";
      }
    }
    if (chain.empty()) return "";
    auto it = locals.find(chain[0]);
    std::string cur = it != locals.end() ? it->second
                                         : model->FieldType(cls, chain[0]);
    for (size_t e = 1; e < chain.size() && !cur.empty(); ++e) {
      cur = model->FieldType(cur, chain[e]);
    }
    return model->ResolveAlias(cur);
  }

  // ------------------------------------------------------------------
  // Statement scope (function and lambda bodies).
  // ------------------------------------------------------------------
  // `lambda` is the index into fn->lambdas of the enclosing lambda literal
  // (-1 = the function body proper); every recorded fact carries it so the
  // dataflow passes can tell deferred-continuation code from frame code.
  void ParseStmts(size_t begin, size_t end, const std::string& cls,
                  std::map<std::string, std::string>* locals, int lambda,
                  SwitchInfo* sw, FunctionInfo* fn) {
    size_t j = begin;
    while (j < end) {
      const std::string& t = Text(j);
      if (Kind(j) == Token::kIdent) {
        if (t == "switch") {
          // Condition (scan for calls), then the switch body.
          size_t cond_open = j + 1;
          if (Text(cond_open) == "(") {
            size_t cond_close = SkipBalanced(cond_open);
            ParseStmts(cond_open + 1, cond_close - 1, cls, locals, lambda,
                       sw, fn);
            j = cond_close;
          } else {
            ++j;
          }
          if (Text(j) == "{") {
            size_t close = SkipBalanced(j);
            SwitchInfo inner;
            inner.line = Line(j);
            inner.file_index = file_index;
            ParseStmts(j + 1, close - 1, cls, locals, lambda, &inner, fn);
            fn->switches.push_back(std::move(inner));
            j = close;
          }
          continue;
        }
        if (t == "case" && sw != nullptr) {
          size_t k = j + 1;
          std::vector<std::string> chain;
          while (k < end && Text(k) != ":" && Text(k) != ";") {
            if (Kind(k) == Token::kIdent) chain.push_back(Text(k));
            ++k;
          }
          if (!chain.empty()) {
            CaseLabel label;
            label.enumerator = chain.back();
            if (chain.size() >= 2) label.enum_qual = chain[chain.size() - 2];
            label.line = Line(j);
            label.tok = j;
            sw->cases.push_back(std::move(label));
          }
          j = k + 1;
          continue;
        }
        if (t == "default" && sw != nullptr && Text(j + 1) == ":") {
          sw->has_default = true;
          j += 2;
          continue;
        }
        if (t == "using" || t == "typedef") {
          while (j < end && Text(j) != ";") ++j;
          continue;
        }
        if (IsMacroName(t)) {
          ++j;  // macro name is not a call; its arguments are still scanned
          continue;
        }
        if (t == "return" && fn != nullptr) {
          // Record the returned expression's dataflow root. The expression
          // tokens are NOT skipped: calls and accesses inside it still
          // index normally on subsequent iterations.
          size_t semi = j + 1;
          while (semi < end && Text(semi) != ";") {
            if (Text(semi) == "(" || Text(semi) == "[" ||
                Text(semi) == "{") {
              semi = SkipBalanced(semi);
            } else {
              ++semi;
            }
          }
          if (semi > j + 1) {
            ReturnInfo ri;
            ri.line = Line(j);
            ri.file_index = file_index;
            ri.tok = j;
            ri.lambda = lambda;
            ExtractRootCall(j + 1, semi, &ri.root, &ri.call);
            fn->returns.push_back(std::move(ri));
          }
          ++j;
          continue;
        }
        if (IsStmtKeyword(t)) {
          ++j;
          continue;
        }
        // Local declaration: KnownType [<...>] [&*const] name {; = ( ,}
        // `std::`-qualified buffer/view types are tracked alongside the
        // model's own classes so view lifetimes can be chained.
        size_t type_tok = j;
        std::string tname = t;
        if (t == "std" && Text(j + 1) == "::" &&
            Kind(j + 2) == Token::kIdent) {
          tname = Text(j + 2);
          type_tok = j + 2;
        }
        std::string core = model->ResolveAlias(tname);
        bool known_class = model->classes.count(core) > 0;
        if ((known_class || IsTrackedStdType(core)) &&
            Text(type_tok + 1) != "(" && Text(type_tok + 1) != "." &&
            Text(type_tok + 1) != "->") {
          size_t k = type_tok + 1;
          if (Text(k) == "<") k = SkipAngles(k);
          while (Text(k) == "&" || Text(k) == "*" || Text(k) == "const") ++k;
          if (Kind(k) == Token::kIdent && !IsStmtKeyword(Text(k))) {
            const std::string& nxt = Text(k + 1);
            if (nxt == ";" || nxt == "=" || nxt == "{" || nxt == "(" ||
                nxt == ",") {
              (*locals)[Text(k)] = core;
              if (fn != nullptr) {
                LocalVar lv;
                lv.name = Text(k);
                lv.type = core;
                lv.line = Line(j);
                lv.file_index = file_index;
                lv.tok = j;
                lv.lambda = lambda;
                if (nxt == "=" || nxt == "(" || nxt == "{") {
                  size_t ib = k + 2, ie;
                  if (nxt == "=") {
                    ie = ib;
                    while (ie < end && Text(ie) != ";" && Text(ie) != ",") {
                      if (Text(ie) == "(" || Text(ie) == "[" ||
                          Text(ie) == "{") {
                        ie = SkipBalanced(ie);
                      } else {
                        ++ie;
                      }
                    }
                  } else {
                    ie = SkipBalanced(k + 1) - 1;
                  }
                  ExtractRootCall(ib, ie, &lv.init_root, &lv.init_call);
                }
                fn->locals.push_back(std::move(lv));
              }
              // Scoped lock: `MutexLock lock(mu_);` holds the constructor-
              // argument mutex until the enclosing block closes.
              if (known_class &&
                  model->classes.find(core)->second.is_scoped_capability &&
                  (nxt == "(" || nxt == "{")) {
                size_t args_close = SkipBalanced(k + 1);
                ScopedAcquire sa;
                sa.node = ResolveNodeChain(k + 2, args_close - 1, cls,
                                           *locals);
                sa.tok = j;
                sa.release_tok = FindScopeEnd(args_close);
                sa.line = Line(j);
                sa.file_index = file_index;
                sa.in_lambda = lambda >= 0;
                sa.lambda = lambda;
                fn->scoped_acquires.push_back(std::move(sa));
              }
              j = k + 1;
              continue;
            }
          }
        }
        // Call?
        if (Text(j + 1) == "(") {
          const std::string& prev = j > 0 ? Text(j - 1) : "";
          CallSite call;
          call.callee = t;
          call.line = Line(j);
          call.file_index = file_index;
          call.tok = j;
          call.in_lambda = lambda >= 0;
          call.lambda = lambda;
          if (prev == "." || prev == "->") {
            call.is_member = true;
            call.receiver_type =
                ResolveReceiver(j - 1, cls, *locals, &call.receiver_node);
          } else if (prev == "::") {
            call.qualified = true;
          } else if (!cls.empty() &&
                     model->FindMethod(cls, t) >= 0) {
            call.is_member = true;  // implicit this
            call.receiver_type = cls;
          }
          call.last_arg_type = ResolveLastArgType(j, cls, *locals);
          fn->calls.push_back(std::move(call));
          ++j;
          continue;
        }
        // Plain identifier: a root-level access to a field of the enclosing
        // class? (Locals shadow fields; member chains off other objects are
        // attributed to that object's own methods, not here.)
        if (fn != nullptr && !cls.empty() && locals->count(t) == 0) {
          const std::string& prev = j > 0 ? Text(j - 1) : "";
          bool rooted = prev != "." && prev != "::" &&
                        (prev != "->" || (j >= 2 && Text(j - 2) == "this"));
          std::string owner = rooted ? model->FieldOwner(cls, t) : "";
          if (!owner.empty()) {
            FieldAccess fa;
            fa.cls = owner;
            fa.field = t;
            fa.line = Line(j);
            fa.file_index = file_index;
            fa.tok = j;
            fa.lambda = lambda;
            // Walk the member/subscript chain to find a trailing call and
            // the token that follows the whole access expression.
            size_t n = j + 1;
            std::string last_member;
            bool chain_is_call = false;
            int hops = 0;
            while (n < end) {
              if (Text(n) == "[" && Text(n + 1) != "[") {
                n = SkipBalanced(n);
                continue;
              }
              if ((Text(n) == "." || Text(n) == "->") &&
                  Kind(n + 1) == Token::kIdent) {
                last_member = Text(n + 1);
                chain_is_call = false;
                ++hops;
                n += 2;
                if (Text(n) == "(") {
                  chain_is_call = true;
                  n = SkipBalanced(n);
                }
                continue;
              }
              break;
            }
            // A call one hop deep operates on the field itself
            // (counters_.Add(...)); deeper chains mutate some other object
            // reached through it (options_.trace->Record(...)).
            if (chain_is_call && hops == 1) fa.via_call = last_member;
            // Mutation: an assignment operator after the chain, or ++/--
            // on either side. The lexer splits compound operators into
            // single-character punctuation ("+=" is "+" "="), so these are
            // token-sequence matches.
            const std::string& a = Text(n);
            const std::string& b = Text(n + 1);
            const std::string& c = Text(n + 2);
            bool is_assign =
                (a == "=" && b != "=") ||
                ((a == "+" || a == "-" || a == "*" || a == "/" || a == "%" ||
                  a == "&" || a == "|" || a == "^") &&
                 b == "=" && c != "=") ||
                (a == "<" && b == "<" && c == "=") ||
                (a == ">" && b == ">" && c == "=") ||
                (a == "+" && b == "+") || (a == "-" && b == "-");
            bool pre_incdec =
                j >= 2 && ((Text(j - 1) == "+" && Text(j - 2) == "+") ||
                           (Text(j - 1) == "-" && Text(j - 2) == "-"));
            fa.is_write = is_assign || pre_incdec;
            fn->accesses.push_back(std::move(fa));
            // Direct store `field_ = expr;`: record the RHS's dataflow
            // root for the view-escape pass.
            if (last_member.empty() && a == "=" && b != "=") {
              FieldStore fs;
              fs.cls = owner;
              fs.field = t;
              fs.line = Line(j);
              fs.file_index = file_index;
              fs.tok = j;
              fs.lambda = lambda;
              size_t semi = n + 1;
              while (semi < end && Text(semi) != ";") {
                if (Text(semi) == "(" || Text(semi) == "[" ||
                    Text(semi) == "{") {
                  semi = SkipBalanced(semi);
                } else {
                  ++semi;
                }
              }
              ExtractRootCall(n + 1, semi, &fs.rhs_root, &fs.rhs_call);
              fn->field_stores.push_back(std::move(fs));
            }
          }
        }
        ++j;
        continue;
      }
      if (t == "[") {
        if (Text(j + 1) == "[") {  // [[attribute]]
          j = SkipBalanced(j);
          continue;
        }
        const std::string& prev = j > begin ? Text(j - 1) : "";
        bool subscript = (j > begin) && (Kind(j - 1) == Token::kIdent ||
                                         Kind(j - 1) == Token::kNumber ||
                                         prev == ")" || prev == "]");
        if (!subscript) {
          // Structured binding, not a lambda: `auto [a, b]`, `auto& [a, b]`,
          // `auto&& [a, b]`. Mistaking it for a lambda would swallow the
          // rest of the enclosing statement (e.g. a for-loop body) into a
          // phantom lambda body and hide its calls from every pass.
          if (prev == "auto" ||
              ((prev == "&" || prev == "&&") && j >= begin + 2 &&
               Text(j - 2) == "auto")) {
            j = SkipBalanced(j);
            continue;
          }
          // Lambda: [captures] (params)? specifiers? { body }
          size_t cap_close = SkipBalanced(j);
          LambdaInfo li;
          li.line = Line(j);
          li.file_index = file_index;
          li.tok = j;
          ParseCaptures(j + 1, cap_close - 1, &li);
          DetectLambdaHost(j, cls, *locals, &li);
          size_t k = cap_close;
          std::map<std::string, std::string> inner_locals = *locals;
          if (Text(k) == "(") {
            size_t p_close = SkipBalanced(k) - 1;
            SeedParams(k, p_close, &inner_locals);
            k = p_close + 1;
          }
          while (k < end && Text(k) != "{" && Text(k) != ";") ++k;
          if (Text(k) == "{") {
            size_t body_close = SkipBalanced(k);
            int lam_idx = -1;
            if (fn != nullptr) {
              fn->lambdas.push_back(std::move(li));
              lam_idx = static_cast<int>(fn->lambdas.size()) - 1;
            }
            ParseStmts(k + 1, body_close - 1, cls, &inner_locals, lam_idx,
                       nullptr, fn);
            j = body_close;
            continue;
          }
          j = k;
          continue;
        }
        ++j;
        continue;
      }
      ++j;
    }
  }

  // Resolves the receiver chain ending at the '.' or '->' at `sep`. When
  // `node` is non-null and the chain ends in a field, it receives the
  // receiver's identity as "OwnerClass::field" (the lock-order pass keys
  // mutex Lock/Unlock/Wait ops on it).
  std::string ResolveReceiver(size_t sep,
                              const std::string& cls,
                              const std::map<std::string, std::string>& locals,
                              std::string* node = nullptr)
      const {
    struct Elem {
      enum Kind { kIdent, kCall, kThis, kIndex } kind;
      std::string name;
    };
    std::vector<Elem> chain;
    size_t k = sep;
    while (true) {
      if (k == 0) break;
      --k;  // token before the separator / previous element
      const std::string& t = Text(k);
      if (t == "this") {
        chain.push_back({Elem::kThis, ""});
      } else if (t == ")") {
        // find matching '('
        int depth = 0;
        size_t m = k;
        while (true) {
          if (Text(m) == ")") ++depth;
          if (Text(m) == "(") {
            if (--depth == 0) break;
          }
          if (m == 0) return "";
          --m;
        }
        if (m == 0 || Kind(m - 1) != Token::kIdent) return "";
        chain.push_back({Elem::kCall, Text(m - 1)});
        k = m - 1;
      } else if (t == "]") {
        int depth = 0;
        size_t m = k;
        while (true) {
          if (Text(m) == "]") ++depth;
          if (Text(m) == "[") {
            if (--depth == 0) break;
          }
          if (m == 0) return "";
          --m;
        }
        chain.push_back({Elem::kIndex, ""});
        k = m;
        continue;  // the indexed expression continues to the left
      } else if (Kind(k) == Token::kIdent) {
        if (IsStmtKeyword(t)) return "";
        chain.push_back({Elem::kIdent, t});
      } else {
        return "";
      }
      // Is there another chain element to the left?
      if (k == 0) break;
      const std::string& prev = Text(k - 1);
      if (prev == "." || prev == "->") {
        k -= 1;  // loop decrements onto the element before the separator
        continue;
      }
      if (prev == "::") {
        // Namespace-qualified variable: drop the qualifier.
        size_t m = k - 1;
        while (m >= 1 && Text(m) == "::" && Kind(m - 1) == Token::kIdent) {
          if (m < 2) break;
          m -= 2;
        }
        break;
      }
      break;
    }
    if (chain.empty()) return "";
    std::reverse(chain.begin(), chain.end());

    std::string cur;
    std::string node_candidate;  // "Owner::field" when the element is a field
    for (size_t e = 0; e < chain.size(); ++e) {
      const Elem& el = chain[e];
      node_candidate.clear();
      if (e == 0) {
        switch (el.kind) {
          case Elem::kThis:
            cur = cls;
            break;
          case Elem::kIdent: {
            auto it = locals.find(el.name);
            if (it != locals.end()) {
              cur = it->second;
            } else if (!cls.empty()) {
              cur = model->FieldType(cls, el.name);
              if (!cur.empty()) {
                node_candidate = model->ResolveAlias(cls) + "::" + el.name;
              }
            }
            break;
          }
          case Elem::kCall: {
            if (!cls.empty()) cur = MethodRet(cls, el.name);
            break;
          }
          case Elem::kIndex:
            return "";
        }
      } else {
        if (cur.empty()) return "";
        switch (el.kind) {
          case Elem::kIdent: {
            std::string owner = cur;
            cur = model->FieldType(cur, el.name);
            if (!cur.empty()) node_candidate = owner + "::" + el.name;
            break;
          }
          case Elem::kCall:
            cur = MethodRet(cur, el.name);
            break;
          case Elem::kIndex:
          case Elem::kThis:
            return "";
        }
      }
      if (cur.empty()) return "";
      cur = model->ResolveAlias(cur);
    }
    if (node != nullptr) *node = node_candidate;
    return cur;
  }

  std::string MethodRet(const std::string& cls, const std::string& name)
      const {
    // Walk the class and its bases for a recorded return type.
    std::vector<std::string> stack{model->ResolveAlias(cls)};
    std::set<std::string> seen;
    while (!stack.empty()) {
      std::string c = stack.back();
      stack.pop_back();
      if (!seen.insert(c).second) continue;
      auto it = model->classes.find(c);
      if (it == model->classes.end()) continue;
      auto rit = it->second.method_ret.find(name);
      if (rit != it->second.method_ret.end()) {
        return model->ResolveAlias(rit->second);
      }
      for (const std::string& b : it->second.bases) stack.push_back(b);
    }
    return "";
  }
};

}  // namespace

std::string Model::ResolveAlias(const std::string& name) const {
  std::string cur = name;
  for (int i = 0; i < 8; ++i) {
    auto it = aliases.find(cur);
    if (it == aliases.end()) return cur;
    cur = it->second;
  }
  return cur;
}

bool Model::DerivesFrom(const std::string& cls, const std::string& base)
    const {
  if (cls == base) return true;
  std::vector<std::string> stack{cls};
  std::set<std::string> seen;
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto it = classes.find(c);
    if (it == classes.end()) continue;
    for (const std::string& b : it->second.bases) {
      if (b == base) return true;
      stack.push_back(b);
    }
  }
  return false;
}

int Model::FindMethod(const std::string& cls, const std::string& name) const {
  std::vector<std::string> stack{ResolveAlias(cls)};
  std::set<std::string> seen;
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto key = by_key.find(c + "::" + name);
    if (key != by_key.end()) return key->second.front();
    auto it = classes.find(c);
    if (it == classes.end()) continue;
    for (const std::string& b : it->second.bases) stack.push_back(b);
  }
  return -1;
}

std::string Model::FieldOwner(const std::string& cls,
                              const std::string& field) const {
  std::vector<std::string> stack{ResolveAlias(cls)};
  std::set<std::string> seen;
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto it = classes.find(c);
    if (it == classes.end()) continue;
    if (it->second.fields.count(field)) return c;
    for (const std::string& b : it->second.bases) stack.push_back(b);
  }
  return "";
}

std::string Model::FieldType(const std::string& cls, const std::string& field)
    const {
  std::vector<std::string> stack{ResolveAlias(cls)};
  std::set<std::string> seen;
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto it = classes.find(c);
    if (it == classes.end()) continue;
    auto fit = it->second.fields.find(field);
    if (fit != it->second.fields.end()) return ResolveAlias(fit->second);
    for (const std::string& b : it->second.bases) stack.push_back(b);
  }
  return "";
}

const FunctionInfo* Model::Find(const std::string& key) const {
  auto it = by_key.find(key);
  if (it == by_key.end()) return nullptr;
  return &functions[it->second.front()];
}

Model Indexer::Build() {
  Model model;
  // Headers first so declaration sites (annotations, access) win over
  // out-of-class definitions when records merge.
  std::stable_sort(files_.begin(), files_.end(),
                   [](const SourceFile& a, const SourceFile& b) {
                     auto is_header = [](const std::string& p) {
                       return p.size() > 2 && p.compare(p.size() - 2, 2, ".h")
                                                  == 0;
                     };
                     return is_header(a.path) > is_header(b.path);
                   });
  model.files = std::move(files_);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t f = 0; f < model.files.size(); ++f) {
      Parser p{&model, &model.files[f], static_cast<int>(f), pass == 1};
      p.ParseDeclScope(0, model.files[f].tokens.size(), "", false);
    }
  }
  // Note: annotations are NOT auto-propagated from base methods to
  // overrides. An annotated base method is a caller-side contract (virtual
  // dispatch stops there); each concrete class states its own contexts so
  // that backends which deliberately collapse contexts (the single-threaded
  // SimCluster drives Site, ManagingSite, and client code on one thread)
  // are not forced into a vocabulary that cannot describe them.
  model.by_name.clear();
  for (size_t i = 0; i < model.functions.size(); ++i) {
    model.by_name[model.functions[i].name].push_back(static_cast<int>(i));
  }
  return model;
}

}  // namespace analyze
}  // namespace miniraid

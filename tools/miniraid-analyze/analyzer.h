#ifndef MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_
#define MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_

// miniraid-analyze: whole-program semantic analysis for the execution-context
// and protocol-ownership disciplines the engine relies on (docs/ANALYSIS.md
// §7). The analysis core in this header is frontend-independent: facts about
// the program (classes, functions, calls with resolved receiver types,
// switches, codec sequences) are extracted into a `Model` either by the
// built-in indexer (lexer.cc + indexer.cc, no toolchain dependency) or by the
// Clang LibTooling frontend (clang_frontend.cc, built when
// MINIRAID_ANALYZE_CLANG=ON), and the checks in checks.cc run on the model.

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace miniraid {
namespace analyze {

// ---------------------------------------------------------------------------
// Execution contexts (the MR_RUNS_ON vocabulary).
//
//   managing - the managing site's execution context: ManagingSite,
//              SubmitWindow, and everything transitively confined to the
//              coordinator's protocol state.
//   loop     - a site's event-loop context: Site and the protocol engine.
//   client   - caller/driver threads and dedicated IO threads; blocking is
//              permitted here, touching loop- or managing-confined state is
//              not (marshal through EventLoop::Post / PostAndWait instead).
//   any      - callable from every context; must itself stay confinement-
//              and blocking-clean.
// ---------------------------------------------------------------------------
enum class Ctx { kNone = 0, kManaging, kLoop, kClient, kAny };

const char* CtxName(Ctx ctx);
Ctx ParseCtx(const std::string& name);  // "managing" -> kManaging, ...

// ---------------------------------------------------------------------------
// Findings and suppression.
// ---------------------------------------------------------------------------
struct Finding {
  std::string rule;     // e.g. "cross-context-call"
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

// ---------------------------------------------------------------------------
// Tokens (built-in frontend).
// ---------------------------------------------------------------------------
struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = kPunct;
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> rules allowed on that line ("*" = all). A `// miniraid-lint:
  // allow(rule)` comment covers its own line and the next line, matching
  // scripts/miniraid_lint.py.
  std::map<int, std::set<std::string>> allow;
};

// Lexes `content`; records suppression comments, skips preprocessor lines.
SourceFile LexFile(const std::string& path, const std::string& content);

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------
struct CallSite {
  std::string callee;         // unqualified name ("Set", "Wait", "sleep_for")
  std::string receiver_type;  // resolved class of the receiver, "" if none or
                              // unresolvable
  std::string receiver_node;  // receiver identity when the chain ends in a
                              // field: "OwnerClass::field" ("" otherwise);
                              // the lock-order pass keys mutex ops on it
  std::string last_arg_type;  // resolved core type of the last argument
                              // (through std::move and braced construction);
                              // the effect pass reads SendTo payloads off it
  bool is_member = false;     // x.f() / x->f() / implicit this
  bool qualified = false;     // ::f() or ns::f()
  bool in_lambda = false;     // call happens inside a lambda body
  int line = 0;
  int file_index = -1;
  size_t tok = 0;             // index of the callee token in the file stream
                              // (clang frontend: source offset — used only
                              // for ordering against CaseLabel::tok)
  std::string last_ident_arg; // last argument when it is a lone identifier;
                              // pre-resolved by the clang frontend (the
                              // built-in indexer recovers it from tokens)
};

struct CaseLabel {
  std::string enum_qual;   // "MsgType" in `case MsgType::kPrepare:`
  std::string enumerator;  // "kPrepare"
  int line = 0;
  size_t tok = 0;
};

struct SwitchInfo {
  std::vector<CaseLabel> cases;
  bool has_default = false;
  int line = 0;
  int file_index = -1;
};

// One encoder write or decoder read, in source order.
struct CodecOp {
  std::string kind;    // "U8", "U64", "Varint", "String", "Vector", ...
  std::string helper;  // for Vector: the element helper ("PutOperation")
  int line = 0;
};

// A scoped lock acquisition: `MutexLock lock(mu_);`. The lock is held from
// `tok` until the enclosing block closes at `release_tok` (both in the same
// token/offset space as CallSite::tok, so lock ops and calls interleave by
// simple comparison).
struct ScopedAcquire {
  std::string node;        // "OwnerClass::field" of the locked mutex, "" if
                           // the constructor argument did not resolve
  size_t tok = 0;
  size_t release_tok = 0;  // position of the enclosing block's closing brace
  int line = 0;
  int file_index = -1;
  bool in_lambda = false;
};

struct FunctionInfo {
  std::string cls;   // enclosing class, "" for free functions
  std::string name;  // unqualified ("OnMessage", "operator()")
  std::string key;   // merge key: cls::name, operator() adds "@<param0>"
  std::string file;  // declaration site (header when available)
  int line = 0;
  int file_index = -1;
  Ctx ctx = Ctx::kNone;
  bool ctx_inherited = false;  // ctx propagated from an annotated base method
  bool is_public = false;
  bool is_defn = false;        // a body was seen
  bool is_ctor_dtor = false;
  bool is_operator = false;
  bool is_static = false;
  std::string param0_type;     // resolved core type of the first parameter
  std::vector<CallSite> calls;
  std::vector<SwitchInfo> switches;
  std::vector<ScopedAcquire> scoped_acquires;

  std::string qual() const { return cls.empty() ? name : cls + "::" + name; }
};

struct ClassInfo {
  std::string name;
  bool is_struct = false;
  bool is_capability = false;         // MR_CAPABILITY / clang `capability`
  bool is_scoped_capability = false;  // MR_SCOPED_CAPABILITY / scoped_lockable
  std::vector<std::string> bases;
  std::map<std::string, std::string> fields;      // field name -> core type
  std::map<std::string, std::string> method_ret;  // method -> core return type
  std::set<std::string> methods;
  std::string file;
  int line = 0;

  // A lock-order edge declared on a mutex field with MR_ACQUIRED_BEFORE /
  // MR_ACQUIRED_AFTER. `target` is the annotation argument as an identifier
  // chain (`loop_->mu_` -> {"loop_", "mu_"}); resolution to a lock node
  // happens in the lock-order pass once the whole model is built.
  struct LockEdge {
    std::string field;                // annotated mutex field
    std::vector<std::string> target;  // identifier chain of the argument
    bool before = true;               // MR_ACQUIRED_BEFORE vs _AFTER
    int line = 0;
  };
  std::vector<LockEdge> lock_edges;
};

struct EnumInfo {
  std::string name;       // simple name ("MsgType")
  std::string scope;      // enclosing class, "" at namespace scope
  std::vector<std::string> enumerators;
  std::string file;
  int line = 0;
};

struct Model {
  std::vector<SourceFile> files;
  std::map<std::string, ClassInfo> classes;       // by simple name
  std::vector<EnumInfo> enums;
  std::map<std::string, std::string> aliases;     // using A = B; A -> B

  std::vector<FunctionInfo> functions;
  std::map<std::string, std::vector<int>> by_key;   // merge key -> index
  std::map<std::string, std::vector<int>> by_name;  // unqualified -> indices

  // Resolves `name` through the alias map (bounded, cycle-safe).
  std::string ResolveAlias(const std::string& name) const;
  // True if `cls` is `base` or derives (transitively) from it.
  bool DerivesFrom(const std::string& cls, const std::string& base) const;
  // Looks up a method in `cls` or its bases; returns function index or -1.
  int FindMethod(const std::string& cls, const std::string& name) const;
  // Field type in `cls` or its bases ("" if unknown).
  std::string FieldType(const std::string& cls, const std::string& field) const;
  const FunctionInfo* Find(const std::string& key) const;
};

// ---------------------------------------------------------------------------
// Built-in indexer: builds a Model from lexed sources (two passes:
// declarations, then bodies).
// ---------------------------------------------------------------------------
class Indexer {
 public:
  void AddFile(SourceFile file) { files_.push_back(std::move(file)); }
  Model Build();

 private:
  std::vector<SourceFile> files_;
};

// ---------------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------------
struct OwnershipRule {
  std::string rule;                     // finding rule name
  std::string receiver;                 // owning type ("FailLockTable")
  std::set<std::string> mutators;       // {"Set", "Clear", "MergeFrom"}
  std::set<std::string> home_basenames; // files allowed to mutate
};

// Maps a (receiver class, method) pair to a protocol-effect token; receivers
// match through inheritance like OwnershipRule.
struct EffectRule {
  std::string receiver;  // "" matches methods of the dispatcher class itself
  std::string method;
  std::string effect;    // e.g. "faillock.set"
};

struct CheckOptions {
  std::vector<OwnershipRule> ownership;
  std::set<std::string> blocking_free;  // free-call names that block
  std::map<std::string, std::set<std::string>> blocking_members;
  std::string dispatch_enum;            // enum checked for exhaustiveness
  std::string dispatch_function;        // name of dispatch entry points
  // Wire payload types whose name does not follow the `<Enumerator>Args`
  // convention, mapped to their dispatch enumerator (e.g. "TxnResult" ->
  // "kTxnReply").
  std::map<std::string, std::string> codec_aliases;
  bool check_codec = true;
  bool check_contexts = true;

  // --- lock-order pass -----------------------------------------------------
  bool check_lock_order = true;
  // Item-lock layer: methods that enqueue waiters or run grant callbacks
  // synchronously; calling them (directly or transitively) while holding a
  // mutex is flagged, because grant callbacks execute on lock-release paths.
  std::map<std::string, std::set<std::string>> item_lock_members;

  // --- protocol-effect pass ------------------------------------------------
  // Dispatcher class whose `dispatch_function` switch defines the handlers
  // ("Site"), and the call that transmits a payload ("SendTo").
  std::string effect_class;
  std::string send_function;
  std::vector<EffectRule> effect_rules;
  // Parsed golden text (one `handler: effects...` line per handler). Empty
  // means "compute the map but do not diff" — protocol-effect findings are
  // only produced against a golden.
  std::string effects_golden;

  static CheckOptions Defaults();
};

std::vector<Finding> RunChecks(const Model& model, const CheckOptions& opts);

// Call-target resolution shared by every interprocedural pass (checks.cc):
// annotated methods found through the receiver type are contracts (no
// virtual fan-out); unannotated methods fan out to derived overrides.
std::vector<int> ResolveCallTargets(const Model& m, const CallSite& c);
// The call's last argument when it is a lone identifier (pre-resolved by the
// clang frontend, recovered from tokens by the built-in indexer).
std::string CallLastIdentArg(const Model& m, const CallSite& c);

// ---------------------------------------------------------------------------
// Lock-order pass (lock_order.cc).
//
// Nodes are mutex-typed fields of capability classes ("EventLoop::mu_").
// Declared edges come from MR_ACQUIRED_BEFORE/_AFTER annotations; observed
// edges from interprocedural replay of scoped/manual acquisitions ("holds A
// while acquiring B", possibly through a call chain). Findings (rule
// "lock-order"): declared-order cycles, observed edges that contradict the
// declared order, observed edges with no declared order (completeness), and
// paths that can block (CondVar wait, item-lock op) while holding a mutex.
// ---------------------------------------------------------------------------
struct LockGraph {
  struct Edge {
    std::string from;
    std::string to;
    std::string kind;  // "declared" | "observed"
    std::string via;   // observed: call chain hint ("EventLoop::Post")
    std::string file;
    int line = 0;
  };
  std::set<std::string> nodes;
  std::vector<Edge> edges;
};

LockGraph BuildLockGraph(const Model& model, const CheckOptions& opts,
                         std::vector<Finding>* findings);
void WriteLockGraphDot(const LockGraph& graph, std::ostream& os);
void WriteLockGraphJson(const LockGraph& graph, std::ostream& os);

// ---------------------------------------------------------------------------
// Protocol-effect pass (effects.cc).
//
// For each `case MsgType::kX:` region of the dispatcher's switch, the effect
// summary is the union of effect tokens produced by the region's calls and
// their transitive callees (lambda bodies excluded: deferred continuations
// are not part of the handler's synchronous effect). Tokens: "send:<kEnum>",
// "faillock.*", "session.*", "lockmgr.*", "outcome.record".
// ---------------------------------------------------------------------------
struct EffectMap {
  // dispatch enumerator -> sorted effect tokens (empty set = pure handler)
  std::map<std::string, std::set<std::string>> handlers;
  std::map<std::string, int> handler_lines;  // case label line per handler
  std::string file;  // dispatcher definition file
  int line = 0;      // dispatcher definition line
};

EffectMap BuildEffectMap(const Model& model, const CheckOptions& opts);
// One `kEnumerator: effect effect...` line per handler ("-" when pure).
std::string FormatEffectMap(const EffectMap& map);
void WriteEffectMapJson(const EffectMap& map, std::ostream& os);
// Diffs `map` against golden text ('#' comments allowed); appends one
// "protocol-effect" finding per drifted, missing, or unexpected handler.
void DiffEffectsAgainstGolden(const EffectMap& map, const std::string& golden,
                              std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------
// Marks findings covered by a `// miniraid-lint: allow(...)` comment.
void ApplySuppressions(const Model& model, std::vector<Finding>* findings);
// Prints unsuppressed findings as clickable file:line diagnostics; returns
// the number of unsuppressed findings.
int PrintFindings(const std::vector<Finding>& findings, std::ostream& os);
// Writes the full findings list (including suppressed) as JSON.
void WriteJson(const std::vector<Finding>& findings, std::ostream& os);

}  // namespace analyze
}  // namespace miniraid

#endif  // MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_

#ifndef MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_
#define MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_

// miniraid-analyze: whole-program semantic analysis for the execution-context
// and protocol-ownership disciplines the engine relies on (docs/ANALYSIS.md
// §7). The analysis core in this header is frontend-independent: facts about
// the program (classes, functions, calls with resolved receiver types,
// switches, codec sequences) are extracted into a `Model` either by the
// built-in indexer (lexer.cc + indexer.cc, no toolchain dependency) or by the
// Clang LibTooling frontend (clang_frontend.cc, built when
// MINIRAID_ANALYZE_CLANG=ON), and the checks in checks.cc run on the model.

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace miniraid {
namespace analyze {

// ---------------------------------------------------------------------------
// Execution contexts (the MR_RUNS_ON vocabulary).
//
//   managing - the managing site's execution context: ManagingSite,
//              SubmitWindow, and everything transitively confined to the
//              coordinator's protocol state.
//   loop     - a site's event-loop context: Site and the protocol engine.
//   client   - caller/driver threads and dedicated IO threads; blocking is
//              permitted here, touching loop- or managing-confined state is
//              not (marshal through EventLoop::Post / PostAndWait instead).
//   any      - callable from every context; must itself stay confinement-
//              and blocking-clean.
// ---------------------------------------------------------------------------
enum class Ctx { kNone = 0, kManaging, kLoop, kClient, kAny };

const char* CtxName(Ctx ctx);
Ctx ParseCtx(const std::string& name);  // "managing" -> kManaging, ...

// ---------------------------------------------------------------------------
// Findings and suppression.
// ---------------------------------------------------------------------------
struct Finding {
  std::string rule;     // e.g. "cross-context-call"
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

// ---------------------------------------------------------------------------
// Tokens (built-in frontend).
// ---------------------------------------------------------------------------
struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = kPunct;
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> rules allowed on that line ("*" = all). A `// miniraid-lint:
  // allow(rule)` comment covers its own line and the next line, matching
  // scripts/miniraid_lint.py.
  std::map<int, std::set<std::string>> allow;
};

// Lexes `content`; records suppression comments, skips preprocessor lines.
SourceFile LexFile(const std::string& path, const std::string& content);

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------
struct CallSite {
  std::string callee;         // unqualified name ("Set", "Wait", "sleep_for")
  std::string receiver_type;  // resolved class of the receiver, "" if none or
                              // unresolvable
  std::string receiver_node;  // receiver identity when the chain ends in a
                              // field: "OwnerClass::field" ("" otherwise);
                              // the lock-order pass keys mutex ops on it
  std::string last_arg_type;  // resolved core type of the last argument
                              // (through std::move and braced construction);
                              // the effect pass reads SendTo payloads off it
  bool is_member = false;     // x.f() / x->f() / implicit this
  bool qualified = false;     // ::f() or ns::f()
  bool in_lambda = false;     // call happens inside a lambda body
  int lambda = -1;            // index into FunctionInfo::lambdas, -1 = body
  int line = 0;
  int file_index = -1;
  size_t tok = 0;             // index of the callee token in the file stream
                              // (clang frontend: source offset — used only
                              // for ordering against CaseLabel::tok)
  std::string last_ident_arg; // last argument when it is a lone identifier;
                              // pre-resolved by the clang frontend (the
                              // built-in indexer recovers it from tokens)
};

// A read or write of a class field observed in a function (or lambda) body.
// Only root-level accesses to fields of the *enclosing* class are recorded
// (`count_`, `this->count_`, `report.latency.Add(..)` records `report`);
// accesses through unrelated objects go through that object's own methods
// and are attributed there. `via_call` is the trailing member call on the
// access chain ("push_back" in `items_.push_back(x)`): whether it mutates is
// the shared-state pass's decision (CheckOptions::mutating_members), not the
// frontend's.
struct FieldAccess {
  std::string cls;       // class that declares the field (may be a base)
  std::string field;
  bool is_write = false; // syntactic write: assignment or ++/--
  std::string via_call;  // trailing member call on the chain, "" if none
  int line = 0;
  int file_index = -1;
  size_t tok = 0;
  int lambda = -1;       // index into FunctionInfo::lambdas, -1 = body proper
};

// A lambda literal in a function body. When the lambda is written directly
// as a call argument (`loop_->Post([this] {...})`), `host_callee` /
// `host_receiver` identify that call so the dataflow passes can map the
// lambda to the execution context it will run on (CheckOptions::sinks) and
// flag stack captures that outlive the frame.
struct LambdaInfo {
  struct Capture {
    std::string name;     // captured identifier ("this" handled separately)
    bool by_ref = false;
    bool is_init = false; // [x = expr] init-capture
  };
  char capture_default = 0;    // '&', '=', or 0
  bool captures_this = false;
  std::vector<Capture> captures;
  std::string host_callee;     // "" when not a direct call argument
  std::string host_receiver;   // resolved receiver class of the host call
  int line = 0;
  int file_index = -1;
  size_t tok = 0;
};

// A local variable declaration with its initializer's dataflow roots: in
// `std::string_view v(buf.data(), n);` the root is `buf` and the trailing
// call is `data`. The view-escape pass chains these to decide whether a
// view is derived from a function-local buffer.
struct LocalVar {
  std::string name;
  std::string type;       // resolved core type ("string_view", "string")
  std::string init_root;  // first identifier of the initializer ("" = none)
  std::string init_call;  // trailing member call in the initializer
  int line = 0;
  int file_index = -1;
  size_t tok = 0;
  int lambda = -1;
};

// A direct assignment to a field of the enclosing class (`f_ = expr;`),
// with the RHS's dataflow root. Only length-1 access chains are recorded:
// stores *into* a field's own members are a different hazard class.
struct FieldStore {
  std::string cls;        // class that declares the field
  std::string field;
  std::string rhs_root;   // first identifier of the RHS ("" = unresolved)
  std::string rhs_call;   // trailing member call of the RHS ("data", ...)
  int line = 0;
  int file_index = -1;
  size_t tok = 0;
  int lambda = -1;
};

// A return statement's dataflow root (`return buf.data();` -> root "buf",
// call "data").
struct ReturnInfo {
  std::string root;
  std::string call;
  int line = 0;
  int file_index = -1;
  size_t tok = 0;
  int lambda = -1;
};

struct CaseLabel {
  std::string enum_qual;   // "MsgType" in `case MsgType::kPrepare:`
  std::string enumerator;  // "kPrepare"
  int line = 0;
  size_t tok = 0;
};

struct SwitchInfo {
  std::vector<CaseLabel> cases;
  bool has_default = false;
  int line = 0;
  int file_index = -1;
};

// One encoder write or decoder read, in source order.
struct CodecOp {
  std::string kind;    // "U8", "U64", "Varint", "String", "Vector", ...
  std::string helper;  // for Vector: the element helper ("PutOperation")
  int line = 0;
};

// A scoped lock acquisition: `MutexLock lock(mu_);`. The lock is held from
// `tok` until the enclosing block closes at `release_tok` (both in the same
// token/offset space as CallSite::tok, so lock ops and calls interleave by
// simple comparison).
struct ScopedAcquire {
  std::string node;        // "OwnerClass::field" of the locked mutex, "" if
                           // the constructor argument did not resolve
  size_t tok = 0;
  size_t release_tok = 0;  // position of the enclosing block's closing brace
  int line = 0;
  int file_index = -1;
  bool in_lambda = false;
  int lambda = -1;  // index into FunctionInfo::lambdas, -1 = body proper
};

struct FunctionInfo {
  std::string cls;   // enclosing class, "" for free functions
  std::string name;  // unqualified ("OnMessage", "operator()")
  std::string key;   // merge key: cls::name, operator() adds "@<param0>"
  std::string file;  // declaration site (header when available)
  int line = 0;
  int file_index = -1;
  Ctx ctx = Ctx::kNone;
  bool ctx_inherited = false;  // ctx propagated from an annotated base method
  bool is_public = false;
  bool is_defn = false;        // a body was seen
  bool is_ctor_dtor = false;
  bool is_operator = false;
  bool is_static = false;
  std::string param0_type;     // resolved core type of the first parameter
  std::string ret_type;        // resolved core return type ("" = unresolved)
  std::vector<CallSite> calls;
  std::vector<SwitchInfo> switches;
  std::vector<ScopedAcquire> scoped_acquires;
  // Dataflow facts for the shared-state and view-escape passes.
  std::vector<FieldAccess> accesses;
  std::vector<LambdaInfo> lambdas;
  std::vector<LocalVar> locals;
  std::vector<FieldStore> field_stores;
  std::vector<ReturnInfo> returns;
  // MR_REQUIRES target chains: mutexes guaranteed held on entry.
  std::vector<std::vector<std::string>> entry_locks;

  std::string qual() const { return cls.empty() ? name : cls + "::" + name; }
};

struct ClassInfo {
  std::string name;
  bool is_struct = false;
  bool is_capability = false;         // MR_CAPABILITY / clang `capability`
  bool is_scoped_capability = false;  // MR_SCOPED_CAPABILITY / scoped_lockable
  std::vector<std::string> bases;
  std::map<std::string, std::string> fields;      // field name -> core type
  std::map<std::string, int> field_lines;         // field name -> decl line
  // MR_GUARDED_BY argument as an identifier chain, per field.
  std::map<std::string, std::vector<std::string>> field_guards;
  // MR_CONTEXT_CONFINED waivers: field -> the context it is confined to.
  std::map<std::string, Ctx> field_confined;
  std::map<std::string, std::string> method_ret;  // method -> core return type
  std::set<std::string> methods;
  std::string file;
  int line = 0;

  // A lock-order edge declared on a mutex field with MR_ACQUIRED_BEFORE /
  // MR_ACQUIRED_AFTER. `target` is the annotation argument as an identifier
  // chain (`loop_->mu_` -> {"loop_", "mu_"}); resolution to a lock node
  // happens in the lock-order pass once the whole model is built.
  struct LockEdge {
    std::string field;                // annotated mutex field
    std::vector<std::string> target;  // identifier chain of the argument
    bool before = true;               // MR_ACQUIRED_BEFORE vs _AFTER
    int line = 0;
  };
  std::vector<LockEdge> lock_edges;
};

struct EnumInfo {
  std::string name;       // simple name ("MsgType")
  std::string scope;      // enclosing class, "" at namespace scope
  std::vector<std::string> enumerators;
  std::string file;
  int line = 0;
};

struct Model {
  std::vector<SourceFile> files;
  std::map<std::string, ClassInfo> classes;       // by simple name
  std::vector<EnumInfo> enums;
  std::map<std::string, std::string> aliases;     // using A = B; A -> B

  std::vector<FunctionInfo> functions;
  std::map<std::string, std::vector<int>> by_key;   // merge key -> index
  std::map<std::string, std::vector<int>> by_name;  // unqualified -> indices

  // Resolves `name` through the alias map (bounded, cycle-safe).
  std::string ResolveAlias(const std::string& name) const;
  // True if `cls` is `base` or derives (transitively) from it.
  bool DerivesFrom(const std::string& cls, const std::string& base) const;
  // Looks up a method in `cls` or its bases; returns function index or -1.
  int FindMethod(const std::string& cls, const std::string& name) const;
  // Field type in `cls` or its bases ("" if unknown).
  std::string FieldType(const std::string& cls, const std::string& field) const;
  // The class (in `cls`'s base walk) that declares `field` ("" if none).
  std::string FieldOwner(const std::string& cls, const std::string& field)
      const;
  const FunctionInfo* Find(const std::string& key) const;
};

// ---------------------------------------------------------------------------
// Built-in indexer: builds a Model from lexed sources (two passes:
// declarations, then bodies).
// ---------------------------------------------------------------------------
class Indexer {
 public:
  void AddFile(SourceFile file) { files_.push_back(std::move(file)); }
  Model Build();

 private:
  std::vector<SourceFile> files_;
};

// ---------------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------------
struct OwnershipRule {
  std::string rule;                     // finding rule name
  std::string receiver;                 // owning type ("FailLockTable")
  std::set<std::string> mutators;       // {"Set", "Clear", "MergeFrom"}
  std::set<std::string> home_basenames; // files allowed to mutate
};

// Maps a (receiver class, method) pair to a protocol-effect token; receivers
// match through inheritance like OwnershipRule.
struct EffectRule {
  std::string receiver;  // "" matches methods of the dispatcher class itself
  std::string method;
  std::string effect;    // e.g. "faillock.set"
};

struct CheckOptions {
  std::vector<OwnershipRule> ownership;
  std::set<std::string> blocking_free;  // free-call names that block
  std::map<std::string, std::set<std::string>> blocking_members;
  std::string dispatch_enum;            // enum checked for exhaustiveness
  std::string dispatch_function;        // name of dispatch entry points
  // Wire payload types whose name does not follow the `<Enumerator>Args`
  // convention, mapped to their dispatch enumerator (e.g. "TxnResult" ->
  // "kTxnReply").
  std::map<std::string, std::string> codec_aliases;
  bool check_codec = true;
  bool check_contexts = true;

  // --- lock-order pass -----------------------------------------------------
  bool check_lock_order = true;
  // Item-lock layer: methods that enqueue waiters or run grant callbacks
  // synchronously; calling them (directly or transitively) while holding a
  // mutex is flagged, because grant callbacks execute on lock-release paths.
  std::map<std::string, std::set<std::string>> item_lock_members;

  // --- protocol-effect pass ------------------------------------------------
  // Dispatcher class whose `dispatch_function` switch defines the handlers
  // ("Site"), and the call that transmits a payload ("SendTo").
  std::string effect_class;
  std::string send_function;
  std::vector<EffectRule> effect_rules;
  // Parsed golden text (one `handler: effects...` line per handler). Empty
  // means "compute the map but do not diff" — protocol-effect findings are
  // only produced against a golden.
  std::string effects_golden;

  // --- deferred execution sinks (dataflow passes) --------------------------
  // A method that takes a callable and runs it later on a known execution
  // context. `runs_on == kNone` means the callable runs on the caller's own
  // context; `deferred == false` means it completes before the call returns
  // (EventLoop::PostAndWait), so stack captures are safe.
  struct DeferredSink {
    std::string receiver;  // receiver class (matched through inheritance)
    std::string method;
    Ctx runs_on = Ctx::kNone;
    bool deferred = true;
  };
  std::vector<DeferredSink> sinks;

  // --- shared-state pass ---------------------------------------------------
  bool check_shared_state = true;
  // Field types that are internally synchronized (or are themselves locks);
  // their accesses are not evidence of a race.
  std::set<std::string> shared_state_exempt_types;
  // Member calls that mutate their receiver (container writes, stat sinks);
  // `items_.push_back(x)` counts as a write of `items_`.
  std::set<std::string> mutating_members;

  // --- view-escape pass ----------------------------------------------------
  bool check_view_escape = true;
  std::set<std::string> view_types;         // string_view, Slice, span
  std::set<std::string> buffer_types;       // string, vector, ...
  std::set<std::string> view_source_calls;  // data, c_str: yield raw views
  std::set<std::string> container_inserts;  // push_back, insert, ...

  static CheckOptions Defaults();
};

std::vector<Finding> RunChecks(const Model& model, const CheckOptions& opts);

// Call-target resolution shared by every interprocedural pass (checks.cc):
// annotated methods found through the receiver type are contracts (no
// virtual fan-out); unannotated methods fan out to derived overrides.
std::vector<int> ResolveCallTargets(const Model& m, const CallSite& c);
// The call's last argument when it is a lone identifier (pre-resolved by the
// clang frontend, recovered from tokens by the built-in indexer).
std::string CallLastIdentArg(const Model& m, const CallSite& c);

// ---------------------------------------------------------------------------
// Lock-order pass (lock_order.cc).
//
// Nodes are mutex-typed fields of capability classes ("EventLoop::mu_").
// Declared edges come from MR_ACQUIRED_BEFORE/_AFTER annotations; observed
// edges from interprocedural replay of scoped/manual acquisitions ("holds A
// while acquiring B", possibly through a call chain). Findings (rule
// "lock-order"): declared-order cycles, observed edges that contradict the
// declared order, observed edges with no declared order (completeness), and
// paths that can block (CondVar wait, item-lock op) while holding a mutex.
// ---------------------------------------------------------------------------
struct LockGraph {
  struct Edge {
    std::string from;
    std::string to;
    std::string kind;  // "declared" | "observed"
    std::string via;   // observed: call chain hint ("EventLoop::Post")
    std::string file;
    int line = 0;
  };
  std::set<std::string> nodes;
  std::vector<Edge> edges;
};

LockGraph BuildLockGraph(const Model& model, const CheckOptions& opts,
                         std::vector<Finding>* findings);
void WriteLockGraphDot(const LockGraph& graph, std::ostream& os);
void WriteLockGraphJson(const LockGraph& graph, std::ostream& os);

// ---------------------------------------------------------------------------
// Protocol-effect pass (effects.cc).
//
// For each `case MsgType::kX:` region of the dispatcher's switch, the effect
// summary is the union of effect tokens produced by the region's calls and
// their transitive callees (lambda bodies excluded: deferred continuations
// are not part of the handler's synchronous effect). Tokens: "send:<kEnum>",
// "faillock.*", "session.*", "lockmgr.*", "outcome.record".
// ---------------------------------------------------------------------------
struct EffectMap {
  // dispatch enumerator -> sorted effect tokens (empty set = pure handler)
  std::map<std::string, std::set<std::string>> handlers;
  std::map<std::string, int> handler_lines;  // case label line per handler
  std::string file;  // dispatcher definition file
  int line = 0;      // dispatcher definition line
};

EffectMap BuildEffectMap(const Model& model, const CheckOptions& opts);
// One `kEnumerator: effect effect...` line per handler ("-" when pure).
std::string FormatEffectMap(const EffectMap& map);
void WriteEffectMapJson(const EffectMap& map, std::ostream& os);
// Diffs `map` against golden text ('#' comments allowed); appends one
// "protocol-effect" finding per drifted, missing, or unexpected handler.
void DiffEffectsAgainstGolden(const EffectMap& map, const std::string& golden,
                              std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Shared held-set machinery (lock_order.cc, reused by the dataflow passes).
//
// A held interval is the token range of one function body over which a lock
// node is observably held: a scoped acquire's scope, or a manual Lock()
// paired with the next Unlock() on the same node. Intervals carry the lambda
// index they were recorded in so a pass can ask for the held set either of
// the enclosing function proper (lambda == -1) or of one lambda body.
// ---------------------------------------------------------------------------
struct HeldInterval {
  std::string node;
  size_t from = 0;
  size_t to = 0;  // exclusive; SIZE_MAX for an unmatched manual Lock
  int lambda = -1;
};

std::vector<HeldInterval> ComputeHeldIntervals(const Model& m,
                                               const FunctionInfo& fn);
// Lock nodes held at token position `tok` within lambda `lambda` (-1 = the
// function body outside any lambda). Lambda bodies see only their own
// intervals: a deferred continuation does not run under the scopes that were
// live when it was created.
std::set<std::string> HeldNodesAt(const std::vector<HeldInterval>& intervals,
                                  size_t tok, int lambda);
// Resolves a dotted identifier chain ("mu_", "loop_.mu_", "EventLoop::mu_")
// against class `cls` to a lock-graph node name, or "" when it does not
// reach a capability-typed field.
std::string ResolveLockNode(const Model& m, const std::string& cls,
                            const std::vector<std::string>& chain);

// ---------------------------------------------------------------------------
// Dataflow passes (dataflow.cc).
//
// shared-state: for every class field, infer the set of execution contexts
// reaching each access (context-graph closure extended to unannotated
// functions and posted lambdas) and the set of mutexes observably held;
// flag multi-context fields with no common guard, no MR_GUARDED_BY, and no
// MR_CONTEXT_CONFINED waiver, plus fields whose inferred guard disagrees
// with their declared MR_GUARDED_BY.
//
// view-escape: flag string_view/Slice/span/raw-pointer values derived from
// owning buffers that escape their buffer's scope -- stored into a field,
// returned past the frame, inserted into a member container, or captured by
// a lambda handed to a deferred sink (Post/ScheduleAfter).
// ---------------------------------------------------------------------------
struct SharedStateReport {
  struct Field {
    std::string cls;
    std::string field;
    std::string type;
    std::string file;
    int line = 0;
    std::set<std::string> contexts;       // context names reaching accesses
    std::set<std::string> common_guards;  // lock nodes held at every access
    std::string declared_guard;           // resolved MR_GUARDED_BY node
    std::string waiver;                   // MR_CONTEXT_CONFINED ctx name
    int reads = 0;
    int writes = 0;
    // "single-context" | "read-only" | "annotated" | "confined" |
    // "guarded" | "race" | "guard-disagreement"
    std::string verdict;
  };
  std::vector<Field> fields;
};

SharedStateReport BuildSharedStateReport(const Model& model,
                                         const CheckOptions& opts,
                                         std::vector<Finding>* findings);
void WriteSharedStateJson(const SharedStateReport& report, std::ostream& os);

void CheckViewEscape(const Model& model, const CheckOptions& opts,
                     std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------
// Marks findings covered by a `// miniraid-lint: allow(...)` comment.
void ApplySuppressions(const Model& model, std::vector<Finding>* findings);
// Prints unsuppressed findings as clickable file:line diagnostics; returns
// the number of unsuppressed findings.
int PrintFindings(const std::vector<Finding>& findings, std::ostream& os);
// Writes the full findings list (including suppressed) as JSON.
void WriteJson(const std::vector<Finding>& findings, std::ostream& os);
// Writes unsuppressed findings as a minimal SARIF 2.1.0 log for CI
// code-scanning upload.
void WriteSarif(const std::vector<Finding>& findings, std::ostream& os);

}  // namespace analyze
}  // namespace miniraid

#endif  // MINIRAID_TOOLS_MINIRAID_ANALYZE_ANALYZER_H_

#!/usr/bin/env python3
"""Self-test for the miniraid-analyze semantic analyzer.

Mirrors scripts/lint_selftest.py for the regex linter: every rule ships a
bad/good/suppressed fixture triplet under testdata/<rule>/, and this runner
asserts the contract for each file:

  bad.cc        exits non-zero and reports at least one finding of <rule>
                (and no finding of any OTHER rule -- fixtures are isolated)
  good.cc       exits zero with zero findings, suppressed or not
  suppressed.cc exits zero, but the JSON report shows at least one
                suppressed finding of <rule> -- proving the check still
                sees the defect and the allow() comment is what silences it

Run it against the built binary:

  python3 tools/miniraid-analyze/selftest.py --binary build/tools/miniraid-analyze/miniraid-analyze

The driver is registered as the `miniraid_analyze_selftest` ctest.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")

RULES = [
    "cross-context-call",
    "context-coverage",
    "blocking-call",
    "fail-lock-mutation",
    "session-mutation",
    "msg-dispatch",
    "codec-symmetry",
    "lock-order",
    "protocol-effect",
    "shared-state",
    "view-escape",
]


def run_analyzer(binary, path):
    """Run the analyzer on one fixture; return (exit_code, findings)."""
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json", delete=False) as tf:
        json_path = tf.name
    # A triplet that ships a golden.txt (protocol-effect) is diffed against
    # it; rules without a golden run with the default passes only.
    golden = os.path.join(os.path.dirname(path), "golden.txt")
    extra = ["--effects-golden", golden] if os.path.exists(golden) else []
    try:
        proc = subprocess.run(
            [binary, "--json", json_path] + extra + [path],
            capture_output=True,
            text=True,
        )
        with open(json_path) as f:
            report = json.load(f)
    finally:
        os.unlink(json_path)
    return proc.returncode, report["findings"], proc.stdout + proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="miniraid-analyze binary")
    args = parser.parse_args()

    failures = []
    checked = 0

    for rule in RULES:
        triplet_dir = os.path.join(TESTDATA, rule)
        for kind in ("bad", "good", "suppressed"):
            path = os.path.join(triplet_dir, kind + ".cc")
            if not os.path.exists(path):
                failures.append(f"{rule}/{kind}.cc: fixture missing")
                continue
            checked += 1
            code, findings, output = run_analyzer(args.binary, path)
            rules_hit = {f["rule"] for f in findings}
            unsuppressed = [f for f in findings if not f["suppressed"]]
            label = f"{rule}/{kind}.cc"

            if kind == "bad":
                if code == 0 or not unsuppressed:
                    failures.append(f"{label}: expected the check to fire, "
                                    f"got exit {code} with {len(unsuppressed)} "
                                    f"unsuppressed finding(s)\n{output}")
                elif rule not in rules_hit:
                    failures.append(f"{label}: fired {sorted(rules_hit)}, "
                                    f"not '{rule}'")
                elif rules_hit != {rule}:
                    failures.append(f"{label}: cross-rule noise, also fired "
                                    f"{sorted(rules_hit - {rule})}")
            elif kind == "good":
                if code != 0 or findings:
                    failures.append(f"{label}: expected a clean pass, got exit "
                                    f"{code} with {len(findings)} finding(s)\n"
                                    f"{output}")
            else:  # suppressed
                suppressed_hits = {f["rule"] for f in findings if f["suppressed"]}
                if code != 0 or unsuppressed:
                    failures.append(f"{label}: allow() comment did not silence "
                                    f"the finding (exit {code})\n{output}")
                elif rule not in suppressed_hits:
                    failures.append(f"{label}: expected a suppressed '{rule}' "
                                    f"finding proving the check still sees the "
                                    f"defect; saw {sorted(suppressed_hits)}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        print(f"\n{len(failures)} failure(s) out of {checked} fixture checks",
              file=sys.stderr)
        return 1

    print(f"miniraid-analyze selftest: {checked} fixture checks passed "
          f"({len(RULES)} rules x bad/good/suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Reproduces every table and figure in the paper plus all ablations,
# collecting outputs (text + CSV series) under results/. Run from the
# repository root.
set -eu

BUILD=${BUILD:-build}
OUT=${OUT:-results}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

mkdir -p "$OUT"

# Figures, with CSV series for external plotting.
"$BUILD"/bench/bench_exp2_recovery_fig1   "$OUT/fig1.csv" | tee "$OUT/fig1.txt"
"$BUILD"/bench/bench_exp3_scenario1_fig2  "$OUT/fig2.csv" | tee "$OUT/fig2.txt"
"$BUILD"/bench/bench_exp3_scenario2_fig3  "$OUT/fig3.csv" | tee "$OUT/fig3.txt"

# Tables, ablations, and microbenchmarks: everything else in bench/.
for path in "$BUILD"/bench/bench_*; do
  bench=$(basename "$path")
  case "$bench" in
    bench_exp2_recovery_fig1|bench_exp3_scenario1_fig2|bench_exp3_scenario2_fig3)
      continue ;;  # already run above, with CSV output
    bench_micro_*)
      "$path" --benchmark_min_time=0.05 | tee "$OUT/$bench.txt" ;;
    *)
      "$path" | tee "$OUT/$bench.txt" ;;
  esac
done

echo
echo "all outputs in $OUT/"

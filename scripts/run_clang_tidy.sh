#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources, using the compile_commands.json exported by any CMake build dir.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to the first of build-release/ build/ that has a
#   compile_commands.json.
#
# Exits 0 when clang-tidy is clean, 1 on findings, and 2 (with a notice)
# when no clang-tidy binary is available — local dev containers may only
# ship gcc; CI installs clang-tidy and treats 2 as a hard failure there.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "run_clang_tidy: no clang-tidy binary found on PATH; skipping." >&2
  echo "run_clang_tidy: install clang-tidy (>= 14) to run this check." >&2
  exit 2
fi

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then shift; fi
if [[ -z "$build_dir" ]]; then
  # Any configured build symlinks its compile_commands.json to the repo
  # root (see CMakeLists.txt), so the root works no matter which build dir
  # is current; the explicit dirs remain as fallbacks for stale trees.
  for candidate in "$root" "$root/build-release" "$root/build"; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json; configure a build first" >&2
  echo "  cmake --preset release   # or: cmake -B build -S ." >&2
  exit 2
fi

# First-party translation units only: generated/third-party code (gtest,
# anything under a build dir) is excluded by construction.
mapfile -t sources < <(cd "$root" && find src tests bench examples \
  -name '*.cc' -o -name '*.cpp' | sort)

# A source missing from the database would be tidied with no flags — or,
# depending on the clang-tidy version, silently skipped — and a stale
# database quietly narrows the gate to whatever existed at configure time.
# Fail loudly and name the fix instead.
stale=()
for src in "${sources[@]}"; do
  if ! grep -Fq "$src" "$build_dir/compile_commands.json"; then
    stale+=("$src")
  fi
done
if [[ ${#stale[@]} -gt 0 ]]; then
  echo "run_clang_tidy: compile_commands.json is stale; missing entries for:" >&2
  printf '  %s\n' "${stale[@]}" >&2
  echo "run_clang_tidy: re-run cmake to regenerate it, e.g." >&2
  echo "  cmake --preset release   # or: cmake -B build -S ." >&2
  exit 2
fi

echo "run_clang_tidy: $tidy over ${#sources[@]} files (build: $build_dir)"
status=0
# -warnings-as-errors='*' makes every enabled check gating: clang-tidy
# exits nonzero on any finding, so CI fails instead of logging and passing.
"$tidy" -p "$build_dir" --quiet --warnings-as-errors='*' "$@" \
  "${sources[@]/#/$root/}" || status=1
if [[ $status -eq 0 ]]; then
  echo "run_clang_tidy: clean"
fi
exit $status

#!/usr/bin/env bash
# Kept as a thin alias: the self-contained-header check now lives in the
# lint driver (scripts/miniraid_lint.py --headers-only).
exec python3 "$(dirname "$0")/miniraid_lint.py" --headers-only "$@"

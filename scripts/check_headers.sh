#!/usr/bin/env bash
# Verifies that every public header is self-contained (compiles on its own),
# per the style guide. Run from the repository root.
set -u
fail=0
for header in $(find src -name '*.h' | sort); do
  if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -I src -x c++ "$header" 2>/tmp/hdr_err; then
    echo "NOT SELF-CONTAINED: $header"
    sed -n '1,5p' /tmp/hdr_err
    fail=1
  fi
done
if [ "$fail" -eq 0 ]; then
  echo "all headers self-contained"
fi
exit $fail

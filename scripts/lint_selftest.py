#!/usr/bin/env python3
"""Self-test for scripts/miniraid_lint.py: every rule must reject its
known-bad snippet and accept the matching known-good one.

This is the regression harness the CI lint job runs first: if a rule stops
firing (a refactor of the lint, an over-broad suppression), the injected
raw-mutex / callback-under-lock / layering snippets below stop being caught
and this script fails the build. The retired semantic rules
(fail-lock-mutation, session-mutation, blocking-call) moved to
tools/miniraid-analyze, which has its own fixture selftest
(tools/miniraid-analyze/selftest.py).

Exit status: 0 all cases pass, 1 otherwise.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import miniraid_lint  # noqa: E402


# (name, path-in-fake-repo, source, rule expected to fire or None)
CASES = [
    # -- raw-mutex ---------------------------------------------------------
    ("raw std::mutex member outside common/",
     "src/core/bad_mutex.h",
     "#ifndef MINIRAID_CORE_BAD_MUTEX_H_\n"
     "#define MINIRAID_CORE_BAD_MUTEX_H_\n"
     "#include <mutex>\n"
     "struct S { std::mutex mu_; };\n"
     "#endif  // MINIRAID_CORE_BAD_MUTEX_H_\n",
     "raw-mutex"),
    ("raw std::lock_guard outside common/",
     "src/net/bad_guard.cc",
     "void F() { std::lock_guard<std::mutex> lock(mu_); }\n",
     "raw-mutex"),
    ("std::mutex inside common/ is the wrapper's home",
     "src/common/mutex_impl.cc",
     "static std::mutex m;\n",
     None),
    ("annotated Mutex wrapper use is clean",
     "src/core/good_mutex.cc",
     "void F() { MutexLock lock(mu_); counter_++; }\n",
     None),
    ("raw-mutex respects suppression",
     "src/core/suppressed_mutex.cc",
     "std::mutex special_;  // miniraid-lint: allow(raw-mutex)\n",
     None),

    # -- callback-under-lock ----------------------------------------------
    ("callback invoked inside a MutexLock scope",
     "src/core/bad_callback.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  callback(reply);\n"
     "}\n",
     "callback-under-lock"),
    ("condvar notify while the guard is still held",
     "src/core/bad_notify.cc",
     "void F() {\n"
     "  MutexLock lock(state->mu);\n"
     "  state->done = true;\n"
     "  state->cv.NotifyOne();\n"
     "}\n",
     "callback-under-lock"),
    ("notify after the guard's scope closes is the correct shape",
     "src/core/good_notify.cc",
     "void F() {\n"
     "  {\n"
     "    MutexLock lock(state->mu);\n"
     "    state->done = true;\n"
     "  }\n"
     "  state->cv.NotifyOne();\n"
     "}\n",
     None),
    ("callback with no lock in scope is clean",
     "src/txn/good_callback.cc",
     "void F() { callback(reply); }\n",
     None),
    ("replication layer is outside the callback-under-lock scope",
     "src/replication/not_in_scope.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  callback(reply);\n"
     "}\n",
     None),

    # -- retired rules must NOT fire here anymore --------------------------
    ("session mutation is the semantic analyzer's job now",
     "src/core/retired_session.cc",
     "void F() { session_vector_.MarkDown(3); }\n",
     None),
    ("fail-lock mutation is the semantic analyzer's job now",
     "src/core/retired_faillock.cc",
     "void F() { fail_locks_.Set(item, site); }\n",
     None),
    ("blocking calls are the semantic analyzer's job now",
     "src/core/retired_sleep.cc",
     "void F() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
     None),

    # -- layering ----------------------------------------------------------
    ("upward include: replication reaching into core",
     "src/replication/bad_upward.cc",
     '#include "core/cluster_api.h"\n',
     "layering"),
    ("sideways include: net reaching into storage (same rank)",
     "src/net/bad_sideways.cc",
     '#include "storage/wal.h"\n',
     "layering"),
    ("upward include: core linking back into the checker",
     "src/core/bad_check_dep.cc",
     '#include "check/abstract_model.h"\n',
     "layering"),
    ("downward include is the normal direction",
     "src/replication/good_downward.cc",
     '#include "msg/message.h"\n#include "common/types.h"\n',
     None),
    ("own-component include is always fine",
     "src/core/good_own.cc",
     '#include "core/invariants.h"\n',
     None),
    ("driver file is re-homed above core despite living in txn/",
     "src/txn/driver.cc",
     '#include "core/cluster_api.h"\n#include "txn/transaction.h"\n',
     None),
    ("including the driver from plain txn code points upward",
     "src/txn/bad_driver_dep.cc",
     '#include "txn/driver.h"\n',
     "layering"),

    # -- pre-existing rules stay alive -------------------------------------
    ("wrong header guard",
     "src/core/bad_guard_name.h",
     "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n",
     "header-guard"),
]


def main():
    failures = 0
    with tempfile.TemporaryDirectory(prefix="miniraid_lint_selftest_") as tmp:
        os.makedirs(os.path.join(tmp, "src"), exist_ok=True)
        for name, rel, source, expected_rule in CASES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)

            findings = []
            miniraid_lint.lint_file(path, tmp, findings)
            fired = {rule for (_, _, rule, _) in findings}
            if expected_rule is None:
                ok = expected_rule is None and not fired
                want = "clean"
            else:
                ok = expected_rule in fired
                want = f"[{expected_rule}]"
            status = "ok  " if ok else "FAIL"
            print(f"{status} {name}: expected {want}, got "
                  f"{sorted(fired) if fired else 'clean'}")
            failures += 0 if ok else 1

            # Bad snippets must also be silence-able: the suppression
            # comment is part of the contract. It is per-line, so append
            # it to the exact line each finding fired on.
            if expected_rule is not None and ok:
                bad_lines = {ln for (_, ln, rule, _) in findings
                             if rule == expected_rule}
                lines = source.splitlines(keepends=True)
                for ln in bad_lines:
                    text = lines[ln - 1].rstrip("\n")
                    lines[ln - 1] = (
                        f"{text}  // miniraid-lint: allow({expected_rule})\n")
                with open(path, "w", encoding="utf-8") as f:
                    f.write("".join(lines))
                findings = []
                miniraid_lint.lint_file(path, tmp, findings)
                fired = {r for (_, _, r, _) in findings}
                if expected_rule in fired:
                    print(f"FAIL {name}: allow({expected_rule}) comment "
                          f"did not suppress the finding")
                    failures += 1

    if failures:
        print(f"lint_selftest: {failures} case(s) FAILED")
        return 1
    print(f"lint_selftest: all {len(CASES)} cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

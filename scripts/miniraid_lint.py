#!/usr/bin/env python3
"""Repo-specific lint for mini-RAID: protocol-layer rules generic tools miss.

Rules (each can be suppressed per line or per preceding line with
`// miniraid-lint: allow(<rule>)`):

  discarded-status     A call to a known Status/Result-returning API used as
                       a bare statement. [[nodiscard]] catches this at
                       compile time; the lint also flags it in templates and
                       dead code the compiler never instantiates.

  header-guard         Every header uses the canonical include guard
                       MINIRAID_<PATH>_H_ derived from its path under src/.

  raw-mutex            Raw standard-library synchronization types
                       (std::mutex, std::condition_variable, std::lock_guard,
                       std::unique_lock, ...) outside src/common/. Everything
                       else must use the annotated wrappers in
                       common/mutex.h, so the clang-tsa preset can prove the
                       lock discipline at compile time (GUARDED_BY fields,
                       declared lock order).

  callback-under-lock  A user callback or condition-variable notify invoked
                       while a scoped lock guard is still in scope, in the
                       layers that hand replies back to callers (src/core/,
                       src/txn/, src/net/). Running foreign code under a
                       lock is the notify-after-unlock bug class PR 1 fixed
                       by hand: it deadlocks on re-entrant submission and
                       wakes waiters into a still-held mutex.

  layering             The include DAG between src/ components must respect
                       the architecture ranks (LAYER_RANKS below): an
                       #include "<dir>/..." may only point at a component of
                       strictly lower rank, or at the including file's own
                       component. Keeps e.g. replication/ from reaching up
                       into core/, and the model checker (check/) a pure
                       observer that nothing links back to.

Retired rules — now owned by the semantic analyzer (tools/miniraid-analyze),
which resolves receiver types and walks the call graph instead of matching
text, and keeps the same `// miniraid-lint: allow(...)` suppression syntax:

  fail-lock-mutation   FailLockTable mutations outside src/replication/.
  session-mutation     SessionVector mutations outside the Site engine.
  blocking-call        Blocking calls reachable from loop-context entries
                       (reachability replaced this script's per-file
                       allowlists).

Modes:
  (default)        run the text rules over src/ (or the given paths)
  --headers        also verify every header is self-contained (compiles
                   alone with g++ -fsyntax-only)
  --headers-only   only the self-contained-header check (what the old
                   scripts/check_headers.sh did)

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import subprocess
import sys

SUPPRESS_RE = re.compile(r"//\s*miniraid-lint:\s*allow\(([a-z\-, ]+)\)")

# discarded-status: a bare-statement call (no assignment, return, cast, or
# macro wrapper) to an API known to return Status/Result. MergeFrom is only
# Status-returning on the protocol tables (DurationStats::MergeFrom is
# void), so it is constrained by receiver name.
DISCARDED_RE = re.compile(
    r"^\s*(?:"
    r"(?:\w+(?:\.|->))*(?:fail_locks?\w*|session\w*)(?:\.|->)MergeFrom"
    r"|(?:\w+(?:\.|->))+(?:CommitWrite|InstallCopy|DropCopy|RestoreImage)"
    r"|(?:\w+(?:\.|->))*wal\w*(?:\.|->)(?:Append|Sync)"
    r")\s*\([^;]*\)\s*;\s*$"
)

# raw-mutex: standard-library synchronization types; only the annotated
# wrappers in src/common/ may touch these directly.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

# callback-under-lock: a scoped lock guard declaration ...
GUARD_DECL_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard|std::unique_lock|std::scoped_lock"
    r"|std::shared_lock)\b[^;(]*\("
)
# ... and, while one is in scope, an invocation of something that looks
# like a user callback or a condition-variable notify.
CALLBACK_CALL_RE = re.compile(
    r"(?:\b(?:callback|cb|task)\s*\(|(?:\.|->)\s*fn\s*\("
    r"|(?:\.|->)\s*(?:NotifyOne|NotifyAll|notify_one|notify_all)\s*\()"
)

# Raw standard-library synchronization is confined to the annotated
# wrappers' home.
RAW_MUTEX_HOME = "src/common/"

# callback-under-lock applies to the layers that invoke user callbacks /
# notify waiters (the submit path and the runtimes beneath it).
CALLBACK_LOCK_SCOPE = ("src/core/", "src/txn/", "src/net/")

# layering: the architecture DAG, bottom (0) to top. An include edge may
# only point strictly downward across component boundaries. Components are
# src/ subdirectories except where LAYER_FILE_COMPONENT re-homes a file
# whose library sits elsewhere in the DAG than its directory.
LAYER_RANKS = {
    "common": 0,
    "db": 1,
    "metrics": 1,
    "sim": 1,
    "txn": 1,
    "msg": 2,
    "net": 3,
    "storage": 3,
    "replication": 4,
    "core": 5,
    "baselines": 6,
    "driver": 6,
    "check": 7,
}
# The workload driver lives in src/txn/ for historical reasons but is its
# own library (miniraid_driver) layered above core.
LAYER_FILE_COMPONENT = {
    "src/txn/driver.h": "driver",
    "src/txn/driver.cc": "driver",
}
LAYER_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z_0-9]+)/([^"]+)"')


def layer_component(rel):
    """Component name for a src/ file, or None if outside the ranked DAG."""
    if rel in LAYER_FILE_COMPONENT:
        return LAYER_FILE_COMPONENT[rel]
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_RANKS:
        return parts[1]
    return None


def find_repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write("miniraid_lint: cannot locate repo root (no src/)\n")
        sys.exit(2)
    return root


def relpath(path, root):
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def collect_sources(root, paths):
    files = []
    for path in paths:
        if not os.path.exists(path):
            sys.stderr.write(f"miniraid_lint: no such path: {path}\n")
            sys.exit(2)
        if os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc")):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith((".h", ".cc")):
            files.append(path)
    return sorted(set(files))


def suppressed(lines, index, rule):
    """True if line `index` (0-based) or the one above allows `rule`."""
    for i in (index, index - 1):
        if 0 <= i < len(lines):
            m = SUPPRESS_RE.search(lines[i])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def expected_guard(rel):
    # src/net/event_loop.h -> MINIRAID_NET_EVENT_LOOP_H_
    trimmed = rel[len("src/"):] if rel.startswith("src/") else rel
    stem = re.sub(r"[^A-Za-z0-9]", "_", trimmed[:-2])  # strip ".h"
    return "MINIRAID_" + stem.upper() + "_H_"


def lint_file(path, root, findings):
    rel = relpath(path, root)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        findings.append((rel, 0, "io", str(err)))
        return
    lines = text.splitlines()

    source_component = layer_component(rel)
    in_block_comment = False
    prev_code_tail = ";"  # code character ending the previous non-blank line
    brace_depth = 0      # callback-under-lock scope tracking
    guard_depths = []    # brace depth at each active scoped-guard decl
    for i, line in enumerate(lines):
        # Strip line comments and track /* */ blocks so commented-out code
        # and prose never trip the code rules.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        start = code.find("/*")
        if start >= 0 and "*/" not in code[start:]:
            in_block_comment = True
            code = code[:start]
        code = re.sub(r"/\*.*?\*/", "", code)
        code = code.split("//")[0]
        if not code.strip():
            continue

        include = LAYER_INCLUDE_RE.match(code)
        if include and source_component is not None:
            target = LAYER_FILE_COMPONENT.get(
                f"src/{include.group(1)}/{include.group(2)}",
                include.group(1))
            if (target in LAYER_RANKS
                    and target != source_component
                    and LAYER_RANKS[target] >= LAYER_RANKS[source_component]
                    and not suppressed(lines, i, "layering")):
                findings.append(
                    (rel, i + 1, "layering",
                     f"include of {target}/ (rank "
                     f"{LAYER_RANKS[target]}) from {source_component}/ "
                     f"(rank {LAYER_RANKS[source_component]}) points "
                     f"upward or sideways in the architecture DAG"))

        if (RAW_MUTEX_RE.search(code)
                and not rel.startswith(RAW_MUTEX_HOME)
                and not suppressed(lines, i, "raw-mutex")):
            findings.append((rel, i + 1, "raw-mutex",
                             "raw standard-library synchronization outside "
                             "src/common/; use the annotated Mutex / "
                             "MutexLock / CondVar wrappers (common/mutex.h) "
                             "so clang-tsa can check the lock discipline"))

        # callback-under-lock: walk the line's braces, guard declarations
        # and callback-ish calls in position order so `{ guard; } cb();` is
        # clean while `guard; cb();` inside one scope is flagged.
        if rel.startswith(CALLBACK_LOCK_SCOPE):
            events = [(m.start(), "open") for m in re.finditer(r"\{", code)]
            events += [(m.start(), "close") for m in re.finditer(r"\}", code)]
            events += [(m.start(), "guard")
                       for m in GUARD_DECL_RE.finditer(code)]
            events += [(m.start(), "call")
                       for m in CALLBACK_CALL_RE.finditer(code)]
            for _, kind in sorted(events):
                if kind == "open":
                    brace_depth += 1
                elif kind == "close":
                    brace_depth -= 1
                    while guard_depths and guard_depths[-1] > brace_depth:
                        guard_depths.pop()
                elif kind == "guard":
                    guard_depths.append(brace_depth)
                elif kind == "call" and guard_depths:
                    if not suppressed(lines, i, "callback-under-lock"):
                        findings.append(
                            (rel, i + 1, "callback-under-lock",
                             "callback / condvar notify invoked while a "
                             "scoped lock guard is in scope; release the "
                             "lock first (notify-after-unlock rule)"))

        # Only a statement *start* can discard a result: skip continuation
        # lines (previous line ended mid-expression, e.g. `=`, `(`, `,`, or
        # a macro wrapper like MINIRAID_RETURN_IF_ERROR).
        at_statement_start = prev_code_tail in ";}{"
        balanced = code.count("(") == code.count(")")
        if (at_statement_start and balanced and DISCARDED_RE.match(code)
                and not suppressed(lines, i, "discarded-status")):
            findings.append((rel, i + 1, "discarded-status",
                             "result of a Status/Result-returning call is "
                             "discarded; check it or cast to (void) with a "
                             "reason"))
        prev_code_tail = code.strip()[-1]

    if rel.endswith(".h") and rel.startswith("src/"):
        guard = expected_guard(rel)
        if (f"#ifndef {guard}" not in text or f"#define {guard}" not in text):
            if not suppressed(lines, 0, "header-guard"):
                findings.append((rel, 1, "header-guard",
                                 f"expected include guard {guard}"))


def check_headers(root, paths):
    """Every header must compile on its own (self-contained)."""
    headers = [f for f in collect_sources(root, paths) if f.endswith(".h")]
    failures = 0
    for header in headers:
        proc = subprocess.run(
            ["g++", "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             "-I", os.path.join(root, "src"), "-x", "c++", header],
            capture_output=True, text=True)
        if proc.returncode != 0:
            failures += 1
            print(f"NOT SELF-CONTAINED: {relpath(header, root)}")
            sys.stdout.write("\n".join(proc.stderr.splitlines()[:5]) + "\n")
    if failures == 0:
        print(f"all {len(headers)} headers self-contained")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--headers", action="store_true",
                        help="also check headers are self-contained")
    parser.add_argument("--headers-only", action="store_true",
                        help="only check headers are self-contained")
    args = parser.parse_args()

    root = find_repo_root()
    paths = args.paths or [os.path.join(root, "src")]

    failures = 0
    if not args.headers_only:
        findings = []
        for path in collect_sources(root, paths):
            lint_file(path, root, findings)
        for rel, line, rule, message in findings:
            print(f"{rel}:{line}: [{rule}] {message}")
        if not findings:
            print("miniraid_lint: clean")
        failures += len(findings)
    if args.headers or args.headers_only:
        failures += check_headers(root, paths)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

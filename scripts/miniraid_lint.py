#!/usr/bin/env python3
"""Repo-specific lint for mini-RAID: protocol-layer rules generic tools miss.

Rules (each can be suppressed per line or per preceding line with
`// miniraid-lint: allow(<rule>)`):

  fail-lock-mutation   Mutating FailLockTable calls (Set/Clear/MergeFrom on a
                       fail-lock receiver) are confined to src/replication/.
                       The fail-lock table is the paper's central correctness
                       structure; every mutation must stay inside the
                       replication layer where the protocol maintains it.

  blocking-call        No blocking syscalls or sleeps in code that runs on a
                       site's event-loop thread (everything outside
                       src/storage/ and src/net/tcp_transport.cc, which own
                       dedicated I/O threads). A blocked loop thread stalls
                       the whole site: timers, 2PC acks, recovery.

  discarded-status     A call to a known Status/Result-returning API used as
                       a bare statement. [[nodiscard]] catches this at
                       compile time; the lint also flags it in templates and
                       dead code the compiler never instantiates.

  header-guard         Every header uses the canonical include guard
                       MINIRAID_<PATH>_H_ derived from its path under src/.

Modes:
  (default)        run the text rules over src/ (or the given paths)
  --headers        also verify every header is self-contained (compiles
                   alone with g++ -fsyntax-only)
  --headers-only   only the self-contained-header check (what the old
                   scripts/check_headers.sh did)

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import subprocess
import sys

SUPPRESS_RE = re.compile(r"//\s*miniraid-lint:\s*allow\(([a-z\-, ]+)\)")

# fail-lock-mutation: a mutating method invoked on something that names the
# fail-lock table (member, local copy, or accessor result).
FAIL_LOCK_MUT_RE = re.compile(
    r"\bfail_locks?\w*\s*(?:\(\s*\))?\s*(?:\.|->)\s*(Set|Clear|MergeFrom)\s*\("
)

# blocking-call: sleeps and blocking socket/file syscalls that must never
# run on an event-loop thread.
BLOCKING_RE = re.compile(
    r"(std::this_thread::sleep_for|std::this_thread::sleep_until"
    r"|\busleep\s*\(|\bsleep\s*\(|::recv\s*\(|::send\s*\(|::accept\s*\("
    r"|::connect\s*\(|::poll\s*\(|::select\s*\(|::fsync\s*\(|\bsystem\s*\()"
)

# discarded-status: a bare-statement call (no assignment, return, cast, or
# macro wrapper) to an API known to return Status/Result. MergeFrom is only
# Status-returning on the protocol tables (DurationStats::MergeFrom is
# void), so it is constrained by receiver name.
DISCARDED_RE = re.compile(
    r"^\s*(?:"
    r"(?:\w+(?:\.|->))*(?:fail_locks?\w*|session\w*)(?:\.|->)MergeFrom"
    r"|(?:\w+(?:\.|->))+(?:CommitWrite|InstallCopy|DropCopy|RestoreImage)"
    r"|(?:\w+(?:\.|->))*wal\w*(?:\.|->)(?:Append|Sync)"
    r")\s*\([^;]*\)\s*;\s*$"
)

# Layers whose code runs on (or posts to) an event-loop thread. Dedicated
# I/O threads live in tcp_transport; the storage layer is explicitly a
# blocking durability layer driven from non-loop contexts.
BLOCKING_EXEMPT_DIRS = ("src/storage/",)
BLOCKING_EXEMPT_FILES = ("src/net/tcp_transport.cc",)

# fail-lock mutations are legal only here.
FAIL_LOCK_HOME = "src/replication/"


def find_repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write("miniraid_lint: cannot locate repo root (no src/)\n")
        sys.exit(2)
    return root


def relpath(path, root):
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def collect_sources(root, paths):
    files = []
    for path in paths:
        if not os.path.exists(path):
            sys.stderr.write(f"miniraid_lint: no such path: {path}\n")
            sys.exit(2)
        if os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc")):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith((".h", ".cc")):
            files.append(path)
    return sorted(set(files))


def suppressed(lines, index, rule):
    """True if line `index` (0-based) or the one above allows `rule`."""
    for i in (index, index - 1):
        if 0 <= i < len(lines):
            m = SUPPRESS_RE.search(lines[i])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def expected_guard(rel):
    # src/net/event_loop.h -> MINIRAID_NET_EVENT_LOOP_H_
    trimmed = rel[len("src/"):] if rel.startswith("src/") else rel
    stem = re.sub(r"[^A-Za-z0-9]", "_", trimmed[:-2])  # strip ".h"
    return "MINIRAID_" + stem.upper() + "_H_"


def lint_file(path, root, findings):
    rel = relpath(path, root)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        findings.append((rel, 0, "io", str(err)))
        return
    lines = text.splitlines()

    in_block_comment = False
    prev_code_tail = ";"  # code character ending the previous non-blank line
    for i, line in enumerate(lines):
        # Strip line comments and track /* */ blocks so commented-out code
        # and prose never trip the code rules.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        start = code.find("/*")
        if start >= 0 and "*/" not in code[start:]:
            in_block_comment = True
            code = code[:start]
        code = re.sub(r"/\*.*?\*/", "", code)
        code = code.split("//")[0]
        if not code.strip():
            continue

        if (FAIL_LOCK_MUT_RE.search(code)
                and not rel.startswith(FAIL_LOCK_HOME)
                and not suppressed(lines, i, "fail-lock-mutation")):
            findings.append((rel, i + 1, "fail-lock-mutation",
                             "fail-lock tables may only be mutated inside "
                             "src/replication/ (the protocol layer owns "
                             "fail-lock maintenance)"))

        if (BLOCKING_RE.search(code)
                and not rel.startswith(BLOCKING_EXEMPT_DIRS)
                and rel not in BLOCKING_EXEMPT_FILES
                and not suppressed(lines, i, "blocking-call")):
            findings.append((rel, i + 1, "blocking-call",
                             "blocking call in code that may run on an "
                             "event-loop thread; move it to a dedicated "
                             "thread or suppress with justification"))

        # Only a statement *start* can discard a result: skip continuation
        # lines (previous line ended mid-expression, e.g. `=`, `(`, `,`, or
        # a macro wrapper like MINIRAID_RETURN_IF_ERROR).
        at_statement_start = prev_code_tail in ";}{"
        balanced = code.count("(") == code.count(")")
        if (at_statement_start and balanced and DISCARDED_RE.match(code)
                and not suppressed(lines, i, "discarded-status")):
            findings.append((rel, i + 1, "discarded-status",
                             "result of a Status/Result-returning call is "
                             "discarded; check it or cast to (void) with a "
                             "reason"))
        prev_code_tail = code.strip()[-1]

    if rel.endswith(".h") and rel.startswith("src/"):
        guard = expected_guard(rel)
        if (f"#ifndef {guard}" not in text or f"#define {guard}" not in text):
            if not suppressed(lines, 0, "header-guard"):
                findings.append((rel, 1, "header-guard",
                                 f"expected include guard {guard}"))


def check_headers(root, paths):
    """Every header must compile on its own (self-contained)."""
    headers = [f for f in collect_sources(root, paths) if f.endswith(".h")]
    failures = 0
    for header in headers:
        proc = subprocess.run(
            ["g++", "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             "-I", os.path.join(root, "src"), "-x", "c++", header],
            capture_output=True, text=True)
        if proc.returncode != 0:
            failures += 1
            print(f"NOT SELF-CONTAINED: {relpath(header, root)}")
            sys.stdout.write("\n".join(proc.stderr.splitlines()[:5]) + "\n")
    if failures == 0:
        print(f"all {len(headers)} headers self-contained")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--headers", action="store_true",
                        help="also check headers are self-contained")
    parser.add_argument("--headers-only", action="store_true",
                        help="only check headers are self-contained")
    args = parser.parse_args()

    root = find_repo_root()
    paths = args.paths or [os.path.join(root, "src")]

    failures = 0
    if not args.headers_only:
        findings = []
        for path in collect_sources(root, paths):
            lint_file(path, root, findings)
        for rel, line, rule, message in findings:
            print(f"{rel}:{line}: [{rule}] {message}")
        if not findings:
            print("miniraid_lint: clean")
        failures += len(findings)
    if args.headers or args.headers_only:
        failures += check_headers(root, paths)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

// Failure/recovery demo: replays the paper's Experiment 2 interactively
// and renders the Figure-1 availability curve in the terminal, then shows
// the effect of the paper's proposed two-step recovery side by side.
//
//   ./build/examples/failure_recovery_demo [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiments.h"
#include "metrics/series.h"

using namespace miniraid;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  std::printf("mini-RAID failure & recovery demo (seed %llu)\n",
              (unsigned long long)seed);
  std::printf("2 sites, 50-item hot set, transactions of 1-5 operations, "
              "50/50 reads/writes.\n");
  std::printf("Site 0 crashes before txn 1; 100 txns run on site 1; site 0 "
              "then recovers.\n\n");

  Exp2Config config;
  config.scenario.seed = seed;
  const Exp2Result plain = RunExperiment2(config);

  Series curve{"fail-locked copies of site 0", {}, {}};
  for (const TxnRecord& rec : plain.scenario.txns) {
    curve.Add(double(rec.txn_no), double(rec.fail_locks_per_site[0]));
  }
  std::printf("%s\n", RenderAsciiChart({curve}, 70, 14, "transaction number",
                                       "stale copies")
                          .c_str());
  std::printf("peak staleness: %u of 50 copies; full recovery %u txns after "
              "restart; %u copier txns\n\n",
              plain.peak_fail_locks, plain.txns_to_full_recovery,
              plain.copier_txns);

  // Same scenario with two-step recovery (batch copiers, threshold 0.25).
  Exp2Config two_step = config;
  two_step.scenario.site.batch_copier_threshold = 0.25;
  two_step.scenario.site.batch_copier_chunk = 10;
  const Exp2Result batched = RunExperiment2(two_step);
  std::printf("with two-step recovery (threshold 0.25, the paper's §3.2 "
              "proposal):\n");
  std::printf("  full recovery after %u txns (vs %u), using %llu batch "
              "copier txns\n",
              batched.txns_to_full_recovery, plain.txns_to_full_recovery,
              (unsigned long long)batched.scenario.batch_copiers_total);

  const bool ok = plain.scenario.consistency.ok() &&
                  batched.scenario.consistency.ok();
  std::printf("\nreplica agreement in both runs: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

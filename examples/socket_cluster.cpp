// Real message passing: the same protocol engine on TCP sockets over
// localhost — "real transaction processing on real sites with real message
// passing" (paper §abstract), beyond the paper's single-process testbed.
// Each site runs its own event-loop thread and TCP transport; frames are
// length-prefixed encodings of the same wire messages the simulator uses.
//
//   ./build/examples/socket_cluster [base_port]

#include <cstdio>
#include <cstdlib>

#include "core/cluster.h"
#include "txn/workload.h"

using namespace miniraid;

int main(int argc, char** argv) {
  ClusterOptions options;
  options.backend = ClusterBackend::kTcp;
  options.n_sites = 3;
  options.db_size = 20;
  options.base_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;
  options.site.ack_timeout = Milliseconds(300);
  options.managing.client_timeout = Seconds(3);

  auto made = MakeCluster(options);
  if (!made.ok()) {
    std::fprintf(stderr, "failed to start cluster: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  auto& cluster = *made;
  std::printf("3 sites + managing site listening on 127.0.0.1 (TCP)\n");

  UniformWorkloadOptions wopts;
  wopts.db_size = 20;
  wopts.max_txn_size = 6;
  wopts.seed = 99;
  UniformWorkload workload(wopts);

  uint64_t committed = 0;
  for (int i = 0; i < 50; ++i) {
    const TxnResult reply =
        cluster->RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
    if (reply.outcome == TxnOutcome::kCommitted) ++committed;
  }
  std::printf("50 transactions over TCP: %llu committed\n",
              (unsigned long long)committed);

  // Crash site 2 and keep going; then bring it back.
  cluster->Fail(2);
  for (int i = 0; i < 20; ++i) {
    const TxnResult reply =
        cluster->RunTxn(workload.Next(), static_cast<SiteId>(i % 2));
    if (reply.outcome == TxnOutcome::kCommitted) ++committed;
  }
  const uint32_t stale = cluster->FailLockCountFor(2);
  std::printf("site 2 crashed; 20 more txns; %u of its copies now stale\n",
              stale);

  cluster->Recover(2);
  bool refreshed = false;
  for (int i = 0; i < 60 && !refreshed; ++i) {
    (void)cluster->RunTxn(workload.Next(), 2);
    refreshed = cluster->SnapshotSites()[2].fail_locks.CountForSite(2) == 0;
  }
  std::printf("site 2 recovered over TCP; fully refreshed: %s\n",
              refreshed ? "yes" : "not yet");

  // Verify all three databases agree item by item.
  const std::vector<SiteSnapshot> snapshots = cluster->SnapshotSites();
  bool agree = true;
  for (ItemId item = 0; item < 20; ++item) {
    agree &= snapshots[0].db[item] == snapshots[1].db[item] &&
             snapshots[1].db[item] == snapshots[2].db[item];
  }
  std::printf("replica agreement over real sockets: %s\n",
              agree ? "yes" : "NO");
  return agree ? 0 : 1;
}

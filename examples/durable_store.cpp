// The durability substrate under the paper's retain-state crash model: a
// replica store that survives real process crashes via a checksummed
// snapshot plus a write-ahead log. The paper kept copies in process memory
// (assumption 3) and simulated failures as inactivity; DurableDatabase is
// what a production site puts underneath so that a *real* restart behaves
// like the paper's model — the site comes back with its pre-crash copies
// and only the updates it missed need fail-lock-driven refresh.
//
//   ./build/examples/durable_store [dir]

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "storage/durable_database.h"

using namespace miniraid;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "miniraid_durable_demo")
                     .string();
  std::filesystem::create_directories(dir);

  DurableDatabase::Options options;
  options.dir = dir;
  options.auto_checkpoint_bytes = 4096;

  constexpr uint32_t kItems = 50;
  {
    auto db = DurableDatabase::Open(options, kItems);
    if (!db.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    std::printf("opened %s: replayed %llu log records, wal=%llu bytes\n",
                dir.c_str(), (unsigned long long)(*db)->replayed_records(),
                (unsigned long long)(*db)->wal_bytes());

    // Continue the transaction-id sequence past anything already stored,
    // so re-running the demo on the same directory keeps versions monotone.
    Rng rng(1);
    TxnId txn = 0;
    for (ItemId item = 0; item < kItems; ++item) {
      if ((*db)->Holds(item)) {
        txn = std::max<TxnId>(txn, (*db)->Read(item)->version);
      }
    }
    for (int i = 0; i < 200; ++i) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(kItems));
      ++txn;
      (void)(*db)->CommitWrite(item, Value(txn * 10), txn);
    }
    std::printf("committed 200 writes; wal=%llu bytes (auto-checkpoint at "
                "4096)\n",
                (unsigned long long)(*db)->wal_bytes());
    // No clean shutdown: the destructor is the "crash".
  }

  auto db = DurableDatabase::Open(options, kItems);
  if (!db.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  uint32_t held = 0;
  Version max_version = 0;
  for (ItemId item = 0; item < kItems; ++item) {
    if (!(*db)->Holds(item)) continue;
    ++held;
    max_version = std::max(max_version, (*db)->Read(item)->version);
  }
  std::printf("after crash+reopen: %u items held, newest version %llu, "
              "%llu records replayed\n",
              held, (unsigned long long)max_version,
              (unsigned long long)(*db)->replayed_records());
  std::printf("(a mini-RAID site restarting on this store rejoins via "
              "control transaction type 1;\n fail-locks then cover exactly "
              "the updates committed while it was down)\n");
  (void)(*db)->Checkpoint();
  return 0;
}

// Banking example: the ET1/DebitCredit workload (the Tandem benchmark the
// paper planned to adopt, [Anon85]) running against a replicated 4-site
// cluster that suffers a failure mid-run. Shows sustained transaction
// processing through failure and recovery, and verifies the bank's books
// with the replica-agreement oracle.
//
//   ./build/examples/banking_et1

#include <cstdio>

#include "core/cluster.h"
#include "txn/workload.h"

using namespace miniraid;

int main() {
  Et1WorkloadOptions wopts;
  wopts.accounts = 40;
  wopts.tellers = 6;
  wopts.branches = 2;
  wopts.history_slots = 2;
  wopts.seed = 2026;
  Et1Workload workload(wopts);

  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = workload.db_size();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  std::printf("ET1/DebitCredit on mini-RAID: %u accounts, %u tellers, %u "
              "branches, 4 sites\n\n",
              wopts.accounts, wopts.tellers, wopts.branches);

  uint64_t committed = 0, aborted = 0;
  auto run = [&](uint32_t count, SiteId coordinator) {
    for (uint32_t i = 0; i < count; ++i) {
      const TxnResult reply = cluster.RunTxn(workload.Next(), coordinator);
      (reply.outcome == TxnOutcome::kCommitted ? committed : aborted) += 1;
    }
  };

  run(100, 0);
  std::printf("phase 1: 100 debit-credit txns, all sites up     -> %llu "
              "committed\n",
              (unsigned long long)committed);

  cluster.Fail(3);
  run(100, 1);
  std::printf("phase 2: site 3 crashed, 100 txns on site 1      -> %llu "
              "committed, %llu aborted (failure detection)\n",
              (unsigned long long)committed, (unsigned long long)aborted);
  std::printf("         stale copies on site 3: %u of %u\n",
              cluster.FailLockCountFor(3), workload.db_size());

  cluster.Recover(3);
  run(100, 3);  // route to the recovering site: copiers refresh on demand
  std::printf("phase 3: site 3 recovered, 100 txns routed to it -> %llu "
              "committed, %u copier txns at site 3\n",
              (unsigned long long)committed,
              static_cast<unsigned>(
                  cluster.site(3).counters().copier_transactions));
  std::printf("         stale copies on site 3: %u\n",
              cluster.FailLockCountFor(3));

  const Status books = cluster.CheckReplicaAgreement();
  std::printf("\nledger agreement across all four sites: %s\n",
              books.ToString().c_str());
  std::printf("totals: %llu committed, %llu aborted\n",
              (unsigned long long)committed, (unsigned long long)aborted);
  return books.ok() ? 0 : 1;
}

// Partial replication + control transaction type 3 (the paper's §3.2
// extension): items live on 2 of 3 sites; when a failure leaves an item
// with a single fresh copy, its holder creates a backup copy on a site
// that had none, keeping the data available through a second failure.
//
//   ./build/examples/partial_replication

#include <cstdio>

#include "core/cluster.h"
#include "txn/workload.h"

using namespace miniraid;

int main() {
  constexpr uint32_t kItems = 12;

  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = kItems;
  options.site.enable_type3 = true;
  options.site.placement.resize(3);
  for (ItemId item = 0; item < kItems; ++item) {
    options.site.placement[item % 3].push_back(item);
    options.site.placement[(item + 1) % 3].push_back(item);
  }
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  std::printf("partial replication: %u items, factor 2 over 3 sites, "
              "type-3 backups ON\n\n",
              kItems);
  for (SiteId s = 0; s < 3; ++s) {
    std::printf("site %u holds %u items\n", s,
                cluster.site(s).db().held_count());
  }

  UniformWorkloadOptions wopts;
  wopts.db_size = kItems;
  wopts.max_txn_size = 4;
  wopts.seed = 12;
  UniformWorkload workload(wopts);

  for (int i = 0; i < 20; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }

  // Site 0 fails: items placed on {0,1} drop to a single fresh copy on
  // site 1. Once the failure is detected, site 1 runs control type 3 and
  // backs them up onto site 2.
  cluster.Fail(0);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(1 + i % 2));
  }
  std::printf("\nsite 0 failed -> site 1 created %llu backup copies on "
              "site 2 (control type 3)\n",
              (unsigned long long)
                  cluster.site(2).counters().control3_copies_installed);
  std::printf("site 2 now holds %u items\n",
              cluster.site(2).db().held_count());

  // Second failure: site 1. Site 2 alone can still serve everything.
  cluster.Fail(1);
  uint64_t committed = 0, unavailable = 0;
  for (int i = 0; i < 30; ++i) {
    const TxnResult reply = cluster.RunTxn(workload.Next(), 2);
    if (reply.outcome == TxnOutcome::kCommitted) {
      ++committed;
    } else if (reply.outcome == TxnOutcome::kAbortedCopierFailed) {
      ++unavailable;
    }
  }
  std::printf("\nsite 1 also failed; 30 txns at the survivor: %llu "
              "committed, %llu data-unavailable\n",
              (unsigned long long)committed,
              (unsigned long long)unavailable);
  std::printf("(without type 3 every read of a {site0,site1} item would "
              "abort — see\n bench_ablation_type3_partial for the "
              "side-by-side numbers)\n");
  return unavailable == 0 ? 0 : 1;
}

// Quickstart: stand up a 3-site mini-RAID cluster under the deterministic
// simulator, commit a few transactions, crash a site, watch fail-locks
// accumulate, recover it, and watch the copies converge again.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/cluster.h"
#include "txn/transaction.h"

using namespace miniraid;

namespace {

void PrintState(const SimCluster& cluster, const char* heading) {
  std::printf("--- %s\n", heading);
  for (SiteId s = 0; s < cluster.n_sites(); ++s) {
    const Site& site = cluster.site(s);
    std::printf("site %u: %-4s session=%llu own-fail-locks=%u vector=%s\n",
                s, site.is_up() ? "up" : "down",
                (unsigned long long)site.session_vector().session(s),
                site.OwnFailLockCount(),
                site.session_vector().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A cluster is: N database sites + a managing site, a transport, and a
  // runtime. ClusterOptions carries every protocol knob (cost model,
  // timeouts, two-step recovery, placement, ...); defaults are the paper's.
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 10;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  // Transactions are lists of read/write operations, submitted through the
  // managing site to a coordinator of your choice.
  TxnSpec txn;
  txn.id = 1;
  txn.ops = {Operation::Write(0, 100), Operation::Write(7, 700)};
  TxnResult reply = cluster.RunTxn(txn, /*coordinator=*/0);
  std::printf("txn 1 (write items 0 and 7): %s\n",
              std::string(TxnOutcomeName(reply.outcome)).c_str());
  txn.id = 99;
  txn.ops = {Operation::Read(0)};
  reply = cluster.RunTxn(txn, /*coordinator=*/1);
  std::printf("read-back at site 1: item 0 = %lld\n",
              (long long)reply.reads.at(0).value);
  PrintState(cluster, "after txn 1 (all sites hold value 100 / 700)");

  // Crash site 2. The next transaction's coordinator detects the silence,
  // aborts, and announces the failure (control transaction type 2); from
  // then on ROWAA simply ignores site 2 and sets fail-locks on its behalf.
  cluster.Fail(2);
  txn.id = 2;
  txn.ops = {Operation::Write(0, 101)};
  reply = cluster.RunTxn(txn, 0);
  std::printf("txn 2 (failure not yet detected): %s\n",
              std::string(TxnOutcomeName(reply.outcome)).c_str());
  txn.id = 3;
  txn.ops = {Operation::Write(0, 102), Operation::Write(3, 300)};
  reply = cluster.RunTxn(txn, 0);
  std::printf("txn 3 (failure known, ROWAA proceeds): %s\n",
              std::string(TxnOutcomeName(reply.outcome)).c_str());
  PrintState(cluster, "site 2 down, items 0 and 3 fail-locked for it");

  // Recover site 2: control transaction type 1 collects the session vector
  // and fail-locks from the operational sites, so site 2 knows exactly
  // which of its copies are stale — everything else serves immediately.
  cluster.Recover(2);
  PrintState(cluster, "site 2 recovered (up, but 2 copies still stale)");

  // A read of a stale copy at site 2 triggers a copier transaction: fetch
  // the fresh copy, install it, clear the fail-lock everywhere.
  txn.id = 4;
  txn.ops = {Operation::Read(0), Operation::Read(3)};
  reply = cluster.RunTxn(txn, /*coordinator=*/2);
  std::printf("txn 4 at recovering site: %s, copier txns=%u, item 0=%lld, "
              "item 3=%lld\n",
              std::string(TxnOutcomeName(reply.outcome)).c_str(),
              reply.copier_count, (long long)reply.reads.at(0).value,
              (long long)reply.reads.at(1).value);
  PrintState(cluster, "after the copier transactions");

  const Status consistency = cluster.CheckReplicaAgreement();
  std::printf("replica agreement: %s\n", consistency.ToString().c_str());
  return consistency.ok() ? 0 : 1;
}

// The paper's managing site, interactively: "We implemented a managing
// site to provide interactive control of system actions. It was used to
// cause sites to fail and recover and to initiate a database transaction
// to a site" (§1.2). This REPL drives a simulated cluster with the same
// commands; system parameters (database size, number of sites, maximum
// transaction size) are set on the command line, as in the paper.
//
//   ./build/examples/interactive_managing_site [n_sites] [db_size] [max_txn]
//
// Commands:
//   run <n> [site]     submit n random transactions (to `site`, or any up)
//   txn <site> <ops>   submit an explicit transaction, ops like r4 w7
//   fail <site>        crash a site
//   recover <site>     recover a site (control transaction type 1)
//   state              show per-site status, sessions, and fail-locks
//   stats              show counters (commits, aborts, copiers, ...)
//   check              run the replica-agreement oracle
//   help / quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "core/cluster.h"
#include "txn/parse.h"
#include "txn/workload.h"

using namespace miniraid;

namespace {

void PrintState(SimCluster& cluster) {
  for (SiteId s = 0; s < cluster.n_sites(); ++s) {
    const Site& site = cluster.site(s);
    std::printf(
        "  site %u: %-11s session=%llu stale-copies=%u vector=%s\n", s,
        site.is_up()
            ? (site.InRecoveryPeriod() ? "recovering" : "up")
            : "down",
        (unsigned long long)site.session_vector().session(s),
        site.OwnFailLockCount(), site.session_vector().ToString().c_str());
  }
}

void PrintStats(SimCluster& cluster) {
  std::printf("  %-6s %9s %9s %8s %9s %9s %7s\n", "site", "coord'd",
              "committed", "aborted", "copiers", "locks set", "cleared");
  for (SiteId s = 0; s < cluster.n_sites(); ++s) {
    const SiteCounters& c = cluster.site(s).counters();
    std::printf("  %-6u %9llu %9llu %8llu %9llu %9llu %7llu\n", s,
                (unsigned long long)c.txns_coordinated,
                (unsigned long long)c.txns_committed,
                (unsigned long long)(c.txns_aborted_copier +
                                     c.txns_aborted_participant),
                (unsigned long long)c.copier_transactions,
                (unsigned long long)c.fail_locks_set,
                (unsigned long long)c.fail_locks_cleared);
  }
  std::printf("  managing site: %llu submitted, %llu committed, %llu "
              "aborted, %llu unreachable\n",
              (unsigned long long)cluster.managing().submitted(),
              (unsigned long long)cluster.managing().committed(),
              (unsigned long long)cluster.managing().aborted(),
              (unsigned long long)cluster.managing().unreachable());
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t n_sites = argc > 1 ? std::atoi(argv[1]) : 4;
  const uint32_t db_size = argc > 2 ? std::atoi(argv[2]) : 50;
  const uint32_t max_txn = argc > 3 ? std::atoi(argv[3]) : 10;

  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = db_size;
  wopts.max_txn_size = max_txn;
  wopts.seed = 42;
  UniformWorkload workload(wopts);
  Rng rng(42);
  TxnId manual_id = 1000000;  // manual txns above the generator's range

  std::printf("mini-RAID managing site. %u sites, %u items, max txn size "
              "%u. 'help' lists commands.\n",
              n_sites, db_size, max_txn);

  std::string line;
  while (std::printf("raid> ") && std::fflush(stdout) == 0 &&
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "  run <n> [site] | txn <site> <r#|w#...> | fail <site> | "
          "recover <site>\n  state | stats | check | quit\n");
    } else if (cmd == "run") {
      uint32_t count = 0;
      long fixed = -1;
      in >> count;
      in >> fixed;
      uint64_t committed = 0;
      for (uint32_t i = 0; i < count; ++i) {
        const std::vector<SiteId> up = cluster.UpSites();
        if (up.empty()) {
          std::printf("  no operational site\n");
          break;
        }
        const SiteId coordinator =
            (fixed >= 0 && fixed < long(n_sites))
                ? static_cast<SiteId>(fixed)
                : up[rng.NextBounded(up.size())];
        const TxnResult reply = cluster.RunTxn(workload.Next(),
                                                  coordinator);
        committed += reply.outcome == TxnOutcome::kCommitted;
      }
      std::printf("  %llu/%u committed\n", (unsigned long long)committed,
                  count);
    } else if (cmd == "txn") {
      long site = -1;
      in >> site;
      std::string ops_text;
      std::getline(in, ops_text);
      const Result<TxnSpec> txn = ParseTxnOps(manual_id, ops_text, db_size);
      if (site < 0 || site >= long(n_sites) || !txn.ok()) {
        std::printf("  usage: txn <site> r4 w7[=42] ...%s%s\n",
                    txn.ok() ? "" : " — ",
                    txn.ok() ? "" : txn.status().ToString().c_str());
        continue;
      }
      ++manual_id;
      const TxnResult reply =
          cluster.RunTxn(*txn, static_cast<SiteId>(site));
      std::printf("  %s (copiers=%u)",
                  std::string(TxnOutcomeName(reply.outcome)).c_str(),
                  reply.copier_count);
      for (const ItemCopy& read : reply.reads) {
        std::printf("  item%u=%lld", read.item, (long long)read.value);
      }
      std::printf("\n");
    } else if (cmd == "fail" || cmd == "recover") {
      long site = -1;
      in >> site;
      if (site < 0 || site >= long(n_sites)) {
        std::printf("  usage: %s <site>\n", cmd.c_str());
        continue;
      }
      if (cmd == "fail") {
        cluster.Fail(static_cast<SiteId>(site));
      } else {
        cluster.Recover(static_cast<SiteId>(site));
      }
      PrintState(cluster);
    } else if (cmd == "state") {
      PrintState(cluster);
    } else if (cmd == "stats") {
      PrintStats(cluster);
    } else if (cmd == "check") {
      const Status status = cluster.CheckReplicaAgreement();
      std::printf("  replica agreement: %s\n", status.ToString().c_str());
    } else {
      std::printf("  unknown command '%s' ('help' lists commands)\n",
                  cmd.c_str());
    }
  }
  return 0;
}

#ifndef MINIRAID_CORE_ANALYSIS_H_
#define MINIRAID_CORE_ANALYSIS_H_

#include <cstdint>

namespace miniraid {

/// Closed-form predictions for the paper's experiments, used by the tests
/// to cross-check the simulator and by EXPERIMENTS.md to explain the
/// measured shapes. All formulas assume the paper's workload model:
/// transactions of uniformly 1..max_txn_size operations, each operation
/// independently a write with probability `write_fraction`, targeting a
/// uniformly random item among `db_size`.
namespace analysis {

/// Expected operations per transaction: (1 + max) / 2.
double ExpectedOpsPerTxn(uint32_t max_txn_size);

/// Expected write operations per transaction.
double ExpectedWritesPerTxn(uint32_t max_txn_size, double write_fraction);

/// Expected number of distinct items fail-locked for a down site after
/// `txns` transactions (occupancy / coupon collector with w writes per
/// transaction): db_size * (1 - (1 - 1/db_size)^(txns * w)).
double ExpectedFailLocksAfter(uint32_t db_size, uint32_t max_txn_size,
                              double write_fraction, uint32_t txns);

/// Expected transactions to clear `locked` specific fail-locks through
/// write-driven refresh alone: sum_{k=1..locked} db_size/k writes, divided
/// by writes per transaction. (The paper's Figure-1 tail: the last 10
/// locks take ~an order of magnitude longer than the first 10.)
double ExpectedTxnsToClear(uint32_t db_size, uint32_t max_txn_size,
                           double write_fraction, uint32_t locked);

/// Expected messages for one committed transaction coordinated at an
/// operational site with `participants` operational peers and no copier
/// activity: prepare + ack + commit + ack per participant, plus the client
/// request and reply.
uint64_t MessagesPerCommit(uint32_t participants);

/// Probability that a transaction demands at least one copier at a
/// coordinator with `locked` of `db_size` copies stale: the chance some
/// read hits a stale item, averaged over transaction sizes. Reads per
/// transaction are binomial; this uses the independent-approximation
/// 1 - E[(1 - locked/db_size)^reads].
double CopierDemandProbability(uint32_t db_size, uint32_t max_txn_size,
                               double write_fraction, uint32_t locked);

}  // namespace analysis
}  // namespace miniraid

#endif  // MINIRAID_CORE_ANALYSIS_H_

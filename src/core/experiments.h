#ifndef MINIRAID_CORE_EXPERIMENTS_H_
#define MINIRAID_CORE_EXPERIMENTS_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/cluster.h"
#include "core/coordinator_policy.h"
#include "txn/workload.h"

namespace miniraid {

// ---------------------------------------------------------------------------
// Scenario runner: the machinery behind Experiments 2 and 3 (and the
// ablations). A scenario is a script of fail / recover / run-transactions
// steps executed against a SimCluster, with per-transaction state sampling.
// ---------------------------------------------------------------------------

struct ScenarioConfig {
  uint32_t n_sites = 2;
  uint32_t db_size = 50;           // paper: 50 frequently referenced items
  uint32_t max_txn_size = 5;       // paper experiments 2-3: 5
  double write_fraction = 0.5;     // paper: reads and writes equally likely
  double zipf_theta = 0.0;         // 0 = the paper's uniform hot set
  uint64_t seed = 1;
  SiteOptions site;                // protocol knobs (threshold, type 3, ...)
  SimOptions sim;
  SimTransportOptions transport;

  /// Overrides the transaction stream (default: the paper's uniform
  /// workload built from the fields above). The factory owns nothing and
  /// is invoked once per scenario; db_size must match the generator's.
  std::function<std::unique_ptr<WorkloadGenerator>()> workload_factory;
};

struct ScenarioStep {
  enum class Kind {
    kFail,               // fail `site`
    kRecover,            // recover `site`
    kRunTxns,            // run `count` transactions
    kRunUntilRecovered,  // run transactions until no fail-locks remain
  };

  Kind kind = Kind::kRunTxns;
  SiteId site = 0;
  uint32_t count = 0;
  /// Coordinator policy for this step's transactions (default: the
  /// scenario-wide policy).
  std::optional<CoordinatorPolicy> policy;

  static ScenarioStep Fail(SiteId site) {
    return ScenarioStep{Kind::kFail, site, 0, std::nullopt};
  }
  static ScenarioStep Recover(SiteId site) {
    return ScenarioStep{Kind::kRecover, site, 0, std::nullopt};
  }
  static ScenarioStep RunTxns(
      uint32_t count, std::optional<CoordinatorPolicy> policy = std::nullopt) {
    return ScenarioStep{Kind::kRunTxns, 0, count, std::move(policy)};
  }
  static ScenarioStep RunUntilRecovered(
      uint32_t cap, std::optional<CoordinatorPolicy> policy = std::nullopt) {
    return ScenarioStep{Kind::kRunUntilRecovered, 0, cap, std::move(policy)};
  }
};

/// One row of the per-transaction trace (the data behind Figures 1-3).
struct TxnRecord {
  uint64_t txn_no = 0;  // sequential from 1, as in the paper
  SiteId coordinator = kInvalidSite;
  TxnOutcome outcome = TxnOutcome::kCommitted;
  uint32_t copier_count = 0;
  /// Fail-locked-copy count per site after this transaction (the
  /// authoritative operational view).
  std::vector<uint32_t> fail_locks_per_site;
};

struct ScenarioResult {
  std::vector<TxnRecord> txns;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Aborts because no operational site held an up-to-date copy — the
  /// paper's "data unavailable" cause (Figure 2's 13 aborts).
  uint64_t aborted_data_unavailable = 0;
  /// Aborts because a not-yet-detected failed participant never acked
  /// phase one (the transaction that *detects* each failure).
  uint64_t aborted_participant_failure = 0;
  uint64_t unreachable = 0;
  uint64_t copier_txns_total = 0;       // on-demand copiers (from replies)
  uint64_t batch_copiers_total = 0;     // step-two proactive copiers
  /// Replica-agreement check at the end of the scenario.
  Status consistency;
  /// Per-site data-unavailability abort counts among transactions this
  /// site coordinated.
  std::vector<uint64_t> aborts_by_coordinator;
};

/// Runs `steps` against a fresh SimCluster. `default_policy` picks
/// coordinators for steps without their own policy.
ScenarioResult RunScenario(const ScenarioConfig& config,
                           const std::vector<ScenarioStep>& steps,
                           CoordinatorPolicy default_policy);

// ---------------------------------------------------------------------------
// Experiment 2 (Figure 1): single-site failure and recovery, 2 sites.
// ---------------------------------------------------------------------------

struct Exp2Config {
  ScenarioConfig scenario;       // defaults match the paper (2 sites, 50/5)
  uint32_t down_txns = 100;      // transactions processed while site 0 down
  uint32_t recovery_cap = 2000;  // safety cap for the recovery phase
  /// Weight of the recovering site in coordinator choice during recovery.
  /// The paper's trace (2 copier transactions in ~160 transactions)
  /// implies transactions kept flowing to the operational site; see
  /// DESIGN.md.
  double recovering_site_weight = 0.02;
};

struct Exp2Result {
  ScenarioResult scenario;
  uint32_t peak_fail_locks = 0;        // paper: >90% of 50 after 100 txns
  uint32_t txns_to_full_recovery = 0;  // paper: ~160
  uint32_t copier_txns = 0;            // paper: 2
  /// Transactions to clear the first / last 10 fail-locks of the recovery
  /// (paper: 6 and 106).
  uint32_t first10_txns = 0;
  uint32_t last10_txns = 0;
};

Exp2Result RunExperiment2(const Exp2Config& config);

// ---------------------------------------------------------------------------
// Experiment 3: consistency of replicated copies (Figures 2 and 3).
// ---------------------------------------------------------------------------

struct Exp3Result {
  ScenarioResult scenario;
  /// Peak fail-lock count observed per site.
  std::vector<uint32_t> peak_per_site;
};

/// Scenario 1 (Figure 2): 2 sites, alternating failures; the paper observed
/// 13 aborts on site 0 while it was the only operational site.
Exp3Result RunExperiment3Scenario1(const ScenarioConfig& config);

/// Scenario 2 (Figure 3): 4 sites failing singly in succession; no aborts.
Exp3Result RunExperiment3Scenario2(const ScenarioConfig& config);

// ---------------------------------------------------------------------------
// Experiment 1: overhead measurements (virtual-time compositions of the
// calibrated cost model; see EXPERIMENTS.md).
// ---------------------------------------------------------------------------

struct Exp1Config {
  uint32_t n_sites = 4;        // paper experiment-1 configuration
  uint32_t db_size = 50;
  uint32_t max_txn_size = 10;
  uint64_t seed = 1;
  uint32_t warmup_txns = 10;
  uint32_t measured_txns = 200;
  CostModel costs = CostModel::PaperCalibrated();
  Duration message_latency = Milliseconds(9);
  bool shared_cpu = true;      // the paper's single processor
};

/// §2.2.1: transaction times with and without fail-lock maintenance.
struct Exp1FailLockOverheadResult {
  double coord_without_ms = 0;  // paper: 176
  double coord_with_ms = 0;     // paper: 186
  double part_without_ms = 0;   // paper: 90
  double part_with_ms = 0;      // paper: 97
};
Exp1FailLockOverheadResult RunExp1FailLockOverhead(const Exp1Config& config);

/// §2.2.2: control transaction times.
struct Exp1ControlResult {
  double type1_recovering_ms = 0;   // paper: 190
  double type1_operational_ms = 0;  // paper: 50 (incl. the send)
  double type2_ms = 0;              // paper: 68 (send + remote update)
};
Exp1ControlResult RunExp1Control(const Exp1Config& config);

/// §2.2.3: copier transaction overheads.
struct Exp1CopierResult {
  double txn_with_copier_ms = 0;   // paper: 270
  double txn_plain_ms = 0;         // paper: 186 (the +45% baseline)
  double copy_serve_ms = 0;        // paper: 25 (incl. the send)
  double clear_locks_ms = 0;       // paper: 20 (incl. the send)
  double increase_pct = 0;         // paper: ~45%
};
Exp1CopierResult RunExp1Copier(const Exp1Config& config);

}  // namespace miniraid

#endif  // MINIRAID_CORE_EXPERIMENTS_H_

#ifndef MINIRAID_CORE_CLUSTER_H_
#define MINIRAID_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <vector>

#include "core/cluster_api.h"
#include "core/invariants.h"
#include "core/managing_site.h"
#include "core/submit_window.h"
#include "net/event_loop.h"
#include "net/inproc_transport.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "replication/site.h"
#include "sim/sim_runtime.h"

namespace miniraid {

/// A cluster under the deterministic simulator: N database sites plus the
/// managing site, wired through SimTransport. This is the substrate of all
/// experiment reproductions — fast, virtual-time, bit-for-bit repeatable.
///
/// Implements the unified Cluster interface (see core/cluster_api.h); the
/// members below it are simulator extras (direct site access, virtual-time
/// control) that interface-level code must not depend on.
///
/// Deliberately carries no MR_RUNS_ON annotations: the simulator collapses
/// every execution context onto one thread (client code, managing site and
/// all sites run interleaved on the caller), so no single context name in
/// the vocabulary is true of its methods. miniraid-analyze checks it only
/// through the annotated Cluster base contract.
class SimCluster : public Cluster {
 public:
  ~SimCluster() override;

  // -- Cluster interface ----------------------------------------------------
  using Cluster::SubmitTxn;
  void SubmitTxn(const TxnSpec& txn, SiteId coordinator,
                 ReplyCallback callback) override;

  /// Submits `txn` to `coordinator` and runs the simulation to quiescence;
  /// returns the reply (synthesized kCoordinatorUnreachable on timeout).
  TxnResult RunTxn(const TxnSpec& txn, SiteId coordinator) override;

  /// Fails / recovers a site through the managing site's control channel
  /// and runs to quiescence.
  void Fail(SiteId site) override;
  void Recover(SiteId site) override;

  std::vector<SiteId> UpSites() const override;
  std::vector<SiteSnapshot> SnapshotSites() const override;
  uint32_t FailLockCountFor(SiteId target) const override;
  ClusterStats Stats() const override;

  TimePoint Now() const override { return sim_.now(); }
  void Post(std::function<void()> fn) override;
  void ScheduleAfter(Duration delay, std::function<void()> fn) override;
  bool Drive(const std::function<bool()>& done,
             Duration timeout = Seconds(60)) override;
  bool WaitUntil(SiteId site, const std::function<bool(const Site&)>& pred,
                 Duration timeout = Seconds(10)) override;

  // -- simulator extras -----------------------------------------------------
  SimRuntime& runtime() { return sim_; }
  SimTransport& transport() { return *transport_; }
  uint64_t messages_sent() const { return transport_->messages_sent(); }
  ManagingSite& managing() { return *managing_; }
  Site& site(SiteId id) { return *sites_.at(id); }
  const Site& site(SiteId id) const { return *sites_.at(id); }

  void RunUntilIdle() { sim_.RunUntilIdle(); }

 protected:
  void AwaitTxn(internal::TxnWaitState& state) override;

 private:
  /// Construction goes through MakeSimCluster / MakeCluster only, so every
  /// cluster in the tree is built (and, for the real backends, started) the
  /// same way.
  explicit SimCluster(const ClusterOptions& options);
  friend std::unique_ptr<SimCluster> MakeSimCluster(
      const ClusterOptions& options);

  /// MR_CHECK-fails on any invariant violation (check_invariants mode).
  void EnforceInvariants();

  SimRuntime sim_;
  std::unique_ptr<SimTransport> transport_;
  /// Per-endpoint reliable channels (sites + managing), in id order;
  /// empty unless options.reliable.enabled. Each fronts the shared
  /// SimTransport for its endpoint.
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ManagingSite> managing_;
  std::unique_ptr<SubmitWindow> window_;
};

/// A cluster on real threads with real message passing: one EventLoop per
/// site, in-process queues or TCP sockets on localhost. Used to validate
/// that the protocol behaves identically outside the simulator and to
/// measure real relative overheads.
class RealCluster : public Cluster {
 public:
  ~RealCluster() override;

  /// Binds sockets / finishes wiring. Must be called before traffic.
  /// (MakeCluster does this for you.)
  MR_RUNS_ON(client) Status Start();

  /// Stops all loops and transports. Idempotent; the destructor calls it.
  MR_RUNS_ON(client) void Stop();

  // -- Cluster interface ----------------------------------------------------
  using Cluster::SubmitTxn;
  MR_RUNS_ON(client)
  void SubmitTxn(const TxnSpec& txn, SiteId coordinator,
                 ReplyCallback callback) override;

  MR_RUNS_ON(client) void Fail(SiteId site) override;
  MR_RUNS_ON(client) void Recover(SiteId site) override;

  MR_RUNS_ON(client) std::vector<SiteId> UpSites() const override;
  MR_RUNS_ON(client) std::vector<SiteSnapshot> SnapshotSites() const override;
  MR_RUNS_ON(client) ClusterStats Stats() const override;

  MR_RUNS_ON(any) TimePoint Now() const override { return clock_.Now(); }
  MR_RUNS_ON(any) void Post(std::function<void()> fn) override;
  MR_RUNS_ON(any)
  void ScheduleAfter(Duration delay, std::function<void()> fn) override;
  MR_RUNS_ON(client)
  bool Drive(const std::function<bool()>& done,
             Duration timeout = Seconds(60)) override;
  MR_RUNS_ON(client)
  bool WaitUntil(SiteId site, const std::function<bool(const Site&)>& pred,
                 Duration timeout = Seconds(10)) override;

  // -- real-backend extras --------------------------------------------------
  /// Runs `fn(site)` on the site's loop thread and waits (all Site access
  /// must happen there).
  MR_RUNS_ON(client)
  void Inspect(SiteId site, const std::function<void(Site&)>& fn) const;

 protected:
  MR_RUNS_ON(client) void AwaitTxn(internal::TxnWaitState& state) override;

 private:
  /// Construction goes through MakeCluster only: a RealCluster is unusable
  /// until Start(), and the factory is what guarantees Start() ran.
  explicit RealCluster(const ClusterOptions& options);
  friend Result<std::unique_ptr<Cluster>> MakeCluster(
      const ClusterOptions& options);

  SteadyClock clock_;
  bool started_ = false;
  bool stopped_ = false;

  /// Per site + managing. The vector is populated in Start() and cleared in
  /// Stop(), both on the owning (client) thread while no site thread is
  /// running; steady-state cross-context use only reads through the stable
  /// unique_ptrs (EventLoop itself is internally synchronized).
  std::vector<std::unique_ptr<EventLoop>> loops_ MR_CONTEXT_CONFINED(client);
  std::vector<std::unique_ptr<ThreadSiteRuntime>> runtimes_;
  std::unique_ptr<InProcTransport> inproc_;
  std::vector<std::unique_ptr<TcpTransport>> tcp_;  // per site + managing
  /// Per-endpoint reliable channels (sites + managing), in id order; empty
  /// unless options.reliable.enabled. Channel state lives in its
  /// endpoint's loop context, like the Site behind it.
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ManagingSite> managing_;
  std::unique_ptr<SubmitWindow> window_;  // managing-loop context only
};

/// Builds a simulator cluster. This is the sanctioned white-box entry point
/// for tests and experiment code that need the simulator extras (site(),
/// runtime(), RunUntilIdle()); interface-level code should use MakeCluster.
std::unique_ptr<SimCluster> MakeSimCluster(const ClusterOptions& options);

}  // namespace miniraid

#endif  // MINIRAID_CORE_CLUSTER_H_

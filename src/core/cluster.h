#ifndef MINIRAID_CORE_CLUSTER_H_
#define MINIRAID_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <vector>

#include "core/invariants.h"
#include "core/managing_site.h"
#include "net/event_loop.h"
#include "net/inproc_transport.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "replication/site.h"
#include "sim/sim_runtime.h"

namespace miniraid {

/// Everything needed to stand up a mini-RAID cluster. `site` carries the
/// protocol configuration; its n_sites/db_size/managing_site fields are
/// overwritten from the cluster-level values.
struct ClusterOptions {
  uint32_t n_sites = 2;
  uint32_t db_size = 50;
  SiteOptions site;
  SimOptions sim;
  SimTransportOptions transport;
  ManagingSite::Options managing;

  /// When true, the cluster runs the InvariantChecker over every site after
  /// each quiescent step (RunTxn / Fail / Recover) and aborts on the first
  /// violation — the simulator-side analogue of an always-on assertion.
  bool check_invariants = false;
  InvariantChecker::Options invariants;
};

/// A cluster under the deterministic simulator: N database sites plus the
/// managing site, wired through SimTransport. This is the substrate of all
/// experiment reproductions — fast, virtual-time, bit-for-bit repeatable.
class SimCluster {
 public:
  explicit SimCluster(const ClusterOptions& options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  SimRuntime& runtime() { return sim_; }
  SimTransport& transport() { return *transport_; }
  uint64_t messages_sent() const { return transport_->messages_sent(); }
  ManagingSite& managing() { return *managing_; }
  Site& site(SiteId id) { return *sites_.at(id); }
  const Site& site(SiteId id) const { return *sites_.at(id); }
  uint32_t n_sites() const { return options_.n_sites; }
  SiteId managing_id() const { return options_.n_sites; }

  /// Submits `txn` to `coordinator` and runs the simulation to quiescence;
  /// returns the reply (synthesized kCoordinatorUnreachable on timeout).
  TxnReplyArgs RunTxn(const TxnSpec& txn, SiteId coordinator);

  /// Fails / recovers a site through the managing site's control channel
  /// and runs to quiescence.
  void Fail(SiteId site);
  void Recover(SiteId site);

  void RunUntilIdle() { sim_.RunUntilIdle(); }

  /// Sites whose local status is up.
  std::vector<SiteId> UpSites() const;

  /// Inconsistency measure for the figures: how many of `target`'s copies
  /// are fail-locked, per the operational sites' (authoritative) tables —
  /// the max across them (they agree at quiescence).
  uint32_t FailLockCountFor(SiteId target) const;

  /// Verifies invariant 1 (replica agreement): for every item, every copy
  /// whose fail-lock bit is clear in the authoritative table matches the
  /// freshest copy. Call at quiescence only.
  [[nodiscard]] Status CheckReplicaAgreement() const;

  /// One snapshot per database site, in id order. Quiescence only.
  std::vector<SiteSnapshot> SnapshotSites() const;

  /// Runs the full invariant suite over the current quiescent state using
  /// the cluster's stateful checker. Empty result = every invariant holds.
  [[nodiscard]] std::vector<InvariantViolation> CheckInvariants();

 private:
  /// MR_CHECK-fails on any invariant violation (check_invariants mode).
  void EnforceInvariants();

  ClusterOptions options_;
  SimRuntime sim_;
  std::unique_ptr<SimTransport> transport_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ManagingSite> managing_;
  InvariantChecker checker_;
};

/// A cluster on real threads with real message passing: one EventLoop per
/// site, in-process queues or TCP sockets on localhost. Used to validate
/// that the protocol behaves identically outside the simulator and to
/// measure real relative overheads.
struct RealClusterOptions {
  uint32_t n_sites = 2;
  uint32_t db_size = 50;
  SiteOptions site;
  ManagingSite::Options managing;

  enum class TransportKind { kInProc, kTcp };
  TransportKind transport = TransportKind::kInProc;

  /// TCP only: first port; site s listens on base_port + s. 0 picks a
  /// pid-derived base to keep concurrent test runs apart.
  uint16_t base_port = 0;
};

class RealCluster {
 public:
  explicit RealCluster(const RealClusterOptions& options);
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Binds sockets / finishes wiring. Must be called before traffic.
  Status Start();

  /// Stops all loops and transports. Idempotent; the destructor calls it.
  void Stop();

  /// Blocking: submits to `coordinator`, waits for the reply or client
  /// timeout.
  TxnReplyArgs RunTxn(const TxnSpec& txn, SiteId coordinator);

  void Fail(SiteId site);
  void Recover(SiteId site);

  /// Runs `fn(site)` on the site's loop thread and waits (all Site access
  /// must happen there).
  void Inspect(SiteId site, const std::function<void(Site&)>& fn);

  /// Polls until `pred(site)` is true (checked on the site's loop) or the
  /// deadline passes. Returns whether the predicate held.
  bool WaitUntil(SiteId site, const std::function<bool(Site&)>& pred,
                 Duration timeout = Seconds(10));

  uint32_t n_sites() const { return options_.n_sites; }
  SiteId managing_id() const { return options_.n_sites; }

 private:
  RealClusterOptions options_;
  SteadyClock clock_;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;  // per site + managing
  std::vector<std::unique_ptr<ThreadSiteRuntime>> runtimes_;
  std::unique_ptr<InProcTransport> inproc_;
  std::vector<std::unique_ptr<TcpTransport>> tcp_;  // per site + managing
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ManagingSite> managing_;
};

}  // namespace miniraid

#endif  // MINIRAID_CORE_CLUSTER_H_

#ifndef MINIRAID_CORE_INVARIANTS_H_
#define MINIRAID_CORE_INVARIANTS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/database.h"
#include "replication/fail_locks.h"
#include "replication/placement.h"
#include "replication/session_vector.h"

namespace miniraid {

class Site;

/// The cluster-wide protocol invariants the paper's correctness argument
/// rests on (DESIGN.md §5), checked mechanically at quiescent points:
///
///   kFailLockShape        A set fail-lock bit (x, s) must name a real site
///                         s < n_sites that holds a copy of x per the
///                         observing site's holders table.
///   kFailLockSession      Fail-lock ↔ session-vector consistency: a bit
///                         (x, s) at an operational observer means s missed
///                         a committed update, so the observer must not
///                         believe s is up to date — s is down per the
///                         observer's vector, or s is up mid-recovery, in
///                         which case s's own table must carry the bit too
///                         (recovery merges every operational table).
///   kFailLockAgreement    At quiescence all operational sites agree on
///                         every fail-lock bit: commits set bits at every
///                         operational site and copier transactions clear
///                         them at every operational site. A site's own
///                         column is exempt — a lose-state cold restart
///                         conservatively self-locks locally, which peers
///                         legitimately never learn.
///   kSessionMonotonicity  Session numbers only grow — both over time (no
///                         observer's recorded session for any site may
///                         regress between checks) and across observers (no
///                         operational observer may record a higher session
///                         for an up site than the site itself).
///   kWriteCoverage        Local read safety: every operational copy whose
///                         fail-lock bit is clear in its OWN site's table
///                         matches the freshest copy anywhere. Reads
///                         consult only the local table, so this is the
///                         form the paper's "no committed read of a stale
///                         copy" argument actually needs (the state-space
///                         checker refuted the weaker operational-union
///                         form: a crash can leave the only flag at a site
///                         the owner never hears from). One qualifier:
///                         sites excluded from the nominal session (some
///                         operational peer believes them down) are
///                         exempt — timeout-based detection can falsely
///                         exclude a live site, which then cannot learn
///                         its copies went stale until it runs type-1
///                         recovery. The guarantee is scoped to members.
enum class InvariantKind : uint8_t {
  kFailLockShape = 0,
  kFailLockSession = 1,
  kFailLockAgreement = 2,
  kSessionMonotonicity = 3,
  kWriteCoverage = 4,
};

std::string_view InvariantKindName(InvariantKind kind);

/// One violated invariant, with a human-readable account of the evidence.
struct InvariantViolation {
  InvariantKind kind = InvariantKind::kFailLockShape;
  std::string detail;

  std::string ToString() const;
};

/// A copy of the protocol-visible state of one site at a quiescent point.
/// The checker works on snapshots rather than live Site references so tests
/// can corrupt a snapshot (flip a fail-lock bit, regress a session) and
/// assert the checker notices.
struct SiteSnapshot {
  SiteSnapshot(SiteId id, SiteStatus status, SessionVector sessions,
               FailLockTable fail_locks, HoldersTable holders,
               std::vector<std::optional<ItemState>> db);

  SiteId id;
  /// The site's local status (kUp sites are the authoritative observers).
  SiteStatus status;
  SessionVector sessions;
  FailLockTable fail_locks;
  HoldersTable holders;
  /// Database image, indexed by item; disengaged = no copy held.
  std::vector<std::optional<ItemState>> db;
};

/// Captures `site`'s protocol state. Must run in the site's execution
/// context (trivially true under the simulator at quiescence).
SiteSnapshot SnapshotOf(const Site& site);

/// Validates the cluster-wide invariants over a set of site snapshots.
/// Stateless checks look at one quiescent cut; the monotonicity check also
/// remembers every session number seen in previous calls on this instance,
/// so a checker should live as long as the cluster it watches.
class InvariantChecker {
 public:
  struct Options {
    bool check_fail_lock_shape = true;
    bool check_fail_lock_session = true;
    bool check_fail_lock_agreement = true;
    bool check_session_monotonicity = true;
    bool check_write_coverage = true;
  };

  InvariantChecker() : InvariantChecker(Options{}) {}
  explicit InvariantChecker(const Options& options) : options_(options) {}

  /// Checks every enabled invariant over one quiescent cut of the cluster
  /// (one snapshot per database site). Returns all violations found (empty
  /// means every invariant holds) and updates the monotonicity history.
  [[nodiscard]] std::vector<InvariantViolation> Check(
      const std::vector<SiteSnapshot>& sites);

  /// Number of Check() calls so far.
  uint64_t checks_run() const { return checks_run_; }

  /// Forgets the monotonicity history (e.g. between independent clusters).
  void Reset() {
    last_sessions_.clear();
    checks_run_ = 0;
  }

 private:
  void CheckFailLockShape(const std::vector<SiteSnapshot>& sites,
                          std::vector<InvariantViolation>* out) const;
  void CheckFailLockSession(const std::vector<SiteSnapshot>& sites,
                            std::vector<InvariantViolation>* out) const;
  void CheckFailLockAgreement(const std::vector<SiteSnapshot>& sites,
                              std::vector<InvariantViolation>* out) const;
  void CheckSessionMonotonicity(const std::vector<SiteSnapshot>& sites,
                                std::vector<InvariantViolation>* out);
  void CheckWriteCoverage(const std::vector<SiteSnapshot>& sites,
                          std::vector<InvariantViolation>* out) const;

  Options options_;
  /// last_sessions_[observer][subject] = highest session `observer` has
  /// ever recorded for `subject`; sized lazily on first Check.
  std::vector<std::vector<SessionNumber>> last_sessions_;
  uint64_t checks_run_ = 0;
};

/// Stateless one-shot check: validates a single quiescent cut with a fresh
/// checker (no monotonicity history carried across calls). The oracle form
/// used by the systematic execution checker, where every execution stands
/// up a fresh cluster.
[[nodiscard]] std::vector<InvariantViolation> CheckInvariantsOnce(
    const std::vector<SiteSnapshot>& sites,
    const InvariantChecker::Options& options = {});

}  // namespace miniraid

#endif  // MINIRAID_CORE_INVARIANTS_H_

#include "core/cluster.h"

#include <chrono>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

/// Per-endpoint channel options: each endpoint gets its own retransmission
/// jitter stream so simultaneous losses at different senders back off on
/// decorrelated schedules.
ReliableChannelOptions ChannelOptionsFor(const ReliableChannelOptions& base,
                                         SiteId endpoint) {
  ReliableChannelOptions options = base;
  options.seed = base.seed + endpoint;
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// SimCluster.
// ---------------------------------------------------------------------------

SimCluster::SimCluster(const ClusterOptions& options)
    : Cluster(options), sim_(options.sim) {
  transport_ = std::make_unique<SimTransport>(&sim_, options_.transport);
  // With the reliable layer on, every endpoint sends and receives through
  // its own ReliableChannel stacked on the shared SimTransport: the site
  // sends into the channel, the transport delivers into the channel, and
  // the channel delivers in-order deduplicated messages up to the site.
  const bool reliable = options_.reliable.enabled;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    Transport* site_transport = transport_.get();
    if (reliable) {
      channels_.push_back(std::make_unique<ReliableChannel>(
          id, transport_.get(), sim_.RuntimeFor(id), /*upper=*/nullptr,
          ChannelOptionsFor(options_.reliable, id)));
      site_transport = channels_.back().get();
    }
    sites_.push_back(std::make_unique<Site>(id, options_.site, site_transport,
                                            sim_.RuntimeFor(id)));
    if (reliable) {
      channels_.back()->set_upper(sites_.back().get());
      transport_->Register(id, channels_.back().get());
    } else {
      transport_->Register(id, sites_.back().get());
    }
  }
  Transport* managing_transport = transport_.get();
  if (reliable) {
    channels_.push_back(std::make_unique<ReliableChannel>(
        managing_id(), transport_.get(), sim_.RuntimeFor(managing_id()),
        /*upper=*/nullptr, ChannelOptionsFor(options_.reliable,
                                             managing_id())));
    managing_transport = channels_.back().get();
  }
  managing_ = std::make_unique<ManagingSite>(
      managing_id(), managing_transport, sim_.RuntimeFor(managing_id()),
      options_.managing);
  if (reliable) {
    channels_.back()->set_upper(managing_.get());
    transport_->Register(managing_id(), channels_.back().get());
  } else {
    transport_->Register(managing_id(), managing_.get());
  }
  window_ =
      std::make_unique<SubmitWindow>(managing_.get(), options_.max_inflight);
}

SimCluster::~SimCluster() {
  // The destructor runs in the driving thread (= the managing execution
  // context), so closing the window here is in-contract: any still-queued
  // submission gets its kCoordinatorUnreachable reply instead of vanishing.
  if (window_) window_->Close();
}

void SimCluster::SubmitTxn(const TxnSpec& txn, SiteId coordinator,
                           ReplyCallback callback) {
  // Single-threaded: the caller is the simulation's driving thread, which
  // is the managing execution context by definition.
  window_->Submit(txn, coordinator, std::move(callback));
}

TxnResult SimCluster::RunTxn(const TxnSpec& txn, SiteId coordinator) {
  std::optional<TxnResult> result;
  // The by-ref capture cannot outlive this frame: RunUntilIdle() below
  // drains the single-threaded simulation (delivering the reply) before
  // RunTxn returns, so the callback's lifetime is bounded by the frame.
  SubmitTxn(txn, coordinator,
            // miniraid-lint: allow(view-escape)
            [&result](const TxnResult& reply) { result = reply; });
  sim_.RunUntilIdle();
  MR_CHECK(result.has_value()) << "simulation drained without a reply";
  EnforceInvariants();
  return *result;
}

void SimCluster::Fail(SiteId site) {
  managing_->FailSite(site);
  sim_.RunUntilIdle();
  EnforceInvariants();
}

void SimCluster::Recover(SiteId site) {
  managing_->RecoverSite(site);
  sim_.RunUntilIdle();
  EnforceInvariants();
}

std::vector<SiteId> SimCluster::UpSites() const {
  std::vector<SiteId> up;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    if (sites_[id]->is_up()) up.push_back(id);
  }
  return up;
}

uint32_t SimCluster::FailLockCountFor(SiteId target) const {
  // Cheaper than the snapshot-based default: the experiment drivers sample
  // this after every transaction.
  uint32_t count = 0;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    if (!sites_[id]->is_up()) continue;
    count = std::max(count, sites_[id]->fail_locks().CountForSite(target));
  }
  return count;
}

std::vector<SiteSnapshot> SimCluster::SnapshotSites() const {
  std::vector<SiteSnapshot> snapshots;
  snapshots.reserve(sites_.size());
  for (const auto& site : sites_) snapshots.push_back(SnapshotOf(*site));
  return snapshots;
}

ClusterStats SimCluster::Stats() const {
  ClusterStats stats;
  stats.submitted = managing_->submitted();
  stats.committed = managing_->committed();
  stats.aborted = managing_->aborted();
  stats.unreachable = managing_->unreachable();
  stats.late_outcomes = managing_->late_outcomes();
  stats.messages_sent = transport_->messages_sent();
  stats.messages_dropped = transport_->messages_dropped();
  stats.backlogged = window_->backlogged_total();
  stats.inflight = window_->inflight();
  stats.max_inflight_seen = window_->max_inflight_seen();
  for (const auto& channel : channels_) stats.channel += channel->counters();
  return stats;
}

void SimCluster::Post(std::function<void()> fn) {
  sim_.ScheduleSiteEvent(sim_.CurrentTime(), managing_id(), std::move(fn));
}

void SimCluster::ScheduleAfter(Duration delay, std::function<void()> fn) {
  sim_.RuntimeFor(managing_id())->ScheduleAfter(delay, std::move(fn));
}

bool SimCluster::Drive(const std::function<bool()>& done,
                       Duration /*timeout*/) {
  // Virtual time is free: run events until the predicate holds or the
  // simulation has nothing left to do.
  while (!done() && sim_.RunOne()) {
  }
  return done();
}

bool SimCluster::WaitUntil(SiteId site,
                           const std::function<bool(const Site&)>& pred,
                           Duration /*timeout*/) {
  sim_.RunUntilIdle();
  return pred(*sites_.at(site));
}

void SimCluster::AwaitTxn(internal::TxnWaitState& state) {
  while (!state.IsDone() && sim_.RunOne()) {
  }
  MR_CHECK(state.IsDone()) << "simulation drained without a reply for txn "
                           << state.id;
}

void SimCluster::EnforceInvariants() {
  if (!options_.check_invariants) return;
  const std::vector<InvariantViolation> violations = CheckInvariants();
  for (const InvariantViolation& v : violations) {
    MR_LOG(kError) << "invariant violated: " << v.ToString();
  }
  MR_CHECK(violations.empty())
      << violations.size() << " protocol invariant violation(s); first: "
      << violations.front().ToString();
}

// ---------------------------------------------------------------------------
// RealCluster.
// ---------------------------------------------------------------------------

RealCluster::RealCluster(const ClusterOptions& options) : Cluster(options) {
  MR_CHECK(options.backend != ClusterBackend::kSim)
      << "RealCluster needs an inproc or tcp backend "
         "(use SimCluster / MakeCluster for the simulator)";
}

RealCluster::~RealCluster() { Stop(); }

Status RealCluster::Start() {
  MR_CHECK(!started_) << "RealCluster::Start called twice";
  started_ = true;
  const uint32_t total = options_.n_sites + 1;  // + managing site
  for (uint32_t i = 0; i < total; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    runtimes_.push_back(
        std::make_unique<ThreadSiteRuntime>(loops_.back().get(), &clock_));
  }

  const bool reliable = options_.reliable.enabled;
  if (options_.backend == ClusterBackend::kInProc) {
    inproc_ = std::make_unique<InProcTransport>(options_.inproc);
    for (SiteId id = 0; id < options_.n_sites; ++id) {
      Transport* site_transport = inproc_.get();
      if (reliable) {
        channels_.push_back(std::make_unique<ReliableChannel>(
            id, inproc_.get(), runtimes_[id].get(), /*upper=*/nullptr,
            ChannelOptionsFor(options_.reliable, id)));
        site_transport = channels_.back().get();
      }
      sites_.push_back(std::make_unique<Site>(
          id, options_.site, site_transport, runtimes_[id].get()));
      if (reliable) {
        channels_.back()->set_upper(sites_.back().get());
        inproc_->Register(id, loops_[id].get(), channels_.back().get());
      } else {
        inproc_->Register(id, loops_[id].get(), sites_.back().get());
      }
    }
    Transport* managing_transport = inproc_.get();
    if (reliable) {
      channels_.push_back(std::make_unique<ReliableChannel>(
          managing_id(), inproc_.get(), runtimes_[managing_id()].get(),
          /*upper=*/nullptr,
          ChannelOptionsFor(options_.reliable, managing_id())));
      managing_transport = channels_.back().get();
    }
    managing_ = std::make_unique<ManagingSite>(
        managing_id(), managing_transport, runtimes_[managing_id()].get(),
        options_.managing);
    if (reliable) {
      channels_.back()->set_upper(managing_.get());
      inproc_->Register(managing_id(), loops_[managing_id()].get(),
                        channels_.back().get());
    } else {
      inproc_->Register(managing_id(), loops_[managing_id()].get(),
                        managing_.get());
    }
    window_ = std::make_unique<SubmitWindow>(managing_.get(),
                                             options_.max_inflight);
    return Status::Ok();
  }

  // TCP: every endpoint (sites + managing) gets its own transport. The
  // transports are created handler-less first (breaking the site <->
  // transport dependency cycle), then wired and started.
  const uint16_t base =
      options_.base_port != 0 ? options_.base_port : PickEphemeralBasePort();
  std::map<SiteId, uint16_t> ports;
  for (uint32_t i = 0; i < total; ++i) {
    ports[i] = static_cast<uint16_t>(base + i);
  }
  for (uint32_t i = 0; i < total; ++i) {
    tcp_.push_back(std::make_unique<TcpTransport>(
        static_cast<SiteId>(i), ports, loops_[i].get(), /*handler=*/nullptr,
        options_.tcp));
    if (reliable) {
      channels_.push_back(std::make_unique<ReliableChannel>(
          static_cast<SiteId>(i), tcp_.back().get(), runtimes_[i].get(),
          /*upper=*/nullptr,
          ChannelOptionsFor(options_.reliable, static_cast<SiteId>(i))));
    }
  }
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    Transport* site_transport =
        reliable ? static_cast<Transport*>(channels_[id].get())
                 : static_cast<Transport*>(tcp_[id].get());
    sites_.push_back(std::make_unique<Site>(id, options_.site, site_transport,
                                            runtimes_[id].get()));
    if (reliable) {
      channels_[id]->set_upper(sites_.back().get());
      tcp_[id]->set_handler(channels_[id].get());
    } else {
      tcp_[id]->set_handler(sites_.back().get());
    }
  }
  Transport* managing_transport =
      reliable ? static_cast<Transport*>(channels_[managing_id()].get())
               : static_cast<Transport*>(tcp_[managing_id()].get());
  managing_ = std::make_unique<ManagingSite>(
      managing_id(), managing_transport,
      runtimes_[managing_id()].get(), options_.managing);
  if (reliable) {
    channels_[managing_id()]->set_upper(managing_.get());
    tcp_[managing_id()]->set_handler(channels_[managing_id()].get());
  } else {
    tcp_[managing_id()]->set_handler(managing_.get());
  }
  window_ =
      std::make_unique<SubmitWindow>(managing_.get(), options_.max_inflight);
  for (auto& transport : tcp_) {
    MINIRAID_RETURN_IF_ERROR(transport->Start());
  }
  return Status::Ok();
}

void RealCluster::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Reject the backlog on the managing loop (the window's single context)
  // before stopping the loops, so every queued submission still gets its
  // one reply instead of being dropped.
  if (started_ && window_) {
    loops_[managing_id()]->PostAndWait([this] { window_->Close(); });
  }
  for (auto& transport : tcp_) {
    if (transport) transport->Stop();
  }
  for (auto& loop : loops_) {
    if (loop) loop->Stop();
  }
}

void RealCluster::SubmitTxn(const TxnSpec& txn, SiteId coordinator,
                            ReplyCallback callback) {
  // All window bookkeeping happens on the managing loop; submissions from
  // any thread serialize through its queue in arrival order.
  loops_[managing_id()]->Post(
      [this, txn, coordinator, callback = std::move(callback)]() mutable {
        window_->Submit(txn, coordinator, std::move(callback));
      });
}

void RealCluster::Fail(SiteId site) {
  loops_[managing_id()]->PostAndWait([this, site] {
    managing_->FailSite(site);
  });
  WaitUntil(site, [](const Site& s) { return !s.is_up(); });
}

void RealCluster::Recover(SiteId site) {
  loops_[managing_id()]->PostAndWait([this, site] {
    managing_->RecoverSite(site);
  });
  WaitUntil(site, [](const Site& s) { return s.is_up(); });
}

std::vector<SiteId> RealCluster::UpSites() const {
  std::vector<SiteId> up;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    bool is_up = false;
    Inspect(id, [&is_up](Site& s) { is_up = s.is_up(); });
    if (is_up) up.push_back(id);
  }
  return up;
}

std::vector<SiteSnapshot> RealCluster::SnapshotSites() const {
  std::vector<SiteSnapshot> snapshots;
  snapshots.reserve(options_.n_sites);
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    Inspect(id, [&snapshots](Site& s) { snapshots.push_back(SnapshotOf(s)); });
  }
  return snapshots;
}

ClusterStats RealCluster::Stats() const {
  ClusterStats stats;
  loops_[managing_id()]->PostAndWait([this, &stats] {
    stats.submitted = managing_->submitted();
    stats.committed = managing_->committed();
    stats.aborted = managing_->aborted();
    stats.unreachable = managing_->unreachable();
    stats.late_outcomes = managing_->late_outcomes();
    stats.backlogged = window_->backlogged_total();
    stats.inflight = window_->inflight();
    stats.max_inflight_seen = window_->max_inflight_seen();
  });
  if (inproc_) {
    stats.messages_sent = inproc_->messages_sent();
    stats.messages_dropped = inproc_->messages_dropped();
  }
  for (const auto& transport : tcp_) {
    stats.messages_sent += transport->messages_sent();
    stats.messages_dropped += transport->messages_dropped();
  }
  // Channel state lives in each endpoint's loop context; read it there.
  for (size_t i = 0; i < channels_.size(); ++i) {
    loops_[i]->PostAndWait(
        [this, i, &stats] { stats.channel += channels_[i]->counters(); });
  }
  return stats;
}

void RealCluster::Post(std::function<void()> fn) {
  loops_[managing_id()]->Post(std::move(fn));
}

void RealCluster::ScheduleAfter(Duration delay, std::function<void()> fn) {
  loops_[managing_id()]->ScheduleAfter(delay, std::move(fn));
}

bool RealCluster::Drive(const std::function<bool()>& done, Duration timeout) {
  const TimePoint deadline = clock_.Now() + timeout;
  while (true) {
    bool ok = false;
    loops_[managing_id()]->PostAndWait([&done, &ok] { ok = done(); });
    if (ok) return true;
    if (clock_.Now() >= deadline) return false;
    // Driver-side poll loop: Drive is MR_RUNS_ON(client), where blocking
    // is permitted.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void RealCluster::Inspect(SiteId site,
                          const std::function<void(Site&)>& fn) const {
  Site* target = sites_.at(site).get();
  loops_[site]->PostAndWait([target, &fn] { fn(*target); });
}

bool RealCluster::WaitUntil(SiteId site,
                            const std::function<bool(const Site&)>& pred,
                            Duration timeout) {
  const TimePoint deadline = clock_.Now() + timeout;
  while (clock_.Now() < deadline) {
    bool ok = false;
    Inspect(site, [&](Site& s) { ok = pred(s); });
    if (ok) return true;
    // Driver-side poll loop: WaitUntil is MR_RUNS_ON(client), where
    // blocking is permitted.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

void RealCluster::AwaitTxn(internal::TxnWaitState& state) {
  MutexLock lock(state.mu);
  while (!state.done) state.cv.Wait(state.mu);
}

// ---------------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------------

std::unique_ptr<SimCluster> MakeSimCluster(const ClusterOptions& options) {
  // Not make_unique: the constructor is private and this factory is the
  // friend.
  return std::unique_ptr<SimCluster>(new SimCluster(options));
}

Result<std::unique_ptr<Cluster>> MakeCluster(const ClusterOptions& options) {
  if (options.backend == ClusterBackend::kSim) {
    return std::unique_ptr<Cluster>(MakeSimCluster(options));
  }
  auto real = std::unique_ptr<RealCluster>(new RealCluster(options));
  MINIRAID_RETURN_IF_ERROR(real->Start());
  return std::unique_ptr<Cluster>(std::move(real));
}

}  // namespace miniraid

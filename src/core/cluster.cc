#include "core/cluster.h"

#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

SiteOptions ResolveSiteOptions(uint32_t n_sites, uint32_t db_size,
                               SiteOptions site) {
  site.n_sites = n_sites;
  site.db_size = db_size;
  site.managing_site = n_sites;
  return site;
}

}  // namespace

// ---------------------------------------------------------------------------
// SimCluster.
// ---------------------------------------------------------------------------

SimCluster::SimCluster(const ClusterOptions& options)
    : options_(options), sim_(options.sim), checker_(options.invariants) {
  options_.site =
      ResolveSiteOptions(options_.n_sites, options_.db_size, options_.site);
  transport_ = std::make_unique<SimTransport>(&sim_, options_.transport);
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    sites_.push_back(std::make_unique<Site>(id, options_.site,
                                            transport_.get(),
                                            sim_.RuntimeFor(id)));
    transport_->Register(id, sites_.back().get());
  }
  managing_ = std::make_unique<ManagingSite>(
      managing_id(), transport_.get(), sim_.RuntimeFor(managing_id()),
      options_.managing);
  transport_->Register(managing_id(), managing_.get());
}

SimCluster::~SimCluster() = default;

TxnReplyArgs SimCluster::RunTxn(const TxnSpec& txn, SiteId coordinator) {
  std::optional<TxnReplyArgs> result;
  managing_->Submit(txn, coordinator,
                    [&result](const TxnReplyArgs& reply) { result = reply; });
  sim_.RunUntilIdle();
  MR_CHECK(result.has_value()) << "simulation drained without a reply";
  EnforceInvariants();
  return *result;
}

void SimCluster::Fail(SiteId site) {
  managing_->FailSite(site);
  sim_.RunUntilIdle();
  EnforceInvariants();
}

void SimCluster::Recover(SiteId site) {
  managing_->RecoverSite(site);
  sim_.RunUntilIdle();
  EnforceInvariants();
}

std::vector<SiteId> SimCluster::UpSites() const {
  std::vector<SiteId> up;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    if (sites_[id]->is_up()) up.push_back(id);
  }
  return up;
}

uint32_t SimCluster::FailLockCountFor(SiteId target) const {
  uint32_t count = 0;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    if (!sites_[id]->is_up()) continue;
    count = std::max(count, sites_[id]->fail_locks().CountForSite(target));
  }
  return count;
}

Status SimCluster::CheckReplicaAgreement() const {
  // Replica agreement is the write-coverage invariant; run just that check
  // through a throwaway (stateless) checker.
  InvariantChecker::Options options;
  options.check_fail_lock_shape = false;
  options.check_fail_lock_session = false;
  options.check_fail_lock_agreement = false;
  options.check_session_monotonicity = false;
  InvariantChecker checker(options);
  const std::vector<InvariantViolation> violations =
      checker.Check(SnapshotSites());
  if (violations.empty()) return Status::Ok();
  return Status::Internal(violations.front().ToString());
}

std::vector<SiteSnapshot> SimCluster::SnapshotSites() const {
  std::vector<SiteSnapshot> snapshots;
  snapshots.reserve(sites_.size());
  for (const auto& site : sites_) snapshots.push_back(SnapshotOf(*site));
  return snapshots;
}

std::vector<InvariantViolation> SimCluster::CheckInvariants() {
  return checker_.Check(SnapshotSites());
}

void SimCluster::EnforceInvariants() {
  if (!options_.check_invariants) return;
  const std::vector<InvariantViolation> violations = CheckInvariants();
  for (const InvariantViolation& v : violations) {
    MR_LOG(kError) << "invariant violated: " << v.ToString();
  }
  MR_CHECK(violations.empty())
      << violations.size() << " protocol invariant violation(s); first: "
      << violations.front().ToString();
}

// ---------------------------------------------------------------------------
// RealCluster.
// ---------------------------------------------------------------------------

RealCluster::RealCluster(const RealClusterOptions& options)
    : options_(options) {
  options_.site =
      ResolveSiteOptions(options_.n_sites, options_.db_size, options_.site);
}

RealCluster::~RealCluster() { Stop(); }

Status RealCluster::Start() {
  MR_CHECK(!started_) << "RealCluster::Start called twice";
  started_ = true;
  const uint32_t total = options_.n_sites + 1;  // + managing site
  for (uint32_t i = 0; i < total; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    runtimes_.push_back(
        std::make_unique<ThreadSiteRuntime>(loops_.back().get(), &clock_));
  }

  if (options_.transport == RealClusterOptions::TransportKind::kInProc) {
    inproc_ = std::make_unique<InProcTransport>();
    for (SiteId id = 0; id < options_.n_sites; ++id) {
      sites_.push_back(std::make_unique<Site>(
          id, options_.site, inproc_.get(), runtimes_[id].get()));
      inproc_->Register(id, loops_[id].get(), sites_.back().get());
    }
    managing_ = std::make_unique<ManagingSite>(
        managing_id(), inproc_.get(), runtimes_[managing_id()].get(),
        options_.managing);
    inproc_->Register(managing_id(), loops_[managing_id()].get(),
                      managing_.get());
    return Status::Ok();
  }

  // TCP: every endpoint (sites + managing) gets its own transport. The
  // transports are created handler-less first (breaking the site <->
  // transport dependency cycle), then wired and started.
  const uint16_t base =
      options_.base_port != 0 ? options_.base_port : PickEphemeralBasePort();
  std::map<SiteId, uint16_t> ports;
  for (uint32_t i = 0; i < total; ++i) {
    ports[i] = static_cast<uint16_t>(base + i);
  }
  for (uint32_t i = 0; i < total; ++i) {
    tcp_.push_back(std::make_unique<TcpTransport>(
        static_cast<SiteId>(i), ports, loops_[i].get(), /*handler=*/nullptr));
  }
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    sites_.push_back(std::make_unique<Site>(id, options_.site, tcp_[id].get(),
                                            runtimes_[id].get()));
    tcp_[id]->set_handler(sites_.back().get());
  }
  managing_ = std::make_unique<ManagingSite>(
      managing_id(), tcp_[managing_id()].get(),
      runtimes_[managing_id()].get(), options_.managing);
  tcp_[managing_id()]->set_handler(managing_.get());
  for (auto& transport : tcp_) {
    MINIRAID_RETURN_IF_ERROR(transport->Start());
  }
  return Status::Ok();
}

void RealCluster::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& transport : tcp_) {
    if (transport) transport->Stop();
  }
  for (auto& loop : loops_) {
    if (loop) loop->Stop();
  }
}

TxnReplyArgs RealCluster::RunTxn(const TxnSpec& txn, SiteId coordinator) {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<TxnReplyArgs> result;
  loops_[managing_id()]->Post([&, txn, coordinator] {
    managing_->Submit(txn, coordinator, [&](const TxnReplyArgs& reply) {
      // Notify under the lock: the waiter's stack frame (mu, cv, result)
      // may be destroyed the moment `result` is observable.
      std::lock_guard<std::mutex> lock(mu);
      result = reply;
      cv.notify_one();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return result.has_value(); });
  return *result;
}

void RealCluster::Fail(SiteId site) {
  loops_[managing_id()]->PostAndWait([this, site] {
    managing_->FailSite(site);
  });
  WaitUntil(site, [](Site& s) { return !s.is_up(); });
}

void RealCluster::Recover(SiteId site) {
  loops_[managing_id()]->PostAndWait([this, site] {
    managing_->RecoverSite(site);
  });
  WaitUntil(site, [](Site& s) { return s.is_up(); });
}

void RealCluster::Inspect(SiteId site, const std::function<void(Site&)>& fn) {
  Site* target = sites_.at(site).get();
  loops_[site]->PostAndWait([target, &fn] { fn(*target); });
}

bool RealCluster::WaitUntil(SiteId site,
                            const std::function<bool(Site&)>& pred,
                            Duration timeout) {
  const TimePoint deadline = clock_.Now() + timeout;
  while (clock_.Now() < deadline) {
    bool ok = false;
    Inspect(site, [&](Site& s) { ok = pred(s); });
    if (ok) return true;
    // Driver-side poll loop on the caller's thread, never a loop thread.
    // miniraid-lint: allow(blocking-call)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

}  // namespace miniraid

#include "core/invariants.h"

#include <algorithm>

#include "common/strings.h"
#include "replication/site.h"

namespace miniraid {
namespace {

bool IsOperational(const SiteSnapshot& site) {
  return site.status == SiteStatus::kUp;
}

void Report(InvariantKind kind, std::string detail,
            std::vector<InvariantViolation>* out) {
  out->push_back(InvariantViolation{kind, std::move(detail)});
}

}  // namespace

std::string_view InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kFailLockShape:
      return "FailLockShape";
    case InvariantKind::kFailLockSession:
      return "FailLockSession";
    case InvariantKind::kFailLockAgreement:
      return "FailLockAgreement";
    case InvariantKind::kSessionMonotonicity:
      return "SessionMonotonicity";
    case InvariantKind::kWriteCoverage:
      return "WriteCoverage";
  }
  return "Unknown";
}

std::string InvariantViolation::ToString() const {
  return StrFormat("%s: %s", std::string(InvariantKindName(kind)).c_str(),
                   detail.c_str());
}

SiteSnapshot::SiteSnapshot(SiteId id_in, SiteStatus status_in,
                           SessionVector sessions_in,
                           FailLockTable fail_locks_in,
                           HoldersTable holders_in,
                           std::vector<std::optional<ItemState>> db_in)
    : id(id_in),
      status(status_in),
      sessions(std::move(sessions_in)),
      fail_locks(std::move(fail_locks_in)),
      holders(std::move(holders_in)),
      db(std::move(db_in)) {}

SiteSnapshot SnapshotOf(const Site& site) {
  return SiteSnapshot(site.id(), site.local_status(), site.session_vector(),
                      site.fail_locks(), site.holders(),
                      site.db().snapshot());
}

std::vector<InvariantViolation> InvariantChecker::Check(
    const std::vector<SiteSnapshot>& sites) {
  ++checks_run_;
  std::vector<InvariantViolation> violations;
  if (sites.empty()) return violations;
  if (options_.check_fail_lock_shape) {
    CheckFailLockShape(sites, &violations);
  }
  if (options_.check_fail_lock_session) {
    CheckFailLockSession(sites, &violations);
  }
  if (options_.check_fail_lock_agreement) {
    CheckFailLockAgreement(sites, &violations);
  }
  if (options_.check_session_monotonicity) {
    CheckSessionMonotonicity(sites, &violations);
  }
  if (options_.check_write_coverage) {
    CheckWriteCoverage(sites, &violations);
  }
  return violations;
}

void InvariantChecker::CheckFailLockShape(
    const std::vector<SiteSnapshot>& sites,
    std::vector<InvariantViolation>* out) const {
  // Every site's table must be well-formed, operational or not: a down
  // site's frozen table was valid when it froze.
  for (const SiteSnapshot& site : sites) {
    // The holders table carries the cluster's configured site count;
    // FailLockTable masks bits to its own width, so a wider (corrupt)
    // table is exactly what this bound catches.
    const uint32_t n_sites = site.holders.n_sites();
    for (ItemId item = 0; item < site.fail_locks.n_items(); ++item) {
      const Bitmap64 row = site.fail_locks.Row(item);
      if (row.None()) continue;
      for (uint32_t s = 0; s < 64; ++s) {
        if (!row.Test(s)) continue;
        if (s >= n_sites) {
          Report(InvariantKind::kFailLockShape,
                 StrFormat("site %u: item %u fail-locked for nonexistent "
                           "site %u (n_sites=%u)",
                           site.id, item, s, n_sites),
                 out);
        } else if (!site.holders.Holds(item, s)) {
          Report(InvariantKind::kFailLockShape,
                 StrFormat("site %u: item %u fail-locked for site %u, which "
                           "holds no copy of it",
                           site.id, item, s),
                 out);
        }
      }
    }
  }
}

void InvariantChecker::CheckFailLockSession(
    const std::vector<SiteSnapshot>& sites,
    std::vector<InvariantViolation>* out) const {
  // A fail-lock bit (x, s) at an operational observer asserts s missed a
  // committed update. The observer must therefore not consider s fully up
  // to date: either its session vector says s is not up, or s is up and
  // mid-recovery — in which case s's own merged table must carry the bit
  // too (control transaction type 1 merges every operational table into
  // the recovering site before it rejoins).
  for (const SiteSnapshot& observer : sites) {
    if (!IsOperational(observer)) continue;
    for (ItemId item = 0; item < observer.fail_locks.n_items(); ++item) {
      const Bitmap64 row = observer.fail_locks.Row(item);
      if (row.None()) continue;
      for (uint32_t s = 0; s < observer.fail_locks.n_sites(); ++s) {
        if (!row.Test(s)) continue;
        // Bits beyond the session vector are shape violations, reported by
        // CheckFailLockShape; indexing the vector with them would abort.
        if (s >= observer.sessions.n_sites()) continue;
        if (!observer.sessions.IsUp(s)) continue;
        const auto subject =
            std::find_if(sites.begin(), sites.end(),
                         [s](const SiteSnapshot& snap) { return snap.id == s; });
        if (subject == sites.end() || !IsOperational(*subject)) continue;
        if (!subject->fail_locks.IsSet(item, s)) {
          Report(InvariantKind::kFailLockSession,
                 StrFormat("site %u holds fail-lock (item %u, site %u) but "
                           "believes site %u is up and site %u's own table "
                           "has no such lock — a copier cleared the lock "
                           "at the owner but not everywhere",
                           observer.id, item, s, s, s),
                 out);
        }
      }
    }
  }
}

void InvariantChecker::CheckFailLockAgreement(
    const std::vector<SiteSnapshot>& sites,
    std::vector<InvariantViolation>* out) const {
  // At quiescence the operational sites agree on every fail-lock bit
  // (x, s): fail-lock maintenance runs inside every commit at every
  // operational site, and the fail-lock-clearing transaction reaches every
  // operational site (paper §2.2). One asymmetry is legitimate: site s may
  // know MORE about its own staleness than its peers — a lose-state cold
  // restart conservatively self-locks every held copy locally — so s's own
  // column is compared only across observers other than s. (An owner
  // MISSING a bit its peers hold is the copier-clear bug, caught by
  // CheckFailLockSession.)
  const SiteSnapshot* first_up = nullptr;
  for (const SiteSnapshot& site : sites) {
    if (IsOperational(site)) {
      first_up = &site;
      break;
    }
  }
  if (first_up == nullptr) return;
  const uint32_t n_items = first_up->fail_locks.n_items();
  const uint32_t n_sites = first_up->fail_locks.n_sites();
  for (ItemId item = 0; item < n_items; ++item) {
    for (uint32_t s = 0; s < n_sites; ++s) {
      const SiteSnapshot* seen_by = nullptr;
      const SiteSnapshot* cleared_by = nullptr;
      for (const SiteSnapshot& observer : sites) {
        if (!IsOperational(observer) || observer.id == s) continue;
        if (item >= observer.fail_locks.n_items() ||
            s >= observer.fail_locks.n_sites()) {
          continue;  // malformed table; CheckFailLockShape's department
        }
        if (observer.fail_locks.IsSet(item, s)) {
          seen_by = &observer;
        } else {
          cleared_by = &observer;
        }
      }
      if (seen_by != nullptr && cleared_by != nullptr) {
        Report(InvariantKind::kFailLockAgreement,
               StrFormat("item %u: operational sites disagree on the "
                         "fail-lock for site %u's copy (site %u has it "
                         "set, site %u clear)",
                         item, s, seen_by->id, cleared_by->id),
               out);
      }
    }
  }
}

void InvariantChecker::CheckSessionMonotonicity(
    const std::vector<SiteSnapshot>& sites,
    std::vector<InvariantViolation>* out) {
  // Across observers, within this cut: no operational observer may record
  // a higher session for an up site than the site records for itself (a
  // session is born at its site; nobody can be ahead of the source).
  for (const SiteSnapshot& observer : sites) {
    if (!IsOperational(observer)) continue;
    for (const SiteSnapshot& subject : sites) {
      if (!IsOperational(subject) || subject.id == observer.id) continue;
      if (!observer.sessions.IsUp(subject.id)) continue;
      const SessionNumber seen = observer.sessions.session(subject.id);
      const SessionNumber own = subject.sessions.session(subject.id);
      if (seen > own) {
        Report(InvariantKind::kSessionMonotonicity,
               StrFormat("site %u records session %llu for up site %u, "
                         "ahead of that site's own session %llu",
                         observer.id, (unsigned long long)seen, subject.id,
                         (unsigned long long)own),
               out);
      }
    }
  }

  // Over time: a recorded session number never regresses between checks.
  for (const SiteSnapshot& observer : sites) {
    if (observer.id >= last_sessions_.size()) {
      last_sessions_.resize(observer.id + 1);
    }
    std::vector<SessionNumber>& history = last_sessions_[observer.id];
    const uint32_t n = observer.sessions.n_sites();
    if (history.size() < n) history.resize(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
      const SessionNumber now = observer.sessions.session(s);
      if (now < history[s]) {
        Report(InvariantKind::kSessionMonotonicity,
               StrFormat("site %u's recorded session for site %u regressed "
                         "from %llu to %llu",
                         observer.id, s, (unsigned long long)history[s],
                         (unsigned long long)now),
               out);
      }
      history[s] = std::max(history[s], now);
    }
  }
}

void InvariantChecker::CheckWriteCoverage(
    const std::vector<SiteSnapshot>& sites,
    std::vector<InvariantViolation>* out) const {
  // ROWAA writes reach every operational copy; a missed copy must carry a
  // fail-lock in the MISSING SITE'S OWN table, because reads consult only
  // the local table. So every copy whose own bit is clear must equal the
  // freshest copy anywhere.
  if (std::none_of(sites.begin(), sites.end(), IsOperational)) return;
  // Exception: a site some operational peer has excluded (believes down)
  // is outside the nominal session. Commits legitimately bypass it and
  // fail-lock its copies at the members, and — detection being timeout-
  // based — the excluded site itself may be alive and cannot know. The
  // paper's read-safety guarantee resumes only once it runs type-1
  // recovery, so its copies are exempt until then. (The abstract model
  // assumes accurate detection, so this caveat never arises there and the
  // model asserts the unqualified own-bit form.)
  std::vector<bool> excluded;
  for (const SiteSnapshot& site : sites) {
    bool out = false;
    for (const SiteSnapshot& observer : sites) {
      if (!IsOperational(observer) || observer.id == site.id) continue;
      if (site.id < observer.sessions.n_sites() &&
          !observer.sessions.IsUp(site.id)) {
        out = true;
        break;
      }
    }
    excluded.push_back(out);
  }
  const uint32_t n_items =
      sites.front().db.empty()
          ? 0
          : static_cast<uint32_t>(sites.front().db.size());
  for (ItemId item = 0; item < n_items; ++item) {
    ItemState freshest;
    for (const SiteSnapshot& site : sites) {
      if (item >= site.db.size() || !site.db[item].has_value()) continue;
      const ItemState& copy = *site.db[item];
      if (copy.version >= freshest.version) freshest = copy;
    }
    for (size_t idx = 0; idx < sites.size(); ++idx) {
      const SiteSnapshot& site = sites[idx];
      if (item >= site.db.size() || !site.db[item].has_value()) continue;
      // Only operational copies are served to transactions; a down site's
      // copy may be arbitrarily stale (lose-state crashes wipe it outright)
      // and is repaired by fail-locks or conservative locking at recovery.
      if (!IsOperational(site)) continue;
      if (excluded[idx]) continue;  // outside the nominal session
      // The exemption is the site's OWN fail-lock bit, not the operational
      // union: reads consult only the local table, so a copy whose own bit
      // is clear is served even while some other observer has it flagged.
      // (The state-space checker refuted the union form: a crash can leave
      // the only flag at a site the owner never hears from.)
      if (site.fail_locks.IsSet(item, site.id)) continue;  // known stale
      const ItemState& copy = *site.db[item];
      if (copy.version != freshest.version || copy.value != freshest.value) {
        Report(InvariantKind::kWriteCoverage,
               StrFormat("item %u: site %u's unlocked copy is v%llu=%lld "
                         "but the freshest copy is v%llu=%lld",
                         item, site.id, (unsigned long long)copy.version,
                         (long long)copy.value,
                         (unsigned long long)freshest.version,
                         (long long)freshest.value),
               out);
      }
    }
  }
}

std::vector<InvariantViolation> CheckInvariantsOnce(
    const std::vector<SiteSnapshot>& sites,
    const InvariantChecker::Options& options) {
  InvariantChecker checker(options);
  return checker.Check(sites);
}

}  // namespace miniraid

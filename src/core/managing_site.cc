#include "core/managing_site.h"

#include "common/logging.h"

namespace miniraid {

ManagingSite::ManagingSite(SiteId id, Transport* transport,
                           SiteRuntime* runtime, const Options& options)
    : id_(id), transport_(transport), runtime_(runtime), options_(options) {}

void ManagingSite::Submit(const TxnSpec& txn, SiteId coordinator,
                          ReplyCallback callback) {
  MR_CHECK(!pending_.count(txn.id))
      << "transaction id " << txn.id << " already outstanding";
  ++submitted_;
  PendingTxn& pending = pending_[txn.id];
  pending.callback = std::move(callback);
  const Status status =
      transport_->Send(MakeMessage(id_, coordinator, TxnRequestArgs{txn}));
  if (!status.ok()) {
    MR_LOG(kWarn) << "managing site: submit failed: " << status.ToString();
  }
  const TxnId id = txn.id;
  pending.timer = runtime_->ScheduleAfter(options_.client_timeout,
                                          [this, id] { ClientTimeout(id); });
}

void ManagingSite::FailSite(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, FailSiteArgs{}));
}

void ManagingSite::RecoverSite(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, RecoverSiteArgs{}));
}

void ManagingSite::Shutdown(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, ShutdownArgs{}));
}

void ManagingSite::OnMessage(const Message& msg) {
  if (msg.type != MsgType::kTxnReply) return;
  const auto& reply = msg.As<TxnReplyArgs>();
  auto it = pending_.find(reply.txn);
  if (it == pending_.end()) return;  // stale or duplicate reply
  runtime_->CancelTimer(it->second.timer);
  PendingTxn pending = std::move(it->second);
  pending_.erase(it);
  if (reply.outcome == TxnOutcome::kCommitted) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (pending.callback) pending.callback(reply);
}

void ManagingSite::ClientTimeout(TxnId txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  PendingTxn pending = std::move(it->second);
  pending_.erase(it);
  ++unreachable_;
  TxnReplyArgs synthetic;
  synthetic.txn = txn;
  synthetic.outcome = TxnOutcome::kCoordinatorUnreachable;
  if (pending.callback) pending.callback(synthetic);
}

}  // namespace miniraid

#include "core/managing_site.h"

#include "common/logging.h"

namespace miniraid {

ManagingSite::ManagingSite(SiteId id, Transport* transport,
                           SiteRuntime* runtime, const Options& options)
    : id_(id), transport_(transport), runtime_(runtime), options_(options) {}

void ManagingSite::Submit(const TxnSpec& txn, SiteId coordinator,
                          ReplyCallback callback) {
  MR_CHECK(!pending_.count(txn.id))
      << "transaction id " << txn.id << " already outstanding";
  ++submitted_;
  PendingTxn& pending = pending_[txn.id];
  pending.callback = std::move(callback);
  const Status status =
      transport_->Send(MakeMessage(id_, coordinator, TxnRequestArgs{txn}));
  if (!status.ok()) {
    MR_LOG(kWarn) << "managing site: submit failed: " << status.ToString();
  }
  const TxnId id = txn.id;
  pending.timer = runtime_->ScheduleAfter(options_.client_timeout,
                                          [this, id] { ClientTimeout(id); });
}

void ManagingSite::FailSite(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, FailSiteArgs{}));
}

void ManagingSite::RecoverSite(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, RecoverSiteArgs{}));
}

void ManagingSite::Shutdown(SiteId site) {
  (void)transport_->Send(MakeMessage(id_, site, ShutdownArgs{}));
}

void ManagingSite::OnMessage(const Message& msg) {
  if (msg.type != MsgType::kTxnReply) return;
  const auto& reply = msg.As<TxnResult>();
  auto it = pending_.find(reply.txn);
  if (it == pending_.end()) {
    // Not outstanding: either a duplicate of a reply already counted, or —
    // the interesting case — the real outcome arriving after ClientTimeout
    // already told the caller kCoordinatorUnreachable. The commit (or
    // abort) stands in the cluster either way; count the contradiction so
    // operators can see when the client timeout is lying.
    if (timed_out_.erase(reply.txn) > 0) {
      ++late_outcomes_;
      MR_LOG(kWarn) << "managing site: txn " << reply.txn << " resolved ("
                    << (reply.outcome == TxnOutcome::kCommitted ? "committed"
                                                                : "aborted")
                    << ") after its client timeout already fired";
    }
    return;
  }
  runtime_->CancelTimer(it->second.timer);
  PendingTxn pending = std::move(it->second);
  pending_.erase(it);
  if (reply.outcome == TxnOutcome::kCommitted) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (pending.callback) pending.callback(reply);
}

void ManagingSite::ClientTimeout(TxnId txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  PendingTxn pending = std::move(it->second);
  pending_.erase(it);
  ++unreachable_;
  RecordTimedOut(txn);
  TxnResult synthetic;
  synthetic.txn = txn;
  synthetic.outcome = TxnOutcome::kCoordinatorUnreachable;
  if (pending.callback) pending.callback(synthetic);
}

void ManagingSite::RecordTimedOut(TxnId txn) {
  if (!timed_out_.insert(txn).second) return;
  timed_out_fifo_.push_back(txn);
  while (timed_out_fifo_.size() > kMaxTimedOut) {
    timed_out_.erase(timed_out_fifo_.front());
    timed_out_fifo_.pop_front();
  }
}

}  // namespace miniraid

#include "core/coordinator_policy.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

CoordinatorPolicy CoordinatorPolicy::Fixed(SiteId site) {
  CoordinatorPolicy policy(Kind::kFixed);
  policy.fixed_ = site;
  return policy;
}

CoordinatorPolicy CoordinatorPolicy::RoundRobin() {
  return CoordinatorPolicy(Kind::kRoundRobin);
}

CoordinatorPolicy CoordinatorPolicy::Uniform() {
  return CoordinatorPolicy(Kind::kUniform);
}

CoordinatorPolicy CoordinatorPolicy::Weighted(std::vector<double> weights) {
  CoordinatorPolicy policy(Kind::kWeighted);
  policy.weights_ = std::move(weights);
  return policy;
}

SiteId CoordinatorPolicy::Pick(const std::vector<SiteId>& up_sites,
                               Rng* rng) {
  MR_CHECK(!up_sites.empty()) << "no operational site to coordinate";
  switch (kind_) {
    case Kind::kFixed: {
      for (SiteId site : up_sites) {
        if (site == fixed_) return site;
      }
      return up_sites.front();
    }
    case Kind::kRoundRobin:
      return up_sites[counter_++ % up_sites.size()];
    case Kind::kUniform:
      return up_sites[rng->NextBounded(up_sites.size())];
    case Kind::kWeighted: {
      double total = 0.0;
      for (SiteId site : up_sites) {
        total += site < weights_.size() ? weights_[site] : 1.0;
      }
      double roll = rng->NextDouble() * total;
      for (SiteId site : up_sites) {
        const double w = site < weights_.size() ? weights_[site] : 1.0;
        if (roll < w) return site;
        roll -= w;
      }
      return up_sites.back();
    }
  }
  return up_sites.front();
}

std::string CoordinatorPolicy::name() const {
  switch (kind_) {
    case Kind::kFixed:
      return StrFormat("fixed(%u)", fixed_);
    case Kind::kRoundRobin:
      return "round-robin";
    case Kind::kUniform:
      return "uniform";
    case Kind::kWeighted:
      return "weighted";
  }
  return "?";
}

}  // namespace miniraid

#ifndef MINIRAID_CORE_SUBMIT_WINDOW_H_
#define MINIRAID_CORE_SUBMIT_WINDOW_H_

#include <cstdint>
#include <deque>

#include "common/thread_annotations.h"
#include "core/managing_site.h"
#include "txn/transaction.h"

namespace miniraid {

/// The pipelined-submission window both cluster backends share: at most
/// `max_inflight` transactions outstanding at the managing site, further
/// submissions queued in arrival order (backpressure) and dispatched as
/// replies free slots.
///
/// Single-context: every method (and the completion callbacks it wraps)
/// must run in the managing site's execution context, so no locking is
/// needed — the same contract ManagingSite itself has.
class SubmitWindow {
 public:
  /// `managing` must outlive this window. `max_inflight` 0 = unbounded.
  SubmitWindow(ManagingSite* managing, uint32_t max_inflight)
      : managing_(managing), window_(max_inflight) {}

  SubmitWindow(const SubmitWindow&) = delete;
  SubmitWindow& operator=(const SubmitWindow&) = delete;

  /// Dispatches immediately if a slot is free, else queues. `callback` is
  /// invoked exactly once with the reply; the next queued transaction (if
  /// any) is dispatched before the callback runs, keeping the pipe full.
  /// After Close(), the callback is instead invoked immediately with a
  /// synthesized kCoordinatorUnreachable reply.
  MR_RUNS_ON(managing)
  void Submit(const TxnSpec& txn, SiteId coordinator,
              ManagingSite::ReplyCallback callback);

  /// Rejects every queued (not-yet-dispatched) transaction with a
  /// synthesized kCoordinatorUnreachable reply, in arrival order, and makes
  /// all later Submit calls fail the same way. In-flight transactions are
  /// not touched: the managing site still owes each exactly one reply.
  /// Idempotent. Used by cluster shutdown so no submission callback is
  /// silently dropped.
  MR_RUNS_ON(managing) void Close();

  MR_RUNS_ON(managing) bool closed() const { return closed_; }
  MR_RUNS_ON(managing) uint32_t inflight() const { return inflight_; }
  MR_RUNS_ON(managing) size_t backlog_size() const { return backlog_.size(); }
  /// Total submissions that had to wait for a slot.
  MR_RUNS_ON(managing) uint64_t backlogged_total() const { return backlogged_total_; }
  MR_RUNS_ON(managing) uint32_t max_inflight_seen() const { return max_inflight_seen_; }

 private:
  struct Pending {
    TxnSpec txn;
    SiteId coordinator;
    ManagingSite::ReplyCallback callback;
  };

  void Dispatch(Pending pending);
  /// Invokes `pending.callback` with the synthesized rejection reply.
  static void Reject(Pending pending);

  ManagingSite* const managing_;
  const uint32_t window_;

  std::deque<Pending> backlog_;
  bool closed_ = false;
  uint32_t inflight_ = 0;
  uint32_t max_inflight_seen_ = 0;
  uint64_t backlogged_total_ = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_CORE_SUBMIT_WINDOW_H_

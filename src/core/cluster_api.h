#ifndef MINIRAID_CORE_CLUSTER_API_H_
#define MINIRAID_CORE_CLUSTER_API_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/invariants.h"
#include "core/managing_site.h"
#include "net/inproc_transport.h"
#include "net/reliable_channel.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "replication/site.h"
#include "sim/sim_runtime.h"
#include "txn/transaction.h"

namespace miniraid {

class Cluster;

/// Which substrate a cluster runs on. `kSim` is the deterministic
/// discrete-event simulator (virtual time, bit-for-bit repeatable); the
/// other two run one event-loop thread per site with real message passing —
/// in-process queues (`kInProc`) or TCP sockets on localhost (`kTcp`).
enum class ClusterBackend : uint8_t {
  kSim = 0,
  kInProc = 1,
  kTcp = 2,
};

std::string_view ClusterBackendName(ClusterBackend backend);

/// Everything needed to stand up a mini-RAID cluster on any backend. The
/// former `ClusterOptions` (sim) and `RealClusterOptions` surfaces are
/// merged here; fields that apply to one backend only say so. `site`
/// carries the protocol configuration; its n_sites/db_size/managing_site
/// fields are overwritten from the cluster-level values.
struct ClusterOptions {
  ClusterBackend backend = ClusterBackend::kSim;

  uint32_t n_sites = 2;
  uint32_t db_size = 50;
  SiteOptions site;
  ManagingSite::Options managing;

  /// Submission window: at most this many transactions are in flight at
  /// once; further SubmitTxn calls queue in arrival order until a slot
  /// frees (backpressure). 0 = unbounded. The client timeout of a queued
  /// transaction starts when it is dispatched, not when it is enqueued.
  uint32_t max_inflight = 0;

  /// Reliable-delivery layer (net/reliable_channel.h), backend-agnostic:
  /// with `reliable.enabled` every endpoint (sites + managing) sends and
  /// receives through a ReliableChannel, which retransmits lost messages
  /// with exponential backoff and suppresses duplicates at the receiver.
  /// Pair with per-transport fault injection (TransportFaults) to run the
  /// protocol over a lossy network.
  ReliableChannelOptions reliable;

  // -- sim backend only ----------------------------------------------------
  SimOptions sim;
  SimTransportOptions transport;

  // -- inproc backend only --------------------------------------------------
  InProcTransportOptions inproc;

  // -- tcp backend only ----------------------------------------------------
  TcpTransportOptions tcp;
  /// First port; site s listens on base_port + s. 0 picks a base derived
  /// from the pid and a per-process counter, keeping concurrent test runs
  /// and multiple clusters in one process apart.
  uint16_t base_port = 0;

  /// When true, the cluster runs the InvariantChecker over every site after
  /// each quiescent step (RunTxn / Fail / Recover) and aborts on the first
  /// violation. Sim backend only: the real backends have no global
  /// quiescent points during traffic (call CheckInvariants() explicitly at
  /// known-quiet moments instead).
  bool check_invariants = false;
  InvariantChecker::Options invariants;
};

/// Counters over everything submitted through a Cluster since start.
struct ClusterStats {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t unreachable = 0;
  /// Replies that arrived after their client timeout already fired — the
  /// caller was told kCoordinatorUnreachable for a transaction the cluster
  /// resolved anyway (ManagingSite::late_outcomes; see docs/API.md).
  uint64_t late_outcomes = 0;
  /// Messages accepted by the transport (all sites + managing).
  uint64_t messages_sent = 0;
  /// Messages dropped by transport fault injection.
  uint64_t messages_dropped = 0;
  /// Submissions that had to wait for a window slot (max_inflight).
  uint64_t backlogged = 0;
  /// Transactions in flight right now / high-water mark.
  uint32_t inflight = 0;
  uint32_t max_inflight_seen = 0;
  /// Reliable-channel counters aggregated over every endpoint (all zero
  /// when ClusterOptions::reliable.enabled is false).
  ChannelCounters channel;
};

namespace internal {

/// Heap-allocated completion state shared by a TxnHandle and the submit
/// path; never lives on a waiter's stack, so a reply can never race a
/// destroyed frame (the failure mode of per-txn stack condvars).
struct TxnWaitState {
  Mutex mu;
  CondVar cv;
  bool done MR_GUARDED_BY(mu) = false;
  /// Written (under `mu`) strictly before `done` flips and read only after
  /// `done` is observed true, so the lock release/acquire on `done` is the
  /// synchronization for `reply` too — TxnHandle::Get can safely hand out
  /// a plain reference.
  TxnResult reply;
  TxnId id = 0;

  bool IsDone() {
    MutexLock lock(mu);
    return done;
  }
};

}  // namespace internal

/// Future-like handle to one asynchronously submitted transaction.
/// `Get()` drives the owning cluster (simulator) or blocks (real backends)
/// until the reply arrives; the managing site guarantees exactly one reply
/// per submission (synthesizing kCoordinatorUnreachable on timeout), so
/// `Get()` always terminates. The handle must not outlive its cluster.
class TxnHandle {
 public:
  TxnHandle() = default;

  MR_RUNS_ON(any) bool valid() const { return state_ != nullptr; }
  MR_RUNS_ON(any) TxnId id() const { return state_ ? state_->id : 0; }

  /// True once the reply has arrived. Never blocks.
  MR_RUNS_ON(any) bool done() const { return state_ && state_->IsDone(); }

  /// Waits for the reply (running the simulation to completion under the
  /// sim backend). The reference stays valid as long as the handle lives.
  MR_RUNS_ON(client) const TxnResult& Get();

 private:
  friend class Cluster;
  TxnHandle(Cluster* cluster, std::shared_ptr<internal::TxnWaitState> state)
      : cluster_(cluster), state_(std::move(state)) {}

  Cluster* cluster_ = nullptr;
  std::shared_ptr<internal::TxnWaitState> state_;
};

/// The unified cluster surface: N database sites plus the managing site,
/// on any backend (see ClusterBackend). Everything experiments, tests and
/// benches need is expressed here once, so drivers are written once and
/// run against the simulator and the real runtimes unchanged.
///
/// Submission is asynchronous and pipelined: SubmitTxn returns immediately
/// (callback or TxnHandle form) and up to `options.max_inflight`
/// transactions proceed concurrently; the blocking RunTxn is a thin wrapper
/// over the same path. Completion callbacks run in the managing site's
/// execution context (the simulator's thread, or the managing event-loop
/// thread) — state touched only from callbacks and Post/ScheduleAfter
/// closures therefore needs no locking.
///
/// The surface is MR_RUNS_ON(client): it is what drivers, experiments and
/// tests call from their own threads, and it may block. Only Now / Post /
/// ScheduleAfter and the trivial accessors are MR_RUNS_ON(any) — they are
/// explicitly documented as safe from every context.
class Cluster {
 public:
  using ReplyCallback = ManagingSite::ReplyCallback;

  explicit Cluster(const ClusterOptions& options);
  virtual ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -- transaction submission ---------------------------------------------

  /// Submits `txn` to `coordinator`; `callback` is invoked exactly once
  /// with the reply, in the managing execution context. Subject to the
  /// submission window (see ClusterOptions::max_inflight).
  MR_RUNS_ON(client)
  virtual void SubmitTxn(const TxnSpec& txn, SiteId coordinator,
                         ReplyCallback callback) = 0;

  /// Future form of the above.
  MR_RUNS_ON(client) TxnHandle SubmitTxn(const TxnSpec& txn, SiteId coordinator);

  /// Blocking wrapper: submits and waits for the reply. Under the sim
  /// backend this also runs the simulation to quiescence and (with
  /// check_invariants) enforces the protocol invariants, preserving the
  /// paper experiments' serial semantics.
  MR_RUNS_ON(client)
  virtual TxnResult RunTxn(const TxnSpec& txn, SiteId coordinator);

  // -- failure control ------------------------------------------------------

  /// Fails / recovers a site through the managing site's control channel.
  /// Blocking: returns once the site observed the transition (and, under
  /// sim, the cluster is quiescent).
  MR_RUNS_ON(client) virtual void Fail(SiteId site) = 0;
  MR_RUNS_ON(client) virtual void Recover(SiteId site) = 0;

  // -- inspection -----------------------------------------------------------

  /// Sites whose local status is up.
  MR_RUNS_ON(client) virtual std::vector<SiteId> UpSites() const = 0;

  /// One snapshot per database site, in id order. Snapshots are
  /// individually consistent on every backend; cross-site guarantees (the
  /// cluster-wide invariants) hold at quiescence only.
  MR_RUNS_ON(client)
  virtual std::vector<SiteSnapshot> SnapshotSites() const = 0;

  /// Inconsistency measure for the figures: how many of `target`'s copies
  /// are fail-locked, per the operational sites' (authoritative) tables —
  /// the max across them (they agree at quiescence).
  MR_RUNS_ON(client) virtual uint32_t FailLockCountFor(SiteId target) const;

  /// Verifies invariant 1 (replica agreement): for every item, every copy
  /// whose fail-lock bit is clear in the authoritative table matches the
  /// freshest copy. Call at quiescence only.
  MR_RUNS_ON(client) [[nodiscard]] Status CheckReplicaAgreement() const;

  /// Runs the full invariant suite over the current state using the
  /// cluster's stateful checker. Empty result = every invariant holds.
  /// Call at quiescence only.
  MR_RUNS_ON(client)
  [[nodiscard]] std::vector<InvariantViolation> CheckInvariants();

  /// Aggregate submission / message counters.
  MR_RUNS_ON(client) virtual ClusterStats Stats() const = 0;

  // -- execution services (for drivers) -------------------------------------

  /// Current time: virtual under sim, steady-clock on the real backends.
  MR_RUNS_ON(any) virtual TimePoint Now() const = 0;

  /// Runs `fn` in the managing execution context as soon as possible /
  /// after `delay`. Safe from any thread.
  MR_RUNS_ON(any) virtual void Post(std::function<void()> fn) = 0;
  MR_RUNS_ON(any)
  virtual void ScheduleAfter(Duration delay, std::function<void()> fn) = 0;

  /// Drives execution until `done()` (evaluated in the managing execution
  /// context) returns true. Under sim this runs events (and ignores the
  /// timeout — virtual time is free); on the real backends it polls until
  /// the real-time deadline. Returns the final value of `done()`.
  MR_RUNS_ON(client)
  virtual bool Drive(const std::function<bool()>& done,
                     Duration timeout = Seconds(60)) = 0;

  /// Waits until `pred(site)` holds, evaluated in the site's execution
  /// context. Under sim this first runs to quiescence; on the real
  /// backends it polls until the deadline. Returns whether the predicate
  /// held.
  MR_RUNS_ON(client)
  virtual bool WaitUntil(SiteId site,
                         const std::function<bool(const Site&)>& pred,
                         Duration timeout = Seconds(10)) = 0;

  MR_RUNS_ON(any) uint32_t n_sites() const { return options_.n_sites; }
  MR_RUNS_ON(any) SiteId managing_id() const { return options_.n_sites; }
  MR_RUNS_ON(any) ClusterBackend backend() const { return options_.backend; }
  MR_RUNS_ON(any) const ClusterOptions& options() const { return options_; }

 protected:
  friend class TxnHandle;

  /// Blocks / drives until `state.done`. Implemented per backend.
  MR_RUNS_ON(client) virtual void AwaitTxn(internal::TxnWaitState& state) = 0;

  ClusterOptions options_;
  InvariantChecker checker_;
};

/// Builds a cluster for `options.backend` and starts it (binding sockets
/// under kTcp). The one entry point benches and tests should use.
Result<std::unique_ptr<Cluster>> MakeCluster(const ClusterOptions& options);

}  // namespace miniraid

#endif  // MINIRAID_CORE_CLUSTER_API_H_

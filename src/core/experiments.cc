#include "core/experiments.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {
namespace {

ClusterOptions ToClusterOptions(const ScenarioConfig& config) {
  ClusterOptions options;
  options.n_sites = config.n_sites;
  options.db_size = config.db_size;
  options.site = config.site;
  options.sim = config.sim;
  options.transport = config.transport;
  return options;
}

UniformWorkloadOptions ToWorkloadOptions(const ScenarioConfig& config) {
  UniformWorkloadOptions options;
  options.db_size = config.db_size;
  options.max_txn_size = config.max_txn_size;
  options.write_fraction = config.write_fraction;
  options.zipf_theta = config.zipf_theta;
  options.seed = config.seed;
  return options;
}

}  // namespace

ScenarioResult RunScenarioImplInternal(const ScenarioConfig& config,
                                       const std::vector<ScenarioStep>& steps,
                                       CoordinatorPolicy default_policy,
                                       SimCluster* cluster) {
  std::unique_ptr<WorkloadGenerator> workload_owner =
      config.workload_factory
          ? config.workload_factory()
          : std::make_unique<UniformWorkload>(ToWorkloadOptions(config));
  WorkloadGenerator& workload = *workload_owner;
  Rng policy_rng(config.seed ^ 0x5eedc0de5eedc0deULL);

  ScenarioResult result;
  result.aborts_by_coordinator.assign(config.n_sites, 0);
  uint64_t txn_no = 0;

  auto all_recovered = [&] {
    for (SiteId s = 0; s < config.n_sites; ++s) {
      if (cluster->FailLockCountFor(s) != 0) return false;
    }
    return true;
  };

  auto run_one = [&](CoordinatorPolicy& policy) {
    const std::vector<SiteId> up = cluster->UpSites();
    MR_CHECK(!up.empty()) << "scenario left no operational site";
    const SiteId coordinator = policy.Pick(up, &policy_rng);
    const TxnSpec txn = workload.Next();
    ++txn_no;
    const TxnResult reply = cluster->RunTxn(txn, coordinator);

    TxnRecord record;
    record.txn_no = txn_no;
    record.coordinator = coordinator;
    record.outcome = reply.outcome;
    record.copier_count = reply.copier_count;
    for (SiteId s = 0; s < config.n_sites; ++s) {
      record.fail_locks_per_site.push_back(cluster->FailLockCountFor(s));
    }
    result.txns.push_back(std::move(record));

    switch (reply.outcome) {
      case TxnOutcome::kCommitted:
        ++result.committed;
        result.copier_txns_total += reply.copier_count;
        break;
      case TxnOutcome::kCoordinatorUnreachable:
        ++result.unreachable;
        break;
      case TxnOutcome::kAbortedCopierFailed:
        ++result.aborted;
        ++result.aborted_data_unavailable;
        ++result.aborts_by_coordinator[coordinator];
        break;
      case TxnOutcome::kAbortedParticipantFailed:
        ++result.aborted;
        ++result.aborted_participant_failure;
        break;
      default:
        ++result.aborted;
        break;
    }
  };

  for (const ScenarioStep& step : steps) {
    switch (step.kind) {
      case ScenarioStep::Kind::kFail:
        cluster->Fail(step.site);
        break;
      case ScenarioStep::Kind::kRecover:
        cluster->Recover(step.site);
        break;
      case ScenarioStep::Kind::kRunTxns: {
        CoordinatorPolicy policy = step.policy.value_or(default_policy);
        for (uint32_t i = 0; i < step.count; ++i) run_one(policy);
        break;
      }
      case ScenarioStep::Kind::kRunUntilRecovered: {
        CoordinatorPolicy policy = step.policy.value_or(default_policy);
        for (uint32_t i = 0; i < step.count && !all_recovered(); ++i) {
          run_one(policy);
        }
        break;
      }
    }
  }

  for (SiteId s = 0; s < config.n_sites; ++s) {
    result.batch_copiers_total +=
        cluster->site(s).counters().batch_copier_transactions;
  }
  result.consistency = cluster->CheckReplicaAgreement();
  return result;
}

ScenarioResult RunScenario(const ScenarioConfig& config,
                           const std::vector<ScenarioStep>& steps,
                           CoordinatorPolicy default_policy) {
  auto cluster_owner = MakeSimCluster(ToClusterOptions(config));
  SimCluster& cluster = *cluster_owner;
  return RunScenarioImplInternal(config, steps, std::move(default_policy),
                                 &cluster);
}

// ---------------------------------------------------------------------------
// Experiment 2 (Figure 1).
// ---------------------------------------------------------------------------

Exp2Result RunExperiment2(const Exp2Config& config) {
  ScenarioConfig scenario = config.scenario;
  scenario.n_sites = 2;

  std::vector<double> weights = {config.recovering_site_weight, 1.0};
  const std::vector<ScenarioStep> steps = {
      ScenarioStep::Fail(0),
      ScenarioStep::RunTxns(config.down_txns, CoordinatorPolicy::Fixed(1)),
      ScenarioStep::Recover(0),
      ScenarioStep::RunUntilRecovered(
          config.recovery_cap, CoordinatorPolicy::Weighted(weights)),
  };

  Exp2Result result;
  result.scenario =
      RunScenario(scenario, steps, CoordinatorPolicy::Uniform());

  const auto& txns = result.scenario.txns;
  // Peak fail-locks for site 0 = the value when it came back up (the graph's
  // peak, reached at transaction `down_txns`).
  uint32_t peak = 0;
  for (const TxnRecord& rec : txns) {
    peak = std::max(peak, rec.fail_locks_per_site[0]);
  }
  result.peak_fail_locks = peak;

  // Recovery phase: transactions after down_txns.
  uint64_t full_recovery_txn = 0;
  uint64_t first10_txn = 0;
  uint64_t last10_start_txn = 0;
  for (const TxnRecord& rec : txns) {
    if (rec.txn_no <= config.down_txns) continue;
    const uint32_t count = rec.fail_locks_per_site[0];
    if (first10_txn == 0 && peak >= 10 && count <= peak - 10) {
      first10_txn = rec.txn_no;
    }
    if (last10_start_txn == 0 && count <= 10) last10_start_txn = rec.txn_no;
    if (full_recovery_txn == 0 && count == 0) {
      full_recovery_txn = rec.txn_no;
      break;
    }
  }
  if (full_recovery_txn != 0) {
    result.txns_to_full_recovery =
        static_cast<uint32_t>(full_recovery_txn - config.down_txns);
    if (first10_txn != 0) {
      result.first10_txns =
          static_cast<uint32_t>(first10_txn - config.down_txns);
    }
    if (last10_start_txn != 0) {
      result.last10_txns =
          static_cast<uint32_t>(full_recovery_txn - last10_start_txn);
    }
  }
  for (const TxnRecord& rec : txns) {
    if (rec.txn_no > config.down_txns) result.copier_txns += rec.copier_count;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Experiment 3 (Figures 2 and 3).
// ---------------------------------------------------------------------------

namespace {

Exp3Result FinishExp3(ScenarioResult scenario, uint32_t n_sites) {
  Exp3Result result;
  result.peak_per_site.assign(n_sites, 0);
  for (const TxnRecord& rec : scenario.txns) {
    for (SiteId s = 0; s < n_sites; ++s) {
      result.peak_per_site[s] =
          std::max(result.peak_per_site[s], rec.fail_locks_per_site[s]);
    }
  }
  result.scenario = std::move(scenario);
  return result;
}

}  // namespace

Exp3Result RunExperiment3Scenario1(const ScenarioConfig& config) {
  ScenarioConfig scenario = config;
  scenario.n_sites = 2;
  // Paper §4.2.1: fail 0 for txns 1-25 (processed on site 1); bring 0 up and
  // fail 1 for txns 26-50 (processed on site 0); bring 1 up; txns 51-120 on
  // both sites.
  const std::vector<ScenarioStep> steps = {
      ScenarioStep::Fail(0),
      ScenarioStep::RunTxns(25, CoordinatorPolicy::Fixed(1)),
      ScenarioStep::Recover(0),
      ScenarioStep::Fail(1),
      ScenarioStep::RunTxns(25, CoordinatorPolicy::Fixed(0)),
      ScenarioStep::Recover(1),
      ScenarioStep::RunTxns(70, CoordinatorPolicy::Uniform()),
  };
  return FinishExp3(
      RunScenario(scenario, steps, CoordinatorPolicy::Uniform()), 2);
}

Exp3Result RunExperiment3Scenario2(const ScenarioConfig& config) {
  ScenarioConfig scenario = config;
  scenario.n_sites = 4;
  // Paper §4.2.2: sites 0..3 fail singly in succession, 25 transactions
  // each, processed on the remaining sites; then txns 101-160 on all sites.
  std::vector<ScenarioStep> steps;
  for (SiteId s = 0; s < 4; ++s) {
    steps.push_back(ScenarioStep::Fail(s));
    steps.push_back(ScenarioStep::RunTxns(25, CoordinatorPolicy::Uniform()));
    steps.push_back(ScenarioStep::Recover(s));
  }
  steps.push_back(ScenarioStep::RunTxns(60, CoordinatorPolicy::Uniform()));
  return FinishExp3(
      RunScenario(scenario, steps, CoordinatorPolicy::Uniform()), 4);
}

// ---------------------------------------------------------------------------
// Experiment 1: overhead measurements.
// ---------------------------------------------------------------------------

namespace {

ClusterOptions Exp1ClusterOptions(const Exp1Config& config,
                                  bool maintain_fail_locks) {
  ClusterOptions options;
  options.n_sites = config.n_sites;
  options.db_size = config.db_size;
  options.site.maintain_fail_locks = maintain_fail_locks;
  options.site.costs = config.costs;
  options.site.ack_timeout = Seconds(5);
  options.sim.shared_cpu = config.shared_cpu;
  options.transport.message_latency = config.message_latency;
  return options;
}

UniformWorkloadOptions Exp1WorkloadOptions(const Exp1Config& config) {
  UniformWorkloadOptions options;
  options.db_size = config.db_size;
  options.max_txn_size = config.max_txn_size;
  options.seed = config.seed;
  return options;
}

void ResetTimingStats(SimCluster& cluster) {
  for (SiteId s = 0; s < cluster.n_sites(); ++s) {
    SiteCounters& counters = cluster.site(s).mutable_counters();
    counters.coord_txn_time.Clear();
    counters.coord_txn_copier_time.Clear();
    counters.participant_time.Clear();
    counters.copy_serve_time.Clear();
    counters.clear_locks_time.Clear();
  }
}

}  // namespace

Exp1FailLockOverheadResult RunExp1FailLockOverhead(const Exp1Config& config) {
  Exp1FailLockOverheadResult result;
  for (const bool maintain : {false, true}) {
    auto cluster_owner = MakeSimCluster(Exp1ClusterOptions(config, maintain));
    SimCluster& cluster = *cluster_owner;
    UniformWorkload workload(Exp1WorkloadOptions(config));
    // Warm up, then measure the same transaction stream (the paper ran a
    // set of transactions without the fail-locks code, then "re-ran the
    // same set" with it; a fixed seed gives the identical set here).
    for (uint32_t i = 0; i < config.warmup_txns; ++i) {
      (void)cluster.RunTxn(workload.Next(), /*coordinator=*/0);
    }
    ResetTimingStats(cluster);
    for (uint32_t i = 0; i < config.measured_txns; ++i) {
      (void)cluster.RunTxn(workload.Next(), /*coordinator=*/0);
    }
    const double coord_ms =
        cluster.site(0).counters().coord_txn_time.MeanMillis();
    DurationStats participant;
    for (SiteId s = 1; s < config.n_sites; ++s) {
      participant.MergeFrom(cluster.site(s).counters().participant_time);
    }
    const double part_ms = participant.MeanMillis();
    if (maintain) {
      result.coord_with_ms = coord_ms;
      result.part_with_ms = part_ms;
    } else {
      result.coord_without_ms = coord_ms;
      result.part_without_ms = part_ms;
    }
  }
  return result;
}

Exp1ControlResult RunExp1Control(const Exp1Config& config) {
  auto cluster_owner = MakeSimCluster(Exp1ClusterOptions(config, /*maintain_fail_locks=*/true));
  SimCluster& cluster = *cluster_owner;
  UniformWorkload workload(Exp1WorkloadOptions(config));
  const SiteId victim = config.n_sites - 1;

  // Warm up with everything operational.
  for (uint32_t i = 0; i < config.warmup_txns; ++i) {
    (void)cluster.RunTxn(workload.Next(), /*coordinator=*/0);
  }
  // Fail the victim. The next transaction's coordinator detects the silence
  // (prepare-ack timeout), aborts, and runs control type 2 — which is where
  // the type-2 receive costs get measured.
  cluster.Fail(victim);
  for (uint32_t i = 0; i < 30; ++i) {
    (void)cluster.RunTxn(workload.Next(), /*coordinator=*/0);
  }
  // Recover the victim: control type 1 at the recovering and the
  // operational sites.
  cluster.Recover(victim);

  Exp1ControlResult result;
  result.type1_recovering_ms =
      cluster.site(victim).counters().recovery_time.MeanMillis();
  DurationStats serve;
  DurationStats type2;
  const double latency_ms = ToMillis(config.message_latency);
  for (SiteId s = 0; s < config.n_sites; ++s) {
    if (s == victim) continue;
    const SiteCounters& counters = cluster.site(s).counters();
    if (!counters.type1_serve_time.empty()) {
      serve.Add(counters.type1_serve_time.Mean());
    }
    if (!counters.type2_receive_time.empty()) {
      type2.Add(counters.type2_receive_time.Mean());
    }
  }
  // The paper's figures include the inter-site send; add one message
  // latency to the receiver-side processing time.
  result.type1_operational_ms =
      serve.empty() ? 0 : serve.MeanMillis() + latency_ms;
  result.type2_ms = type2.empty() ? 0 : type2.MeanMillis() + latency_ms;
  return result;
}

Exp1CopierResult RunExp1Copier(const Exp1Config& config) {
  auto cluster_owner = MakeSimCluster(Exp1ClusterOptions(config, /*maintain_fail_locks=*/true));
  SimCluster& cluster = *cluster_owner;
  UniformWorkload workload(Exp1WorkloadOptions(config));
  const SiteId victim = config.n_sites - 1;

  for (uint32_t i = 0; i < config.warmup_txns; ++i) {
    (void)cluster.RunTxn(workload.Next(), /*coordinator=*/0);
  }
  cluster.Fail(victim);
  // Accumulate fail-locks for the victim.
  for (uint32_t i = 0; i < 60; ++i) {
    (void)cluster.RunTxn(workload.Next(), /*coordinator=*/i % victim);
  }
  cluster.Recover(victim);
  ResetTimingStats(cluster);

  // Route transactions to the recovering site; reads of fail-locked copies
  // generate copier transactions on demand.
  uint32_t with_copier_samples = 0;
  for (uint32_t i = 0; i < 300 && with_copier_samples < 30; ++i) {
    const TxnResult reply = cluster.RunTxn(workload.Next(), victim);
    if (reply.copier_count > 0) ++with_copier_samples;
  }

  Exp1CopierResult result;
  const double latency_ms = ToMillis(config.message_latency);
  result.txn_with_copier_ms =
      cluster.site(victim).counters().coord_txn_copier_time.empty()
          ? 0
          : cluster.site(victim).counters().coord_txn_copier_time.MeanMillis();
  // The +45% baseline: the same configuration's plain transaction time with
  // fail-lock maintenance on (paper table §2.2.1).
  result.txn_plain_ms = RunExp1FailLockOverhead(config).coord_with_ms;
  DurationStats serve;
  DurationStats clear;
  for (SiteId s = 0; s < config.n_sites; ++s) {
    const SiteCounters& counters = cluster.site(s).counters();
    if (!counters.copy_serve_time.empty()) {
      serve.Add(counters.copy_serve_time.Mean());
    }
    if (!counters.clear_locks_time.empty()) {
      clear.Add(counters.clear_locks_time.Mean());
    }
  }
  result.copy_serve_ms = serve.empty() ? 0 : serve.MeanMillis() + latency_ms;
  result.clear_locks_ms =
      clear.empty() ? 0 : clear.MeanMillis() + latency_ms;
  if (result.txn_plain_ms > 0) {
    result.increase_pct = 100.0 *
                          (result.txn_with_copier_ms - result.txn_plain_ms) /
                          result.txn_plain_ms;
  }
  return result;
}

}  // namespace miniraid

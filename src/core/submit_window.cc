#include "core/submit_window.h"

#include <algorithm>
#include <utility>

namespace miniraid {

void SubmitWindow::Submit(const TxnSpec& txn, SiteId coordinator,
                          ManagingSite::ReplyCallback callback) {
  Pending pending{txn, coordinator, std::move(callback)};
  if (closed_) {
    Reject(std::move(pending));
    return;
  }
  if (window_ != 0 && inflight_ >= window_) {
    ++backlogged_total_;
    backlog_.push_back(std::move(pending));
    return;
  }
  Dispatch(std::move(pending));
}

void SubmitWindow::Close() {
  if (closed_) return;
  closed_ = true;
  // Swap the backlog out first: a rejection callback may call Submit again
  // (which now rejects directly) and must not observe or mutate a
  // half-drained queue.
  std::deque<Pending> rejected;
  rejected.swap(backlog_);
  for (Pending& pending : rejected) Reject(std::move(pending));
}

void SubmitWindow::Reject(Pending pending) {
  TxnResult reply;
  reply.txn = pending.txn.id;
  reply.outcome = TxnOutcome::kCoordinatorUnreachable;
  pending.callback(reply);
}

void SubmitWindow::Dispatch(Pending pending) {
  ++inflight_;
  max_inflight_seen_ = std::max(max_inflight_seen_, inflight_);
  ManagingSite::ReplyCallback callback = std::move(pending.callback);
  managing_->Submit(
      pending.txn, pending.coordinator,
      [this, callback = std::move(callback)](const TxnResult& reply) {
        --inflight_;
        // Refill the slot before running user code so the pipe never goes
        // idle while a queued transaction is waiting.
        if (!backlog_.empty() && (window_ == 0 || inflight_ < window_)) {
          Pending next = std::move(backlog_.front());
          backlog_.pop_front();
          Dispatch(std::move(next));
        }
        callback(reply);
      });
}

}  // namespace miniraid

#include "core/submit_window.h"

#include <algorithm>
#include <utility>

namespace miniraid {

void SubmitWindow::Submit(const TxnSpec& txn, SiteId coordinator,
                          ManagingSite::ReplyCallback callback) {
  Pending pending{txn, coordinator, std::move(callback)};
  if (window_ != 0 && inflight_ >= window_) {
    ++backlogged_total_;
    backlog_.push_back(std::move(pending));
    return;
  }
  Dispatch(std::move(pending));
}

void SubmitWindow::Dispatch(Pending pending) {
  ++inflight_;
  max_inflight_seen_ = std::max(max_inflight_seen_, inflight_);
  ManagingSite::ReplyCallback callback = std::move(pending.callback);
  managing_->Submit(
      pending.txn, pending.coordinator,
      [this, callback = std::move(callback)](const TxnReplyArgs& reply) {
        --inflight_;
        // Refill the slot before running user code so the pipe never goes
        // idle while a queued transaction is waiting.
        if (!backlog_.empty() && (window_ == 0 || inflight_ < window_)) {
          Pending next = std::move(backlog_.front());
          backlog_.pop_front();
          Dispatch(std::move(next));
        }
        callback(reply);
      });
}

}  // namespace miniraid

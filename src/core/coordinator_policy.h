#ifndef MINIRAID_CORE_COORDINATOR_POLICY_H_
#define MINIRAID_CORE_COORDINATOR_POLICY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace miniraid {

/// How the managing site chooses the coordinating site for each
/// transaction. The paper leaves this implicit ("initiate a database
/// transaction to a site"); the Figure-1 data implies transactions were
/// routed overwhelmingly to the operational site during recovery, so the
/// policy is explicit and sweepable here (DESIGN.md interpretation note).
class CoordinatorPolicy {
 public:
  /// Every transaction goes to `site` (if it is up; otherwise the
  /// lowest-id up site).
  static CoordinatorPolicy Fixed(SiteId site);

  /// Cycle through the up sites.
  static CoordinatorPolicy RoundRobin();

  /// Uniformly random among up sites.
  static CoordinatorPolicy Uniform();

  /// Weighted random among up sites; `weights[s]` is site s's relative
  /// probability mass (sites with no entry get weight 1).
  static CoordinatorPolicy Weighted(std::vector<double> weights);

  /// Picks a coordinator from `up_sites` (nonempty, ascending).
  SiteId Pick(const std::vector<SiteId>& up_sites, Rng* rng);

  std::string name() const;

 private:
  enum class Kind { kFixed, kRoundRobin, kUniform, kWeighted };

  explicit CoordinatorPolicy(Kind kind) : kind_(kind) {}

  Kind kind_;
  SiteId fixed_ = 0;
  std::vector<double> weights_;
  uint64_t counter_ = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_CORE_COORDINATOR_POLICY_H_

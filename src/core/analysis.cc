#include "core/analysis.h"

#include <cmath>

namespace miniraid {
namespace analysis {

double ExpectedOpsPerTxn(uint32_t max_txn_size) {
  return (1.0 + double(max_txn_size)) / 2.0;
}

double ExpectedWritesPerTxn(uint32_t max_txn_size, double write_fraction) {
  return ExpectedOpsPerTxn(max_txn_size) * write_fraction;
}

double ExpectedFailLocksAfter(uint32_t db_size, uint32_t max_txn_size,
                              double write_fraction, uint32_t txns) {
  const double writes =
      double(txns) * ExpectedWritesPerTxn(max_txn_size, write_fraction);
  const double miss = std::pow(1.0 - 1.0 / double(db_size), writes);
  return double(db_size) * (1.0 - miss);
}

double ExpectedTxnsToClear(uint32_t db_size, uint32_t max_txn_size,
                           double write_fraction, uint32_t locked) {
  double writes_needed = 0;
  for (uint32_t k = 1; k <= locked; ++k) {
    writes_needed += double(db_size) / double(k);
  }
  return writes_needed / ExpectedWritesPerTxn(max_txn_size, write_fraction);
}

uint64_t MessagesPerCommit(uint32_t participants) {
  // client request + (prepare, prepare-ack, commit, commit-ack) per
  // participant + client reply.
  return 2 + 4ull * participants;
}

double CopierDemandProbability(uint32_t db_size, uint32_t max_txn_size,
                               double write_fraction, uint32_t locked) {
  const double stale_fraction = double(locked) / double(db_size);
  const double read_fraction = 1.0 - write_fraction;
  double total = 0;
  for (uint32_t size = 1; size <= max_txn_size; ++size) {
    // Given `size` operations, each is a read of a stale item with
    // probability read_fraction * stale_fraction.
    const double none =
        std::pow(1.0 - read_fraction * stale_fraction, double(size));
    total += (1.0 - none) / double(max_txn_size);
  }
  return total;
}

}  // namespace analysis
}  // namespace miniraid

#ifndef MINIRAID_CORE_MANAGING_SITE_H_
#define MINIRAID_CORE_MANAGING_SITE_H_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "net/transport.h"
#include "txn/transaction.h"

namespace miniraid {

/// The paper's managing site: "interactive control of system actions ...
/// used to cause sites to fail and recover and to initiate a database
/// transaction to a site". It speaks the same message channel as the
/// database sites but holds no replica and never counts as operational.
///
/// The API is asynchronous (callback on completion) so the same code runs
/// under the simulator and the real runtimes; drivers layer their own
/// blocking on top.
class ManagingSite : public MessageHandler {
 public:
  struct Options {
    /// How long to wait for a coordinator's reply before declaring it
    /// unreachable (it crashed mid-transaction, or was down all along).
    Duration client_timeout = Seconds(10);
  };

  ManagingSite(SiteId id, Transport* transport, SiteRuntime* runtime,
               const Options& options);
  ManagingSite(SiteId id, Transport* transport, SiteRuntime* runtime)
      : ManagingSite(id, transport, runtime, Options{}) {}

  using ReplyCallback = std::function<void(const TxnResult&)>;

  /// Sends `txn` to `coordinator` and invokes `callback` exactly once: with
  /// the coordinator's reply, or with outcome kCoordinatorUnreachable after
  /// the client timeout. The paper's experiments submit serially
  /// (assumption 2), but multiple transactions may be outstanding — sites
  /// queue overlapping requests and still execute serially each.
  MR_RUNS_ON(managing)
  void Submit(const TxnSpec& txn, SiteId coordinator, ReplyCallback callback);

  /// True while any submitted transaction has neither replied nor timed
  /// out.
  MR_RUNS_ON(managing) bool HasPending() const { return !pending_.empty(); }
  MR_RUNS_ON(managing) size_t PendingCount() const { return pending_.size(); }

  /// Simulates a crash of `site` (paper: "site failure was simulated by
  /// sending a message to a site to indicate that the site should not
  /// participate in any further system actions").
  MR_RUNS_ON(managing) void FailSite(SiteId site);

  /// Initiates recovery (control transaction type 1) at `site`.
  MR_RUNS_ON(managing) void RecoverSite(SiteId site);

  /// Asks `site` to terminate cleanly.
  MR_RUNS_ON(managing) void Shutdown(SiteId site);

  MR_RUNS_ON(managing) void OnMessage(const Message& msg) override;

  // -- tallies over all submitted transactions ---------------------------
  MR_RUNS_ON(managing) uint64_t submitted() const { return submitted_; }
  MR_RUNS_ON(managing) uint64_t committed() const { return committed_; }
  MR_RUNS_ON(managing) uint64_t aborted() const { return aborted_; }
  MR_RUNS_ON(managing) uint64_t unreachable() const { return unreachable_; }

  /// Replies that arrived AFTER the client timeout already fired for their
  /// transaction. Each one is a transaction whose caller was told
  /// kCoordinatorUnreachable while the cluster actually resolved it — most
  /// often a commit racing the timeout on a slow or lossy network. The
  /// caller-visible tallies are not retroactively rewritten (the caller
  /// already acted on the timeout); this counter sizes the lie. A non-zero
  /// value under loss means client_timeout is too tight for the retry
  /// chain underneath it. See docs/API.md.
  MR_RUNS_ON(managing) uint64_t late_outcomes() const { return late_outcomes_; }

  MR_RUNS_ON(any) SiteId id() const { return id_; }

 private:
  struct PendingTxn {
    ReplyCallback callback;
    TimerId timer = kInvalidTimer;
  };

  // Timer callbacks fire on the managing site's own loop, which IS the
  // managing execution context — annotated so the shared-state pass anchors
  // them there instead of inferring the generic timer (loop) context.
  MR_RUNS_ON(managing) void ClientTimeout(TxnId txn);
  MR_RUNS_ON(managing) void RecordTimedOut(TxnId txn);

  const SiteId id_;
  Transport* const transport_;
  SiteRuntime* const runtime_;
  const Options options_;

  std::map<TxnId, PendingTxn> pending_;
  /// Transactions whose client timeout fired, kept (bounded FIFO) so a
  /// late reply is distinguishable from a duplicate of an already-counted
  /// reply — the difference between "the cluster contradicted what we told
  /// the caller" (late_outcomes_) and harmless retransmission noise.
  std::set<TxnId> timed_out_;
  std::deque<TxnId> timed_out_fifo_;
  static constexpr size_t kMaxTimedOut = 1024;

  uint64_t submitted_ = 0;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t unreachable_ = 0;
  uint64_t late_outcomes_ = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_CORE_MANAGING_SITE_H_

#include "core/cluster_api.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {

std::string_view ClusterBackendName(ClusterBackend backend) {
  switch (backend) {
    case ClusterBackend::kSim:
      return "sim";
    case ClusterBackend::kInProc:
      return "inproc";
    case ClusterBackend::kTcp:
      return "tcp";
  }
  return "unknown";
}

const TxnResult& TxnHandle::Get() {
  MR_CHECK(valid()) << "Get() on an empty TxnHandle";
  if (!state_->IsDone()) cluster_->AwaitTxn(*state_);
  return state_->reply;
}

namespace {

SiteOptions ResolveSiteOptions(uint32_t n_sites, uint32_t db_size,
                               SiteOptions site) {
  site.n_sites = n_sites;
  site.db_size = db_size;
  site.managing_site = n_sites;
  return site;
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), checker_(options.invariants) {
  options_.site =
      ResolveSiteOptions(options_.n_sites, options_.db_size, options_.site);
}

Cluster::~Cluster() = default;

TxnHandle Cluster::SubmitTxn(const TxnSpec& txn, SiteId coordinator) {
  auto state = std::make_shared<internal::TxnWaitState>();
  state->id = txn.id;
  SubmitTxn(txn, coordinator, [state](const TxnResult& reply) {
    {
      MutexLock lock(state->mu);
      state->reply = reply;
      state->done = true;
    }
    // Notify with the lock released: a waiter must never wake into a
    // still-held mutex (the notify-after-unlock rule the lint's
    // callback-under-lock pass enforces for this layer).
    state->cv.NotifyAll();
  });
  return TxnHandle(this, std::move(state));
}

TxnResult Cluster::RunTxn(const TxnSpec& txn, SiteId coordinator) {
  return SubmitTxn(txn, coordinator).Get();
}

uint32_t Cluster::FailLockCountFor(SiteId target) const {
  uint32_t count = 0;
  for (const SiteSnapshot& snap : SnapshotSites()) {
    if (snap.status != SiteStatus::kUp) continue;
    count = std::max(count, snap.fail_locks.CountForSite(target));
  }
  return count;
}

Status Cluster::CheckReplicaAgreement() const {
  // Replica agreement is the write-coverage invariant; run just that check
  // through a throwaway (stateless) checker.
  InvariantChecker::Options options;
  options.check_fail_lock_shape = false;
  options.check_fail_lock_session = false;
  options.check_fail_lock_agreement = false;
  options.check_session_monotonicity = false;
  InvariantChecker checker(options);
  const std::vector<InvariantViolation> violations =
      checker.Check(SnapshotSites());
  if (violations.empty()) return Status::Ok();
  return Status::Internal(violations.front().ToString());
}

std::vector<InvariantViolation> Cluster::CheckInvariants() {
  return checker_.Check(SnapshotSites());
}

}  // namespace miniraid

#include "check/abstract_model.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid::check {

namespace {

/// Lattice join of two session-vector entries, matching
/// SessionVector::MergeFrom: the higher session wins; at equal sessions,
/// down wins (failure news about the current epoch beats optimism).
PeerView Join(PeerView a, PeerView b) {
  if (a.session != b.session) return a.session > b.session ? a : b;
  if (!a.up) return a;
  return b;
}

uint8_t FullMask(uint32_t n) { return static_cast<uint8_t>((1u << n) - 1); }

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Finalizer from splitmix64; spreads FNV output so the XOR-accumulated
/// fingerprint is robust.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void ValidateConfig(const AbstractConfig& cfg) {
  MR_CHECK(cfg.n_sites >= 2 && cfg.n_sites <= kMaxModelSites)
      << "abstract model supports 2.." << kMaxModelSites << " sites";
  MR_CHECK(cfg.n_items >= 1 && cfg.n_items <= kMaxModelItems)
      << "abstract model supports 1.." << kMaxModelItems << " items";
}

bool Quiescent(const AbstractConfig& cfg, const ModelState& s) {
  for (uint32_t i = 0; i < cfg.n_sites; ++i) {
    if (s.rec[i].active) return false;
  }
  for (uint32_t x = 0; x < cfg.n_items; ++x) {
    // A commit between prepare and apply is an in-flight coordination:
    // the real checker's quiescent cuts require those drained too.
    if (s.pend[x].active) return false;
  }
  return true;
}

}  // namespace

ModelState InitialState(const AbstractConfig& cfg) {
  ValidateConfig(cfg);
  return ModelState{};
}

std::string ModelState::Encode(const AbstractConfig& cfg,
                               const uint8_t* site_perm,
                               const uint8_t* item_perm) const {
  // site_perm[new_index] = old_index (likewise item_perm): the encoding
  // reads the state through the relabeling, so two states are symmetric
  // exactly when some relabeled encoding matches.
  std::string out;
  out.reserve(4 + cfg.n_sites * (2 + 2 * cfg.n_sites + 2 * cfg.n_items) +
              cfg.n_sites * (4 + 2 * cfg.n_sites + 3 * cfg.n_items) +
              cfg.n_items);
  auto remap_bits = [&](uint8_t row) {
    uint8_t mapped = 0;
    for (uint32_t nk = 0; nk < cfg.n_sites; ++nk) {
      if ((row >> site_perm[nk]) & 1u) mapped |= static_cast<uint8_t>(1u << nk);
    }
    return static_cast<char>(mapped);
  };
  for (uint32_t ni = 0; ni < cfg.n_sites; ++ni) {
    const ModelSite& s = site[site_perm[ni]];
    out.push_back(static_cast<char>(s.mode));
    for (uint32_t nj = 0; nj < cfg.n_sites; ++nj) {
      const PeerView& v = s.view[site_perm[nj]];
      out.push_back(static_cast<char>(v.session));
      out.push_back(v.up ? 1 : 0);
    }
    for (uint32_t nx = 0; nx < cfg.n_items; ++nx) {
      out.push_back(remap_bits(s.locks[item_perm[nx]]));
      out.push_back(static_cast<char>(s.ver[item_perm[nx]]));
    }
  }
  for (uint32_t ni = 0; ni < cfg.n_sites; ++ni) {
    const ModelRecovery& r = rec[site_perm[ni]];
    out.push_back(r.active ? 1 : 0);
    if (!r.active) continue;  // inactive recoveries are all-equal
    out.push_back(static_cast<char>(r.new_session));
    out.push_back(remap_bits(r.pending));
    out.push_back(r.any_info ? 1 : 0);
    for (uint32_t nx = 0; nx < cfg.n_items; ++nx) {
      out.push_back(remap_bits(r.info_locks[item_perm[nx]]));
      out.push_back(remap_bits(r.touched[item_perm[nx]]));
      out.push_back(remap_bits(r.window_value[item_perm[nx]]));
    }
    for (uint32_t nj = 0; nj < cfg.n_sites; ++nj) {
      const PeerView& v = r.info_view[site_perm[nj]];
      out.push_back(static_cast<char>(v.session));
      out.push_back(v.up ? 1 : 0);
    }
  }
  for (uint32_t nx = 0; nx < cfg.n_items; ++nx) {
    const ModelPending& p = pend[item_perm[nx]];
    out.push_back(p.active ? 1 : 0);
    if (!p.active) continue;  // inactive slots are all-equal
    // The coordinator is a site index; encode it as a one-hot mask so the
    // same bit-remapping as the lock rows relabels it.
    out.push_back(remap_bits(static_cast<uint8_t>(1u << p.coord)));
    out.push_back(remap_bits(p.participants));
  }
  for (uint32_t nx = 0; nx < cfg.n_items; ++nx) {
    out.push_back(static_cast<char>(latest[item_perm[nx]]));
  }
  out.push_back(static_cast<char>(commits_used));
  out.push_back(static_cast<char>(crashes_used));
  out.push_back(static_cast<char>(refreshes_used));
  return out;
}

std::string ModelState::Dump(const AbstractConfig& cfg) const {
  std::string out;
  static constexpr const char* kModeName[] = {"up", "down", "recovering"};
  for (uint32_t i = 0; i < cfg.n_sites; ++i) {
    const ModelSite& s = site[i];
    out += StrFormat("site %d: %s view=[", i,
                     kModeName[static_cast<int>(s.mode)]);
    for (uint32_t j = 0; j < cfg.n_sites; ++j) {
      out += StrFormat("%s%d%s", j ? " " : "", s.view[j].session,
                       s.view[j].up ? "+" : "-");
    }
    out += "] locks=[";
    for (uint32_t x = 0; x < cfg.n_items; ++x) {
      out += StrFormat("%s%02x", x ? " " : "", s.locks[x]);
    }
    out += "] ver=[";
    for (uint32_t x = 0; x < cfg.n_items; ++x) {
      out += StrFormat("%s%d", x ? " " : "", s.ver[x]);
    }
    out += "]";
    if (rec[i].active) {
      out += StrFormat(" recovering(session=%d pending=%02x%s)",
                       rec[i].new_session, rec[i].pending,
                       rec[i].any_info ? " info" : "");
    }
    out += "\n";
  }
  for (uint32_t x = 0; x < cfg.n_items; ++x) {
    if (pend[x].active) {
      out += StrFormat("pending commit: item %d coord=%d participants=%02x\n",
                       x, pend[x].coord, pend[x].participants);
    }
  }
  out += "latest=[";
  for (uint32_t x = 0; x < cfg.n_items; ++x) {
    out += StrFormat("%s%d", x ? " " : "", latest[x]);
  }
  out += StrFormat("] budget commits=%d crashes=%d refreshes=%d\n",
                   commits_used, crashes_used, refreshes_used);
  return out;
}

std::string AbstractAction::ToString() const {
  switch (kind) {
    case Kind::kCommit:
      return StrFormat("commit(coord=%d item=%d)", site, item);
    case Kind::kDetectFailure:
      return StrFormat("detect_failure(by=%d dead=%d)", site, peer);
    case Kind::kCrash:
      return StrFormat("crash(site=%d)", site);
    case Kind::kBeginRecovery:
      return StrFormat("begin_recovery(site=%d)", site);
    case Kind::kRecoveryReply:
      return StrFormat("recovery_reply(recovering=%d responder=%d)", site,
                       peer);
    case Kind::kEndRecovery:
      return StrFormat("end_recovery(site=%d)", site);
    case Kind::kRefresh:
      return StrFormat("refresh(site=%d source=%d item=%d)", site, peer, item);
    case Kind::kBeginCommit:
      return StrFormat("begin_commit(coord=%d item=%d)", site, item);
    case Kind::kEndCommit:
      return StrFormat("end_commit(coord=%d item=%d)", site, item);
    case Kind::kEndBatchCommit:
      return StrFormat("end_batch_commit(coord=%d participants=%02x)", site,
                       peer);
  }
  return "?";
}

const std::vector<ActionEffectVocabulary>& AbstractActionVocabulary() {
  // Handlers and effects follow src/replication/site.cc. The per-action
  // sets overlap because the implementation drains queued coordinator work
  // from any handler that completes a transaction — the union, not the
  // partition, is the contract the effect golden is checked against.
  using Kind = AbstractAction::Kind;
  static const std::vector<ActionEffectVocabulary> vocab = {
      {Kind::kCommit,
       "kCommit",
       {"kTxnRequest", "kPrepare", "kPrepareAck", "kCommit", "kCommitAck",
        "kAbort", "kTxnReply", "kDecisionQuery"},
       {"send:kPrepare", "send:kPrepareAck", "send:kCommit", "send:kCommitAck",
        "send:kAbort", "send:kTxnReply", "faillock.set", "faillock.clear",
        "session.merge", "outcome.record", "lockmgr.acquire",
        "lockmgr.release"}},
      {Kind::kDetectFailure,
       "kDetectFailure",
       {"kFailSite", "kFailureAnnounce", "kFailureAck"},
       {"session.mark_down", "session.set", "send:kCopyCreate"}},
      {Kind::kCrash,
       "kCrash",
       {"kFailSite"},
       // Crash mutates site state by assignment, not through the mutation
       // APIs the analyzer tracks: a pure handler by construction.
       {}},
      {Kind::kBeginRecovery,
       "kBeginRecovery",
       {"kRecoverSite", "kRecoveryAnnounce"},
       {"send:kRecoveryAnnounce", "session.set", "session.merge"}},
      {Kind::kRecoveryReply,
       "kRecoveryReply",
       {"kRecoveryAnnounce", "kRecoveryInfo"},
       {"send:kRecoveryInfo", "session.set", "faillock.merge"}},
      {Kind::kEndRecovery,
       "kEndRecovery",
       {"kRecoveryInfo"},
       {"faillock.merge", "faillock.clear", "session.merge", "session.set"}},
      {Kind::kRefresh,
       "kRefresh",
       {"kCopyRequest", "kCopyReply", "kCopyCreate", "kCopyCreateAck",
        "kClearFailLocks", "kClearFailLocksAck"},
       {"send:kCopyRequest", "send:kCopyReply", "send:kCopyCreate",
        "send:kClearFailLocks", "faillock.clear"}},
      {Kind::kBeginCommit,
       "kBeginCommit",
       {"kPrepare", "kPrepareAck"},
       {"send:kPrepare", "send:kPrepareAck", "lockmgr.acquire", "lockmgr.pin",
        "session.merge"}},
      {Kind::kEndCommit,
       "kEndCommit",
       {"kCommit", "kCommitAck", "kAbort"},
       {"send:kCommitAck", "send:kTxnReply", "faillock.set", "faillock.clear",
        "lockmgr.release", "outcome.record"}},
      {Kind::kEndBatchCommit,
       "kEndBatchCommit",
       {"kBatchPrepare", "kBatchPrepareAck", "kBatchCommit", "kBatchCommitAck"},
       {"send:kBatchPrepare", "send:kBatchPrepareAck", "send:kBatchCommit",
        "send:kBatchCommitAck", "send:kTxnReply", "faillock.set",
        "faillock.clear", "lockmgr.acquire", "lockmgr.pin", "lockmgr.release",
        "outcome.record", "session.merge"}},
  };
  return vocab;
}

std::string_view AbstractPropertyName(AbstractProperty p) {
  switch (p) {
    case AbstractProperty::kLockAgreement:
      return "lock-agreement";
    case AbstractProperty::kLockOwnerConsistency:
      return "lock-owner-consistency";
    case AbstractProperty::kSessionConsistency:
      return "session-consistency";
    case AbstractProperty::kSessionMonotonic:
      return "session-monotonic";
    case AbstractProperty::kFreshCopyCoverage:
      return "fresh-copy-coverage";
  }
  return "?";
}

std::vector<AbstractAction> EnabledActions(const AbstractConfig& cfg,
                                           const ModelState& s) {
  std::vector<AbstractAction> actions;
  using Kind = AbstractAction::Kind;
  const auto n = cfg.n_sites;
  const auto m = cfg.n_items;

  // kCommit: an up coordinator whose believed-up participants are all
  // reachable (a dead believed-up participant makes the 2PC time out and
  // abort instead — that path is kDetectFailure).
  if (s.commits_used < cfg.max_commits) {
    for (uint8_t c = 0; c < n; ++c) {
      if (s.site[c].mode != SiteMode::kUp) continue;
      bool all_reachable = true;
      for (uint8_t j = 0; j < n; ++j) {
        if (s.site[c].view[j].up && s.site[j].mode == SiteMode::kDown) {
          all_reachable = false;
          break;
        }
      }
      if (!all_reachable) continue;
      // Commit-time session-vector validation: a participant that knows
      // strictly newer membership news than the coordinator (a higher
      // session for any site) votes no, so the coordinator aborts, merges
      // and retries — the commit as planned never happens. Without this, a
      // coordinator that missed a recovery announce commits around the
      // recovering site while the announce-aware participants skip the
      // fail-lock, and the copy's staleness can become untracked.
      if (!cfg.skip_prepare_view_merge) {
        bool vetoed = false;
        for (uint8_t j = 0; j < n && !vetoed; ++j) {
          if (j == c || !s.site[c].view[j].up) continue;
          for (uint8_t k = 0; k < n; ++k) {
            if (s.site[j].view[k].session > s.site[c].view[k].session) {
              vetoed = true;
              break;
            }
          }
        }
        if (vetoed) continue;
      }
      for (uint8_t x = 0; x < m; ++x) {
        if (cfg.interleaved_commits) {
          // The item's exclusive write lock: a second commit on the same
          // item queues behind the pending one and is not a distinct
          // transition until the slot frees.
          if (!s.pend[x].active) {
            actions.push_back({Kind::kBeginCommit, c, 0, x});
          }
        } else {
          actions.push_back({Kind::kCommit, c, 0, x});
        }
      }
    }
  }

  // kEndCommit: a prepared commit applies. Every pinned participant is
  // still up by construction — a participant crash clears the slot
  // (presumed abort) before this action could fire.
  if (cfg.interleaved_commits) {
    for (uint8_t x = 0; x < m; ++x) {
      if (s.pend[x].active) {
        actions.push_back({Kind::kEndCommit, s.pend[x].coord, 0, x});
      }
    }
    // kEndBatchCommit: group commit — two or more prepared slots at the
    // same coordinator with the same pinned participant set drain as one
    // atomic apply + coalesced maintenance (the engine's BatchCommit
    // round). One action per (coordinator, participant-set) group; the
    // singleton kEndCommit actions above stay enabled per slot, modelling
    // the engine's batch-of-1 degrade and linger-timeout flushes.
    if (cfg.batched_commits) {
      for (uint8_t c = 0; c < n; ++c) {
        // One action per distinct mask with >= 2 slots, emitted at the
        // mask's first slot so the action list stays duplicate-free.
        for (uint8_t x = 0; x < m; ++x) {
          if (!s.pend[x].active || s.pend[x].coord != c) continue;
          const uint8_t mask = s.pend[x].participants;
          bool first = true;
          uint32_t members = 0;
          for (uint8_t y = 0; y < m; ++y) {
            if (!s.pend[y].active || s.pend[y].coord != c ||
                s.pend[y].participants != mask) {
              continue;
            }
            if (y < x) first = false;
            ++members;
          }
          if (first && members >= 2) {
            actions.push_back({Kind::kEndBatchCommit, c, mask, 0});
          }
        }
      }
    }
  }

  // kDetectFailure: any up site that still believes a dead site up.
  for (uint8_t c = 0; c < n; ++c) {
    if (s.site[c].mode != SiteMode::kUp) continue;
    for (uint8_t j = 0; j < n; ++j) {
      if (s.site[c].view[j].up && s.site[j].mode == SiteMode::kDown) {
        actions.push_back({Kind::kDetectFailure, c, j, 0});
      }
    }
  }

  // kCrash.
  if (s.crashes_used < cfg.max_crashes) {
    for (uint8_t i = 0; i < n; ++i) {
      if (s.site[i].mode != SiteMode::kDown) {
        actions.push_back({Kind::kCrash, i, 0, 0});
      }
    }
  }

  // kBeginRecovery.
  for (uint8_t i = 0; i < n; ++i) {
    if (s.site[i].mode == SiteMode::kDown) {
      actions.push_back({Kind::kBeginRecovery, i, 0, 0});
    }
  }

  // kRecoveryReply / kEndRecovery.
  for (uint8_t i = 0; i < n; ++i) {
    if (!s.rec[i].active) continue;
    if (s.rec[i].pending == 0) {
      actions.push_back({Kind::kEndRecovery, i, 0, 0});
      continue;
    }
    for (uint8_t r = 0; r < n; ++r) {
      if (((s.rec[i].pending >> r) & 1u) &&
          s.site[r].mode == SiteMode::kUp) {
        actions.push_back({Kind::kRecoveryReply, i, r, 0});
      }
    }
  }

  // kRefresh: copier transaction for an own fail-locked copy, from a
  // source the refresher believes clean and that believes itself clean.
  if (s.refreshes_used < cfg.max_refreshes) {
    for (uint8_t i = 0; i < n; ++i) {
      if (s.site[i].mode != SiteMode::kUp) continue;
      for (uint8_t x = 0; x < m; ++x) {
        if (!((s.site[i].locks[x] >> i) & 1u)) continue;
        // The copier needs the item's write lock at the refresher and the
        // clear broadcast conflicts with the pending commit's maintenance;
        // under 2PL the refresh queues until the commit resolves.
        if (s.pend[x].active) continue;
        for (uint8_t j = 0; j < n; ++j) {
          if (j == i || !s.site[i].view[j].up) continue;
          if ((s.site[i].locks[x] >> j) & 1u) continue;
          if (s.site[j].mode != SiteMode::kUp) continue;
          if ((s.site[j].locks[x] >> j) & 1u) continue;
          actions.push_back({Kind::kRefresh, i, j, x});
        }
      }
    }
  }
  return actions;
}

ModelState ApplyAction(const AbstractConfig& cfg, const ModelState& prev,
                       const AbstractAction& a) {
  ModelState s = prev;
  const auto n = cfg.n_sites;
  const uint8_t all = FullMask(n);
  using Kind = AbstractAction::Kind;

  // Journals a full-row fail-lock write at `j` if it is mid-recovery, so
  // completion can replay updates from the waiting-to-recover window.
  auto journal_row = [&](uint8_t j, uint8_t x, uint8_t row, uint8_t cols) {
    if (s.site[j].mode != SiteMode::kRecovering || !s.rec[j].active) return;
    s.rec[j].touched[x] |= cols;
    s.rec[j].window_value[x] =
        static_cast<uint8_t>((s.rec[j].window_value[x] & ~cols) |
                             (row & cols));
  };

  switch (a.kind) {
    case Kind::kCommit: {
      const uint8_t c = a.site;
      const uint8_t x = a.item;
      const uint8_t v = ++s.latest[x];
      uint8_t participants = 0;
      for (uint8_t j = 0; j < n; ++j) {
        if (prev.site[c].view[j].up) {
          participants |= static_cast<uint8_t>(1u << j);
        }
      }
      for (uint8_t j = 0; j < n; ++j) {
        if (!((participants >> j) & 1u)) continue;
        ModelSite& pj = s.site[j];
        if (j != c && !cfg.skip_prepare_view_merge) {
          // The prepare carries the coordinator's session vector; the
          // participant joins it before commit-time maintenance so both
          // maintain from the same knowledge.
          for (uint8_t k = 0; k < n; ++k) {
            pj.view[k] = Join(pj.view[k], prev.site[c].view[k]);
          }
        }
        pj.ver[x] = v;
        uint8_t row;
        if (cfg.skip_prepare_view_merge) {
          // Pre-fix semantics: each participant maintains from its own
          // (unmerged) view of who is down, so participants with skewed
          // views write divergent rows.
          row = 0;
          for (uint8_t k = 0; k < n; ++k) {
            if (!pj.view[k].up) row |= static_cast<uint8_t>(1u << k);
          }
        } else {
          // A fail-lock means "this copy missed this committed write", and
          // the exact set of copies that missed it is known at commit
          // time: the holders outside the participant set. Maintaining
          // from that set (not from each participant's believed-up view)
          // keeps every participant's row identical by construction.
          row = static_cast<uint8_t>(~participants) & all;
        }
        pj.locks[x] = row;
        journal_row(j, x, row, all);
      }
      ++s.commits_used;
      break;
    }
    case Kind::kBeginCommit: {
      const uint8_t c = a.site;
      const uint8_t x = a.item;
      uint8_t participants = 0;
      for (uint8_t j = 0; j < n; ++j) {
        if (prev.site[c].view[j].up) {
          participants |= static_cast<uint8_t>(1u << j);
        }
      }
      // Prepare: the coordinator's vector is merged at each participant
      // now (the prepare message carries it); the write and the fail-lock
      // maintenance land at kEndCommit.
      if (!cfg.skip_prepare_view_merge) {
        for (uint8_t j = 0; j < n; ++j) {
          if (!((participants >> j) & 1u) || j == c) continue;
          for (uint8_t k = 0; k < n; ++k) {
            s.site[j].view[k] = Join(s.site[j].view[k], prev.site[c].view[k]);
          }
        }
      }
      s.pend[x] = ModelPending{true, c, participants};
      ++s.commits_used;
      break;
    }
    case Kind::kEndCommit: {
      const uint8_t x = a.item;
      const uint8_t participants = prev.pend[x].participants;
      const uint8_t v = ++s.latest[x];
      for (uint8_t j = 0; j < n; ++j) {
        if (!((participants >> j) & 1u)) continue;
        ModelSite& pj = s.site[j];
        pj.ver[x] = v;
        uint8_t row;
        if (cfg.skip_prepare_view_merge) {
          row = 0;
          for (uint8_t k = 0; k < n; ++k) {
            if (!pj.view[k].up) row |= static_cast<uint8_t>(1u << k);
          }
        } else {
          // Maintenance from the set pinned at prepare time, not from the
          // believed-up view at apply time: the real engine commits with
          // the participant set the prepare round agreed on.
          row = static_cast<uint8_t>(~participants) & all;
        }
        pj.locks[x] = row;
        journal_row(j, x, row, all);
      }
      s.pend[x] = ModelPending{};
      break;
    }
    case Kind::kEndBatchCommit: {
      // Group commit: every prepared slot at coordinator `site` whose
      // pinned participant set equals `peer` applies in ONE atomic step,
      // and the fail-lock maintenance for all of them lands as one table
      // update per participant (each item's row is the same complement of
      // the shared mask — the coalescing is the atomicity). Mirrors
      // Site::FinishBatchCommit / HandleBatchCommit: per-member writes,
      // one MaintainFailLocks over the deduped union.
      const uint8_t participants = a.peer;
      for (uint8_t x = 0; x < cfg.n_items; ++x) {
        if (!prev.pend[x].active || prev.pend[x].coord != a.site ||
            prev.pend[x].participants != participants) {
          continue;
        }
        const uint8_t v = ++s.latest[x];
        for (uint8_t j = 0; j < n; ++j) {
          if (!((participants >> j) & 1u)) continue;
          ModelSite& pj = s.site[j];
          pj.ver[x] = v;
          const uint8_t row = static_cast<uint8_t>(~participants) & all;
          pj.locks[x] = row;
          journal_row(j, x, row, all);
        }
        s.pend[x] = ModelPending{};
      }
      break;
    }
    case Kind::kDetectFailure: {
      const uint8_t c = a.site;
      const uint8_t d = a.peer;
      const uint8_t sess = s.site[c].view[d].session;
      s.site[c].view[d].up = false;
      // Type-2 announcement to the detector's believed-up reachable peers
      // (a down receiver drops it; a recovering one processes it).
      for (uint8_t k = 0; k < n; ++k) {
        if (k == c || !s.site[c].view[k].up) continue;
        if (s.site[k].mode == SiteMode::kDown) continue;
        s.site[k].view[d] = Join(s.site[k].view[d], PeerView{sess, false});
      }
      break;
    }
    case Kind::kCrash: {
      const uint8_t i = a.site;
      s.site[i].mode = SiteMode::kDown;
      s.rec[i] = ModelRecovery{};  // any own recovery coordination is lost
      for (uint8_t m2 = 0; m2 < n; ++m2) {
        // A crashed responder will never reply; the recovering site's
        // timeout covers it.
        if (s.rec[m2].active) {
          s.rec[m2].pending &= static_cast<uint8_t>(~(1u << i));
        }
      }
      for (uint8_t x = 0; x < cfg.n_items; ++x) {
        // Presumed abort: a crash of any 2PC member kills the prepared
        // commit before anything applies (the survivors' timers resolve
        // it to abort).
        if (s.pend[x].active && ((s.pend[x].participants >> i) & 1u)) {
          s.pend[x] = ModelPending{};
        }
      }
      ++s.crashes_used;
      break;
    }
    case Kind::kBeginRecovery: {
      const uint8_t i = a.site;
      ModelRecovery& r = s.rec[i];
      r = ModelRecovery{};
      r.active = true;
      r.new_session = static_cast<uint8_t>(s.site[i].view[i].session + 1);
      // The bumped session is persisted at announce time, not at
      // completion: if this recovery is cut short by another crash, the
      // next incarnation must announce a strictly newer session, or peers
      // that recorded (this_session, down) via failure detection would
      // ignore the re-announce forever ("down wins" at equal sessions).
      s.site[i].view[i] = PeerView{r.new_session, false};
      for (uint8_t t = 0; t < n; ++t) {
        if (t != i && s.site[t].mode == SiteMode::kUp) {
          r.pending |= static_cast<uint8_t>(1u << t);
        }
      }
      s.site[i].mode = SiteMode::kRecovering;
      break;
    }
    case Kind::kRecoveryReply: {
      const uint8_t i = a.site;
      const uint8_t r = a.peer;
      ModelRecovery& rec = s.rec[i];
      // The responder learns the new session first, then snapshots.
      s.site[r].view[i] =
          Join(s.site[r].view[i], PeerView{rec.new_session, true});
      rec.pending &= static_cast<uint8_t>(~(1u << r));
      rec.any_info = true;
      for (uint8_t x = 0; x < cfg.n_items; ++x) {
        uint8_t served = s.site[r].locks[x];
        // Prospective maintenance (mirrors Site::RecoveryInfoRows): a
        // commit past its prepare at this responder will rewrite this row
        // to the complement of its pinned participant set when it applies
        // — possibly after recovery completes, when no snapshot can carry
        // the change — so the responder serves that future row: set bits
        // cover the recovering site's missed write, cleared bits keep the
        // union from resurrecting bits the commit clears everywhere else.
        // skip_prospective_faillocks reproduces the pre-fix reply.
        if (!cfg.skip_prospective_faillocks && s.pend[x].active &&
            ((s.pend[x].participants >> r) & 1u)) {
          const uint8_t p = s.pend[x].participants;
          served = static_cast<uint8_t>(~p) & FullMask(n);
          if ((p >> i) & 1u) {
            // Never prospectively clear the recovering site's OWN bit:
            // the served row becomes its table, and if the commit that
            // was going to write to it aborts, a cleared own bit would
            // let it serve a stale copy. If the commit does land there,
            // the site's own maintenance (or window journal) clears it.
            served |= s.site[r].locks[x] & static_cast<uint8_t>(1u << i);
          }
        }
        rec.info_locks[x] |= served;
      }
      for (uint8_t k = 0; k < n; ++k) {
        rec.info_view[k] = Join(rec.info_view[k], s.site[r].view[k]);
      }
      break;
    }
    case Kind::kEndRecovery: {
      const uint8_t i = a.site;
      ModelRecovery r = s.rec[i];
      ModelSite& me = s.site[i];
      for (uint8_t x = 0; x < cfg.n_items; ++x) {
        // With no info reply at all (every responder crashed first), the
        // site cannot know which of its copies missed updates and must
        // conservatively fail-lock all of them.
        uint8_t row = r.any_info
                          ? r.info_locks[x]
                          : static_cast<uint8_t>(me.locks[x] | (1u << i));
        if (!cfg.drop_recovery_window_updates) {
          row = static_cast<uint8_t>((row & ~r.touched[x]) |
                                     (r.window_value[x] & r.touched[x]));
        }
        me.locks[x] = row;
      }
      for (uint8_t k = 0; k < n; ++k) {
        me.view[k] = Join(me.view[k], r.info_view[k]);
      }
      me.view[i] = PeerView{r.new_session, true};
      me.mode = SiteMode::kUp;
      s.rec[i] = ModelRecovery{};
      break;
    }
    case Kind::kRefresh: {
      const uint8_t i = a.site;
      const uint8_t j = a.peer;
      const uint8_t x = a.item;
      s.site[i].ver[x] = s.site[j].ver[x];
      s.site[i].locks[x] &= static_cast<uint8_t>(~(1u << i));
      // The clear-fail-locks special transaction is idempotent
      // fire-and-forget, so it goes to every peer address, not only the
      // believed-up ones: a just-recovered site the refresher has not heard
      // about must still get the clear (narrow_clear_broadcast reproduces
      // the miss). A crashed site drops it; its stale table is replaced
      // wholesale by the info union at its next recovery anyway.
      for (uint8_t k = 0; k < n; ++k) {
        if (k == i) continue;
        if (cfg.narrow_clear_broadcast && !s.site[i].view[k].up) continue;
        if (s.site[k].mode == SiteMode::kDown) continue;
        s.site[k].locks[x] &= static_cast<uint8_t>(~(1u << i));
        journal_row(k, x, 0, static_cast<uint8_t>(1u << i));
      }
      ++s.refreshes_used;
      break;
    }
  }
  return s;
}

std::optional<std::pair<AbstractProperty, std::string>> CheckState(
    const AbstractConfig& cfg, const ModelState& s) {
  const auto n = cfg.n_sites;
  std::vector<uint8_t> ups;
  for (uint8_t i = 0; i < n; ++i) {
    if (s.site[i].mode == SiteMode::kUp) ups.push_back(i);
  }

  // Pointwise agreement between operational observers. NOT an invariant of
  // the protocol (see AbstractConfig::check_lock_agreement for the
  // refutation this checker produced); kept behind the flag so the
  // refutation stays reproducible.
  if (cfg.check_lock_agreement) {
    for (uint8_t x = 0; x < cfg.n_items; ++x) {
      for (uint8_t k = 0; k < n; ++k) {
        int saw = -1;
        uint8_t witness = 0;
        for (uint8_t i : ups) {
          if (i == k) continue;
          const int bit = (s.site[i].locks[x] >> k) & 1;
          if (saw < 0) {
            saw = bit;
            witness = i;
          } else if (bit != saw) {
            return std::make_pair(
                AbstractProperty::kLockAgreement,
                StrFormat("operational sites %d and %d disagree on fail-lock "
                          "(item=%d, site=%d): %d vs %d",
                          witness, i, x, k, saw, bit));
          }
        }
      }
    }
  }

  // A bit at an observer for an up, believed-up site must exist at the
  // site itself (recovery merged every operational table).
  for (uint8_t x = 0; x < cfg.n_items; ++x) {
    for (uint8_t i : ups) {
      for (uint8_t k = 0; k < n; ++k) {
        if (k == i || !((s.site[i].locks[x] >> k) & 1u)) continue;
        if (!s.site[i].view[k].up) continue;
        if (s.site[k].mode != SiteMode::kUp) continue;
        if (!((s.site[k].locks[x] >> k) & 1u)) {
          return std::make_pair(
              AbstractProperty::kLockOwnerConsistency,
              StrFormat("site %d holds fail-lock (item=%d, site=%d) and "
                        "believes %d up, but %d's own table is clear",
                        i, x, k, k, k));
        }
      }
    }
  }

  // No observer ahead of the subject's own session.
  for (uint8_t i : ups) {
    for (uint8_t j : ups) {
      if (i == j || !s.site[i].view[j].up) continue;
      if (s.site[i].view[j].session > s.site[j].view[j].session) {
        return std::make_pair(
            AbstractProperty::kSessionConsistency,
            StrFormat("site %d records session %d for up site %d, which "
                      "is at session %d",
                      i, s.site[i].view[j].session, j,
                      s.site[j].view[j].session));
      }
    }
  }

  // Read safety ("no committed read of a stale copy"): a read served at an
  // up site consults only that site's own fail-lock table, so a stale copy
  // whose own-table bit is clear would be handed to a committed read. This
  // is the property the whole fail-lock mechanism exists to maintain.
  for (uint8_t x = 0; x < cfg.n_items; ++x) {
    for (uint8_t k : ups) {
      if ((s.site[k].locks[x] >> k) & 1u) continue;
      if (s.site[k].ver[x] != s.latest[x]) {
        return std::make_pair(
            AbstractProperty::kFreshCopyCoverage,
            StrFormat("up site %d's copy of item %d is at version %d (latest "
                      "%d) but its own fail-lock bit is clear — a local read "
                      "would return the stale copy",
                      k, x, s.site[k].ver[x], s.latest[x]));
      }
    }
  }
  return std::nullopt;
}

namespace {

struct Node {
  ModelState state;
  int32_t parent;
  AbstractAction action;
  uint32_t depth;
};

std::vector<AbstractAction> PathTo(const std::vector<Node>& arena,
                                   int32_t idx) {
  std::vector<AbstractAction> path;
  for (int32_t at = idx; at > 0; at = arena[at].parent) {
    path.push_back(arena[at].action);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Canonical(const AbstractConfig& cfg, const ModelState& state,
                      const std::vector<std::vector<uint8_t>>& site_perms,
                      const std::vector<std::vector<uint8_t>>& item_perms) {
  std::string best;
  for (const auto& sp : site_perms) {
    for (const auto& ip : item_perms) {
      std::string enc = state.Encode(cfg, sp.data(), ip.data());
      if (best.empty() || enc < best) best = std::move(enc);
    }
  }
  return best;
}

std::vector<std::vector<uint8_t>> AllPerms(uint32_t n) {
  std::vector<uint8_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::vector<uint8_t>> perms;
  do {
    perms.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return perms;
}

}  // namespace

AbstractResult ExploreAbstract(const AbstractConfig& cfg) {
  ValidateConfig(cfg);
  AbstractResult result;

  const std::vector<std::vector<uint8_t>> identity_site = {
      AllPerms(cfg.n_sites).front()};
  const std::vector<std::vector<uint8_t>> identity_item = {
      AllPerms(cfg.n_items).front()};
  const std::vector<std::vector<uint8_t>> site_perms =
      cfg.canonicalize ? AllPerms(cfg.n_sites) : identity_site;
  const std::vector<std::vector<uint8_t>> item_perms =
      cfg.canonicalize ? AllPerms(cfg.n_items) : identity_item;

  std::vector<Node> arena;
  arena.push_back(Node{InitialState(cfg), -1, {}, 0});
  std::unordered_set<std::string> visited;
  {
    std::string key = Canonical(cfg, arena[0].state, site_perms, item_perms);
    result.fingerprint ^= Mix(Fnv1a(key));
    visited.insert(std::move(key));
  }
  result.states_visited = 1;

  if (auto bad = CheckState(cfg, arena[0].state)) {
    result.violation = AbstractViolation{bad->first, bad->second, {},
                                         arena[0].state.Dump(cfg)};
    return result;
  }

  std::deque<int32_t> frontier = {0};
  while (!frontier.empty()) {
    const int32_t idx = frontier.front();
    frontier.pop_front();
    // Copy, not reference: arena reallocates as successors are appended.
    const ModelState state = arena[idx].state;
    const uint32_t depth = arena[idx].depth;
    const std::vector<AbstractAction> actions = EnabledActions(cfg, state);
    if (depth >= cfg.max_depth) {
      if (!actions.empty()) result.depth_bounded = true;
      continue;
    }
    ++result.states_expanded;

    for (const AbstractAction& action : actions) {
      ModelState succ = ApplyAction(cfg, state, action);
      ++result.transitions;

      // Per-edge monotonicity: no session number ever regresses.
      for (uint8_t i = 0; i < cfg.n_sites; ++i) {
        for (uint8_t j = 0; j < cfg.n_sites; ++j) {
          if (succ.site[i].view[j].session < state.site[i].view[j].session) {
            auto path = PathTo(arena, idx);
            path.push_back(action);
            result.violation = AbstractViolation{
                AbstractProperty::kSessionMonotonic,
                StrFormat("site %d's recorded session for %d regressed "
                          "%d -> %d across %s",
                          i, j, state.site[i].view[j].session,
                          succ.site[i].view[j].session,
                          action.ToString().c_str()),
                std::move(path), succ.Dump(cfg)};
            return result;
          }
        }
      }

      std::string key = Canonical(cfg, succ, site_perms, item_perms);
      if (!visited.insert(key).second) {
        ++result.symmetry_hits;
        continue;
      }
      result.fingerprint ^= Mix(Fnv1a(key));
      ++result.states_visited;
      const auto succ_idx = static_cast<int32_t>(arena.size());
      arena.push_back(Node{succ, idx, action, depth + 1});
      result.max_depth_reached = std::max(result.max_depth_reached, depth + 1);

      if (Quiescent(cfg, succ) && !result.violation) {
        if (auto bad = CheckState(cfg, succ)) {
          result.violation =
              AbstractViolation{bad->first, bad->second, PathTo(arena, succ_idx),
                                succ.Dump(cfg)};
          return result;
        }
      }
      if (cfg.max_states != 0 && result.states_visited >= cfg.max_states) {
        result.state_bounded = true;
        return result;
      }
      frontier.push_back(succ_idx);
    }
  }
  return result;
}

}  // namespace miniraid::check

#ifndef MINIRAID_CHECK_SYSTEMATIC_H_
#define MINIRAID_CHECK_SYSTEMATIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/trace_io.h"
#include "core/invariants.h"

namespace miniraid::check {

/// Systematic-execution checker over the *real* protocol engine: it stands
/// up a fresh SimCluster per execution, injects a fixed schedule of
/// external actions (transaction submissions, site failures, recoveries),
/// and — instead of the simulator's default FIFO — explores every order of
/// the events tied at the current virtual instant, plus every point at
/// which the next external action may be injected. With zero message
/// latency the whole protocol exchange for one step collapses onto a
/// single instant, so "events tied at the front time" is exactly the
/// message-delivery nondeterminism a real network would exhibit.
///
/// Exploration is stateless DFS: each execution replays the recorded
/// branch picks from scratch (the simulator is bit-for-bit deterministic),
/// then flips the deepest untried pick. Sleep sets prune provably
/// commuting reorderings (deliveries to distinct sites are independent).
/// At every quiescent cut — event queue drained — the cluster-wide
/// invariants (core/invariants.h) are asserted over live site snapshots;
/// the first violating execution is returned as a CheckTrace that replays
/// byte for byte.
struct SystematicOptions {
  uint32_t n_sites = 3;
  uint32_t db_size = 2;
  /// Intra-site concurrency of every site engine. Serial by default; set
  /// mode = kTwoPhaseLocking (wait-die recommended — no lock timers, so
  /// quiescent cuts stay reachable) to explore interleaved executions of
  /// overlapping coordinations at one site.
  ConcurrencyOptions concurrency;
  /// Group commit (batched 2PC) of every site engine. Off by default; set
  /// max_batch > 1 (with locking on) to explore batched prepare/commit
  /// rounds racing the rest of the protocol.
  BatchingOptions batching;
  std::vector<ScheduleAction> actions;
  /// Choice points recorded (and therefore explored) per execution; deeper
  /// choice points fall back to FIFO order. Exhaustive within the bound.
  uint32_t max_branch_points = 16;
  /// Hard cap on executions; hitting it sets SystematicResult::
  /// execution_bounded instead of failing.
  uint64_t max_executions = 20000;
  bool sleep_sets = true;
  InvariantChecker::Options invariants;
};

struct SystematicResult {
  uint64_t executions = 0;
  uint64_t steps_total = 0;      // events run + actions injected, summed
  uint64_t branch_points = 0;    // distinct recorded branch nodes
  uint64_t sleep_skips = 0;      // alternatives pruned by sleep sets
  uint32_t max_choice_points = 0;  // most choice points seen in one execution
  bool execution_bounded = false;  // stopped on max_executions
  bool branch_bounded = false;     // some execution out-branched the budget
  /// Order-independent hash over every execution's pick sequence; two runs
  /// of the same options must agree (the determinism witness).
  uint64_t fingerprint = 0;
  /// First violating execution, replayable via ReplayTrace.
  std::optional<CheckTrace> counterexample;
  /// The invariant violations that execution produced (string form).
  std::vector<std::string> violations;
};

/// The invariant set the systematic layer asserts at quiescent cuts.
/// Everything in core/invariants.h EXCEPT pointwise fail-lock agreement:
/// a participant crashing mid-commit legitimately leaves the coordinator
/// with the silent site's copies fail-locked while the acked participants
/// cleared them, and the divergence persists across quiescent cuts until
/// a copier rewrites the column. Read safety still holds — the recovered
/// site's own table carries the bit via the recovery info union — so
/// agreement is a nominal-regime observation, not an invariant (the
/// abstract model, whose commits are atomic, does assert it; see
/// AbstractConfig::check_lock_agreement).
InvariantChecker::Options SystematicOracleOptions();

SystematicResult ExploreSystematic(const SystematicOptions& options);

/// Replays `trace` through a fresh SimCluster, forcing the recorded pick at
/// every choice point and asserting the option fanout matches the recorded
/// one (the determinism contract).
struct ReplayOutcome {
  /// Schedule applied exactly as recorded; false = the code's behaviour
  /// diverged from the trace (fanout mismatch / pick out of range).
  bool matched = true;
  std::string mismatch;
  uint64_t steps = 0;
  uint32_t choice_points = 0;
  /// Invariant violations encountered at the quiescent cuts (string form).
  /// A regression trace for a fixed bug must replay with this empty.
  std::vector<std::string> violations;
};

ReplayOutcome ReplayTrace(
    const CheckTrace& trace,
    const InvariantChecker::Options& invariants = SystematicOracleOptions());

/// Runs `options`' schedule once with fixed pseudo-deterministic non-FIFO
/// picks and records it as a trace. The result is a golden schedule: it
/// must keep replaying with ReplayOutcome::matched across code changes, so
/// checked-in golden traces pin the simulator's byte-for-byte determinism.
CheckTrace RecordGoldenTrace(const SystematicOptions& options);

/// Canned schedules for minicheck and the tests. Each stresses one of the
/// paper's failure/recovery windows.
std::vector<std::string_view> ScenarioNames();
std::optional<SystematicOptions> ScenarioByName(std::string_view name);

}  // namespace miniraid::check

#endif  // MINIRAID_CHECK_SYSTEMATIC_H_

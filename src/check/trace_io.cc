#include "check/trace_io.h"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid::check {

namespace {

std::string_view KindToken(ScheduleAction::Kind kind) {
  switch (kind) {
    case ScheduleAction::Kind::kSubmit:
      return "submit";
    case ScheduleAction::Kind::kFail:
      return "fail";
    case ScheduleAction::Kind::kRecover:
      return "recover";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser. Traces are small and the
// container must not grow third-party dependencies, so this supports exactly
// what the trace format needs: objects, arrays, strings with the common
// escapes, non-negative integers, booleans, null.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  int64_t number = 0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  Result<JsonValue> Parse() {
    MINIRAID_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::InvalidArgument(
        StrFormat("trace JSON: %s at offset %zu", std::string(what).c_str(),
                  pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (input_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    char c = input_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    JsonValue v;
    if (ConsumeWord("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (ConsumeWord("null")) return v;
    return Error("unrecognized token");
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    v.object = std::make_shared<JsonObject>();
    if (Consume('}')) return v;
    while (true) {
      MINIRAID_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      MINIRAID_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      (*v.object)[key.string] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    v.array = std::make_shared<JsonArray>();
    if (Consume(']')) return v;
    while (true) {
      MINIRAID_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.array->push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= input_.size()) return Error("unterminated escape");
        char e = input_[pos_++];
        switch (e) {
          case '"':
            v.string.push_back('"');
            break;
          case '\\':
            v.string.push_back('\\');
            break;
          case '/':
            v.string.push_back('/');
            break;
          case 'n':
            v.string.push_back('\n');
            break;
          case 't':
            v.string.push_back('\t');
            break;
          case 'r':
            v.string.push_back('\r');
            break;
          default:
            return Error("unsupported escape");
        }
        continue;
      }
      v.string.push_back(c);
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = 0;
    bool negative = input_[start] == '-';
    for (size_t i = start + (negative ? 1 : 0); i < pos_; ++i) {
      v.number = v.number * 10 + (input_[i] - '0');
    }
    if (negative) v.number = -v.number;
    return v;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// Typed field accessors over a parsed object.

Result<int64_t> GetNumber(const JsonObject& obj, std::string_view key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument(
        StrFormat("trace JSON: missing numeric field \"%s\"",
                  std::string(key).c_str()));
  }
  return it->second.number;
}

int64_t GetNumberOr(const JsonObject& obj, std::string_view key,
                    int64_t fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return it->second.number;
}

std::string GetStringOr(const JsonObject& obj, std::string_view key,
                        std::string fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kString) {
    return fallback;
  }
  return it->second.string;
}

bool GetBoolOr(const JsonObject& obj, std::string_view key, bool fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kBool) {
    return fallback;
  }
  return it->second.boolean;
}

Result<std::vector<uint32_t>> GetUintArray(const JsonObject& obj,
                                           std::string_view key) {
  std::vector<uint32_t> out;
  auto it = obj.find(key);
  if (it == obj.end()) return out;  // optional, defaults empty
  if (it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument(StrFormat(
        "trace JSON: field \"%s\" must be an array", std::string(key).c_str()));
  }
  for (const JsonValue& v : *it->second.array) {
    if (v.type != JsonValue::Type::kNumber || v.number < 0) {
      return Status::InvalidArgument(
          StrFormat("trace JSON: field \"%s\" must hold non-negative integers",
                    std::string(key).c_str()));
    }
    out.push_back(static_cast<uint32_t>(v.number));
  }
  return out;
}

Result<ScheduleAction> ActionFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("trace JSON: action must be an object");
  }
  const JsonObject& obj = *value.object;
  std::string op = GetStringOr(obj, "op", "");
  ScheduleAction action;
  MINIRAID_ASSIGN_OR_RETURN(int64_t site, GetNumber(obj, "site"));
  action.site = static_cast<SiteId>(site);
  action.serial = GetBoolOr(obj, "serial", false);
  if (op == "fail") {
    action.kind = ScheduleAction::Kind::kFail;
    return action;
  }
  if (op == "recover") {
    action.kind = ScheduleAction::Kind::kRecover;
    return action;
  }
  if (op != "submit") {
    return Status::InvalidArgument(
        StrFormat("trace JSON: unknown action op \"%s\"", op.c_str()));
  }
  action.kind = ScheduleAction::Kind::kSubmit;
  action.txn.id = static_cast<TxnId>(GetNumberOr(obj, "txn", 0));
  auto ops_it = obj.find("ops");
  if (ops_it == obj.end() || ops_it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("trace JSON: submit action needs \"ops\"");
  }
  for (const JsonValue& opv : *ops_it->second.array) {
    if (opv.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("trace JSON: op must be an object");
    }
    const JsonObject& o = *opv.object;
    std::string kind = GetStringOr(o, "kind", "");
    MINIRAID_ASSIGN_OR_RETURN(int64_t item, GetNumber(o, "item"));
    if (kind == "read") {
      action.txn.ops.push_back(Operation::Read(static_cast<ItemId>(item)));
    } else if (kind == "write") {
      MINIRAID_ASSIGN_OR_RETURN(int64_t v, GetNumber(o, "value"));
      action.txn.ops.push_back(Operation::Write(static_cast<ItemId>(item),
                                                static_cast<Value>(v)));
    } else {
      return Status::InvalidArgument(
          StrFormat("trace JSON: unknown op kind \"%s\"", kind.c_str()));
    }
  }
  return action;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendUintArray(std::string* out, const std::vector<uint32_t>& values) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) *out += ", ";
    *out += StrFormat("%u", values[i]);
  }
  out->push_back(']');
}

std::string_view PolicyToken(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kTimeout:
      return "timeout";
  }
  return "?";
}

Result<DeadlockPolicy> PolicyFromToken(std::string_view token) {
  if (token == "wait-die") return DeadlockPolicy::kWaitDie;
  if (token == "wound-wait") return DeadlockPolicy::kWoundWait;
  if (token == "timeout") return DeadlockPolicy::kTimeout;
  return Status::InvalidArgument(StrFormat(
      "trace JSON: unknown deadlock policy \"%s\"", std::string(token).c_str()));
}

}  // namespace

std::string ScheduleAction::ToString() const {
  switch (kind) {
    case Kind::kSubmit:
      return StrFormat("submit(%s @%u)", txn.ToString().c_str(), site);
    case Kind::kFail:
      return StrFormat("fail(%u)", site);
    case Kind::kRecover:
      return StrFormat("recover(%u)", site);
  }
  return "?";
}

std::string TraceToJson(const CheckTrace& trace) {
  std::string out;
  out += "{\n";
  out += StrFormat("  \"version\": %u,\n", trace.version);
  out += "  \"kind\": \"systematic\",\n";
  out += StrFormat("  \"n_sites\": %u,\n", trace.n_sites);
  out += StrFormat("  \"db_size\": %u,\n", trace.db_size);
  // Emitted only for non-serial executions so pre-concurrency golden traces
  // stay byte-identical.
  if (trace.concurrency.locking()) {
    out += StrFormat(
        "  \"concurrency\": {\"mode\": \"2pl\", \"max_executors\": %u, "
        "\"deadlock_policy\": \"%s\", \"lock_wait_timeout_ms\": %ld},\n",
        trace.concurrency.max_executors,
        std::string(PolicyToken(trace.concurrency.deadlock_policy)).c_str(),
        static_cast<long>(trace.concurrency.lock_wait_timeout / 1000000));
  }
  // Emitted only when group commit is on, for the same reason.
  if (trace.batching.enabled()) {
    out += StrFormat(
        "  \"batching\": {\"max_batch\": %u, \"batch_linger_ms\": %ld},\n",
        trace.batching.max_batch,
        static_cast<long>(trace.batching.batch_linger / 1000000));
  }
  out += "  \"note\": ";
  AppendJsonString(&out, trace.note);
  out += ",\n  \"actions\": [\n";
  for (size_t i = 0; i < trace.actions.size(); ++i) {
    const ScheduleAction& a = trace.actions[i];
    out += StrFormat("    {\"op\": \"%s\", \"site\": %u",
                     std::string(KindToken(a.kind)).c_str(), a.site);
    if (a.serial) out += ", \"serial\": true";
    if (a.kind == ScheduleAction::Kind::kSubmit) {
      out += StrFormat(", \"txn\": %lu, \"ops\": [",
                       static_cast<unsigned long>(a.txn.id));
      for (size_t j = 0; j < a.txn.ops.size(); ++j) {
        const Operation& op = a.txn.ops[j];
        if (j) out += ", ";
        if (op.is_read()) {
          out += StrFormat("{\"kind\": \"read\", \"item\": %u}", op.item);
        } else {
          out += StrFormat("{\"kind\": \"write\", \"item\": %u, \"value\": %ld}",
                           op.item, static_cast<long>(op.value));
        }
      }
      out += "]";
    }
    out += "}";
    if (i + 1 < trace.actions.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"picks\": ";
  AppendUintArray(&out, trace.picks);
  out += ",\n  \"fanouts\": ";
  AppendUintArray(&out, trace.fanouts);
  out += "\n}\n";
  return out;
}

Result<CheckTrace> TraceFromJson(std::string_view json) {
  JsonParser parser(json);
  MINIRAID_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("trace JSON: top level must be an object");
  }
  const JsonObject& obj = *root.object;
  CheckTrace trace;
  trace.version = static_cast<uint32_t>(GetNumberOr(obj, "version", 1));
  if (trace.version != 1) {
    return Status::InvalidArgument(
        StrFormat("trace JSON: unsupported version %u", trace.version));
  }
  MINIRAID_ASSIGN_OR_RETURN(int64_t n_sites, GetNumber(obj, "n_sites"));
  MINIRAID_ASSIGN_OR_RETURN(int64_t db_size, GetNumber(obj, "db_size"));
  trace.n_sites = static_cast<uint32_t>(n_sites);
  trace.db_size = static_cast<uint32_t>(db_size);
  trace.note = GetStringOr(obj, "note", "");
  // Optional: absent = serial (traces predating the concurrency extension).
  if (auto conc_it = obj.find("concurrency");
      conc_it != obj.end() && conc_it->second.type == JsonValue::Type::kObject) {
    const JsonObject& conc = *conc_it->second.object;
    const std::string mode = GetStringOr(conc, "mode", "serial");
    if (mode == "2pl") {
      trace.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
    } else if (mode != "serial") {
      return Status::InvalidArgument(StrFormat(
          "trace JSON: unknown concurrency mode \"%s\"", mode.c_str()));
    }
    trace.concurrency.max_executors = static_cast<uint32_t>(
        GetNumberOr(conc, "max_executors", trace.concurrency.max_executors));
    MINIRAID_ASSIGN_OR_RETURN(
        trace.concurrency.deadlock_policy,
        PolicyFromToken(GetStringOr(
            conc, "deadlock_policy",
            std::string(PolicyToken(trace.concurrency.deadlock_policy)))));
    trace.concurrency.lock_wait_timeout = Milliseconds(GetNumberOr(
        conc, "lock_wait_timeout_ms",
        trace.concurrency.lock_wait_timeout / 1000000));
  }
  // Optional: absent = batching off (traces predating group commit).
  if (auto bat_it = obj.find("batching");
      bat_it != obj.end() && bat_it->second.type == JsonValue::Type::kObject) {
    const JsonObject& bat = *bat_it->second.object;
    trace.batching.max_batch = static_cast<uint32_t>(
        GetNumberOr(bat, "max_batch", trace.batching.max_batch));
    trace.batching.batch_linger = Milliseconds(GetNumberOr(
        bat, "batch_linger_ms", trace.batching.batch_linger / 1000000));
  }
  auto actions_it = obj.find("actions");
  if (actions_it == obj.end() ||
      actions_it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("trace JSON: missing \"actions\" array");
  }
  for (const JsonValue& av : *actions_it->second.array) {
    MINIRAID_ASSIGN_OR_RETURN(ScheduleAction action, ActionFromJson(av));
    trace.actions.push_back(std::move(action));
  }
  MINIRAID_ASSIGN_OR_RETURN(trace.picks, GetUintArray(obj, "picks"));
  MINIRAID_ASSIGN_OR_RETURN(trace.fanouts, GetUintArray(obj, "fanouts"));
  if (trace.picks.size() != trace.fanouts.size()) {
    return Status::InvalidArgument(
        "trace JSON: \"picks\" and \"fanouts\" lengths differ");
  }
  for (size_t i = 0; i < trace.picks.size(); ++i) {
    if (trace.picks[i] >= trace.fanouts[i]) {
      return Status::InvalidArgument(StrFormat(
          "trace JSON: pick %zu (= %u) out of range for fanout %u", i,
          trace.picks[i], trace.fanouts[i]));
    }
  }
  return trace;
}

Result<CheckTrace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromJson(buf.str());
}

Status WriteTraceFile(const std::string& path, const CheckTrace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError(StrFormat("cannot open %s for write", path.c_str()));
  }
  out << TraceToJson(trace);
  out.flush();
  if (!out) return Status::IoError(StrFormat("write to %s failed", path.c_str()));
  return Status::Ok();
}

}  // namespace miniraid::check

#ifndef MINIRAID_CHECK_TRACE_IO_H_
#define MINIRAID_CHECK_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "replication/options.h"
#include "txn/transaction.h"

namespace miniraid::check {

/// One externally injected step of a systematic-exploration schedule:
/// submit a transaction to a coordinator, or fail / recover a site through
/// the managing site's control channel.
struct ScheduleAction {
  enum class Kind : uint8_t { kSubmit = 0, kFail = 1, kRecover = 2 };

  Kind kind = Kind::kSubmit;
  /// Coordinator for kSubmit; target site for kFail / kRecover.
  SiteId site = 0;
  /// kSubmit only. Ids must be unique within a schedule (the managing site
  /// checks).
  TxnSpec txn;
  /// A serial action is injected only at quiescent points (queue drained),
  /// never offered as a scheduling choice. Use it for the deterministic
  /// set-up prefix of a scenario so the branching budget is spent on the
  /// interesting suffix.
  bool serial = false;

  std::string ToString() const;

  static ScheduleAction Submit(const TxnSpec& txn, SiteId coordinator,
                               bool serial = false) {
    return ScheduleAction{Kind::kSubmit, coordinator, txn, serial};
  }
  static ScheduleAction Fail(SiteId site, bool serial = false) {
    return ScheduleAction{Kind::kFail, site, {}, serial};
  }
  static ScheduleAction Recover(SiteId site, bool serial = false) {
    return ScheduleAction{Kind::kRecover, site, {}, serial};
  }
};

/// A fully deterministic replayable execution of the systematic checker:
/// the cluster configuration, the action schedule, and — for every
/// scheduling point that had more than one enabled option — the index that
/// was taken (`picks`) plus how many options were enabled there
/// (`fanouts`, same length). Replay re-derives the option sets from the
/// real code and asserts both arrays match point for point, so a checked-in
/// counterexample doubles as a byte-for-byte determinism regression test.
struct CheckTrace {
  uint32_t version = 1;
  uint32_t n_sites = 3;
  uint32_t db_size = 2;
  /// Intra-site concurrency configuration of the execution. Serialized only
  /// when non-serial, and parsed with serial defaults, so traces recorded
  /// before the concurrency extension replay unchanged.
  ConcurrencyOptions concurrency;
  /// Group-commit configuration of the execution. Serialized only when
  /// batching is enabled, parsed with batching-off defaults — traces
  /// recorded before the group-commit extension replay unchanged.
  BatchingOptions batching;
  /// Free-form provenance ("found by ExploreSystematic, scenario X").
  std::string note;
  std::vector<ScheduleAction> actions;
  std::vector<uint32_t> picks;
  std::vector<uint32_t> fanouts;
};

/// Serializes `trace` as pretty-printed JSON (stable field order, one pick
/// list per line — diffable under version control).
std::string TraceToJson(const CheckTrace& trace);

/// Parses a trace produced by TraceToJson (or written by hand). Returns
/// InvalidArgument with a position-annotated message on malformed input.
Result<CheckTrace> TraceFromJson(std::string_view json);

/// Convenience wrappers over whole files.
Result<CheckTrace> ReadTraceFile(const std::string& path);
Status WriteTraceFile(const std::string& path, const CheckTrace& trace);

}  // namespace miniraid::check

#endif  // MINIRAID_CHECK_TRACE_IO_H_

#ifndef MINIRAID_CHECK_ABSTRACT_MODEL_H_
#define MINIRAID_CHECK_ABSTRACT_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace miniraid::check {

/// Exhaustive explorer over an abstract model of the paper's replicated
/// copy-control protocol: N fully-replicated sites × M items, each site
/// carrying a session vector (session number + believed status per site), a
/// fail-lock table (one bit per item × site), and a copy version per item.
///
/// The transition relation mirrors src/replication/site.cc action for
/// action — ROWAA commit with commit-time fail-lock maintenance, failure
/// detection + type-2 announcement, two-step recovery (type-1 announce /
/// info replies / completion merge) with the recovery-window update
/// journal, and copier refresh with the special clear-fail-locks
/// transaction — but collapses each protocol exchange into one atomic
/// step. What stays nondeterministic is exactly what the paper's
/// correctness argument depends on: which site acts next, which responder's
/// recovery reply lands before which commit, who detects a failure first.
/// Bounded BFS with state hashing and site/item symmetry reduction then
/// visits every reachable interleaving up to the configured depth.
///
/// The fidelity limit is the atomicity of each step: message-level skew
/// *inside* one exchange (a half-delivered type-2 announce) is out of
/// scope here and covered by the systematic layer (check/systematic.h),
/// which drives the real Site code event by event.
struct AbstractConfig {
  uint32_t n_sites = 3;
  uint32_t n_items = 2;
  /// Maximum number of transitions from the initial state.
  uint32_t max_depth = 12;
  /// Per-path action budgets. These bound the state space the same way the
  /// depth bound does; they are part of the state, so exploration remains
  /// exhaustive within them.
  uint32_t max_commits = 3;
  uint32_t max_crashes = 2;
  uint32_t max_refreshes = 2;
  /// Split every commit into kBeginCommit (prepare: participant set
  /// pinned, coordinator's vector merged) and kEndCommit (writes + commit-
  /// time fail-lock maintenance), so recovery announces, info replies and
  /// completions interleave with a transaction that is past its prepare —
  /// the window the intra-site 2PL layer widens in the real engine (a
  /// pinned commit can stay in flight while dozens of others run). Off =
  /// the classic atomic kCommit action.
  bool interleaved_commits = false;
  /// Group commit (mirrors BatchingOptions): when two or more prepared
  /// commits at the same coordinator pinned the same participant set, a
  /// kEndBatchCommit action applies ALL of their writes and runs the
  /// coalesced fail-lock maintenance as ONE atomic step — the abstract
  /// image of the engine's single BatchCommit round with one fail-lock
  /// table update per participant. Singleton kEndCommit stays enabled for
  /// every slot (the engine's batch-of-1 degrade path and linger-timeout
  /// flushes), so the flag only adds interleavings. Requires
  /// interleaved_commits; defaults off so default closures are unchanged.
  bool batched_commits = false;
  /// Fold site- and item-permutation-symmetric states together. Sound for
  /// this model: the initial state and every guard/effect are symmetric
  /// under relabeling.
  bool canonicalize = true;
  /// Stop after this many stored states (0 = unlimited). Exceeding it sets
  /// AbstractResult::state_bounded rather than failing.
  uint64_t max_states = 0;
  /// Stop at the first property violation (on = counterexample search;
  /// off would be pointless — kept implicit).
  ///
  /// Known-bug semantics toggles. Each reproduces a defect this checker
  /// found in the real protocol engine (and whose fix this model now
  /// mirrors), so tests can assert the checker still catches it:
  ///
  /// drop_recovery_window_updates: CompleteRecovery installs the union of
  /// the responders' fail-lock tables *discarding* set/clear operations
  /// applied locally during the waiting-to-recover window (the pre-fix
  /// site.cc semantics — a commit in the window is forgotten).
  bool drop_recovery_window_updates = false;
  /// skip_prepare_view_merge: pre-fix commit semantics, all three pieces at
  /// once — participants do not merge the coordinator's session vector at
  /// prepare time, a participant with strictly newer session knowledge does
  /// not veto the commit, and each participant maintains fail-locks from
  /// its own believed-down view instead of from the commit's participant
  /// set. Under this toggle a coordinator that missed a recovery announce
  /// commits around the recovering site, the announce-aware participants
  /// skip the fail-lock, and one crash can erase the only record that the
  /// recovering copy is stale (read-safety violation at depth 7).
  bool skip_prepare_view_merge = false;
  /// narrow_clear_broadcast: the copier's clear-fail-locks special
  /// transaction is sent only to peers the refresher believes up (pre-fix
  /// semantics), so a just-recovered site the refresher has not heard
  /// about misses the clear and carries a spurious stale fail-lock
  /// indefinitely (lock-owner-consistency violation at depth 12).
  bool narrow_clear_broadcast = false;
  /// skip_prospective_faillocks: recovery info replies serve only the
  /// responder's current fail-lock table (pre-fix site.cc semantics),
  /// omitting prospective bits for commits already past their prepare.
  /// Only meaningful with interleaved_commits: a commit prepared before
  /// the announce and applied after completion then sets bits every info
  /// snapshot missed, and the recovered site serves committed reads from a
  /// stale copy whose own-table bit is clear (read-safety violation;
  /// mirrors Site::RecoveryInfoRows and the
  /// regression_recovery_inflight_coverage trace).
  bool skip_prospective_faillocks = false;
  /// Also assert pointwise fail-lock agreement between operational
  /// observers at quiescence. This checker REFUTED agreement under the
  /// pre-fix commit semantics: a commit racing a recovery announce made
  /// one participant run maintenance under the pre-announce view and
  /// another under the post-announce view, and the divergent rows
  /// persisted across quiescent cuts until a copier rewrote them (6-action
  /// counterexample at 3 sites x 1 item, reproducible with
  /// skip_prepare_view_merge; see docs/ANALYSIS.md). With the fix set —
  /// participant-set maintenance plus the stale-coordinator veto —
  /// agreement holds again at full closure of this model. It stays off by
  /// default because the model commits atomically: the real engine still
  /// legitimately diverges when a participant crashes mid-commit (the
  /// coordinator fail-locks the silent site's copies while the acked
  /// participants cleared them), so agreement is a nominal-regime
  /// observation there, not an invariant. The load-bearing safety property
  /// is kFreshCopyCoverage (local read safety).
  bool check_lock_agreement = false;
};

inline constexpr uint32_t kMaxModelSites = 4;
inline constexpr uint32_t kMaxModelItems = 3;

/// One entry of a session vector as some observer records it.
struct PeerView {
  uint8_t session = 0;
  bool up = true;
};

enum class SiteMode : uint8_t { kUp = 0, kDown = 1, kRecovering = 2 };

/// Protocol-visible state of one modelled site. `locks[x]` bit k set means
/// this site believes site k's copy of item x missed a committed update.
struct ModelSite {
  SiteMode mode = SiteMode::kUp;
  PeerView view[kMaxModelSites];
  uint8_t locks[kMaxModelItems] = {};
  uint8_t ver[kMaxModelItems] = {};
};

/// An in-flight type-1 (recovery) control transaction.
struct ModelRecovery {
  bool active = false;
  uint8_t new_session = 0;
  /// Responders that were up at announce time and have not replied yet.
  uint8_t pending = 0;
  bool any_info = false;
  /// Union of the responders' fail-lock tables / join of their vectors.
  uint8_t info_locks[kMaxModelItems] = {};
  PeerView info_view[kMaxModelSites];
  /// Journal of fail-lock bits written at the recovering site during the
  /// window: `touched[x]` marks columns written, `window_value[x]` their
  /// final value. Replayed over the merged table at completion (unless
  /// AbstractConfig::drop_recovery_window_updates reproduces the bug).
  uint8_t touched[kMaxModelItems] = {};
  uint8_t window_value[kMaxModelItems] = {};
};

/// A commit past its prepare but not yet applied (interleaved_commits
/// only). One slot per item: the per-item exclusive write lock admits at
/// most one transaction between prepare and commit on an item, and the
/// model folds each transaction to a single-item write.
struct ModelPending {
  bool active = false;
  uint8_t coord = 0;
  /// Participant set pinned at prepare time, coordinator included.
  uint8_t participants = 0;
};

struct ModelState {
  ModelSite site[kMaxModelSites];
  ModelRecovery rec[kMaxModelSites];
  ModelPending pend[kMaxModelItems];
  /// Freshest committed version per item, cluster-wide (the oracle the
  /// coverage property compares copies against).
  uint8_t latest[kMaxModelItems] = {};
  uint8_t commits_used = 0;
  uint8_t crashes_used = 0;
  uint8_t refreshes_used = 0;

  /// Byte encoding under a site/item relabeling (identity = plain
  /// encoding). Equal encodings = equal states.
  std::string Encode(const AbstractConfig& cfg, const uint8_t* site_perm,
                     const uint8_t* item_perm) const;
  std::string Dump(const AbstractConfig& cfg) const;
};

/// Returns the model's initial state: all sites up, all sessions 0, no
/// fail-locks, all copies at version 0.
ModelState InitialState(const AbstractConfig& cfg);

struct AbstractAction {
  enum class Kind : uint8_t {
    /// ROWAA write commit of `item` coordinated by `site`: writes at every
    /// participant the coordinator believes up (all of which are actually
    /// reachable — see kDetectFailure otherwise), merges the coordinator's
    /// vector at each participant, and runs fail-lock maintenance there.
    kCommit = 0,
    /// `site` times out on `peer` (commit prepare, copier, or participant
    /// patience — the model does not care which), marks it down, and runs
    /// the type-2 announcement to its believed-up reachable peers.
    kDetectFailure = 1,
    /// `site` crashes (retains state, per the paper's failure model).
    kCrash = 2,
    /// Down `site` starts recovery: bumps its session, announces to all;
    /// up peers become pending responders.
    kBeginRecovery = 3,
    /// Pending responder `peer` processes `site`'s announce — records the
    /// new session, snapshots its vector + fail-lock table into the reply —
    /// and the reply reaches `site`.
    kRecoveryReply = 4,
    /// `site` completes recovery once no pending responder can still
    /// reply: installs the union of the received tables, replays the
    /// window journal, joins vectors, comes up.
    kEndRecovery = 5,
    /// Copier transaction: up `site` refreshes its fail-locked copy of
    /// `item` from `peer` and broadcasts the clear-fail-locks special
    /// transaction.
    kRefresh = 6,
    /// interleaved_commits prepare half of kCommit: coordinator `site`
    /// pins the participant set for `item`, merges its vector at the
    /// participants, and takes the item's pending slot. The write happens
    /// at kEndCommit; a crash of any participant first means presumed
    /// abort (the slot is cleared, nothing was applied).
    kBeginCommit = 7,
    /// interleaved_commits commit half: applies the write and runs
    /// fail-lock maintenance from the pinned participant set, then frees
    /// the pending slot.
    kEndCommit = 8,
    /// batched_commits group-commit apply: coordinator `site` applies every
    /// prepared commit whose slot pinned participant set `peer` (a bit
    /// mask), with the coalesced fail-lock maintenance, in one atomic step;
    /// enabled only when at least two such slots exist. Mirrors the
    /// engine's BatchCommit round (kBatchPrepare .. kBatchCommitAck).
    kEndBatchCommit = 9,
  };
  Kind kind = Kind::kCommit;
  uint8_t site = 0;
  uint8_t peer = 0;
  uint8_t item = 0;

  std::string ToString() const;
};

/// Safety properties asserted on every quiescent state (no recovery in
/// flight). Names follow core/invariants.h where the meaning coincides.
enum class AbstractProperty : uint8_t {
  /// Operational observers agree on every fail-lock column other than
  /// their own ("recovery clears fail-locks everywhere" is the clear
  /// direction of this).
  kLockAgreement = 0,
  /// A fail-lock bit (x, k) at an operational observer that believes k up
  /// while k is actually up requires k's own table to carry the bit.
  kLockOwnerConsistency = 1,
  /// No operational observer records a higher session for an up site than
  /// the site itself.
  kSessionConsistency = 2,
  /// Session numbers never regress along any transition (checked on every
  /// edge, not only quiescent states).
  kSessionMonotonic = 3,
  /// "No committed read of a stale copy": every up site's copy whose
  /// fail-lock bit is clear in the site's OWN table matches the freshest
  /// committed version (reads consult only the local table). The model
  /// asserts the unqualified form: kDetectFailure only fires on actually-
  /// down peers, so the real checker's excluded-site qualifier (false
  /// suspicion under timeout-based detection) never arises here.
  kFreshCopyCoverage = 4,
};

std::string_view AbstractPropertyName(AbstractProperty p);

/// One abstract action's footprint in the implementation: the MsgType
/// handlers that realize it in src/replication/site.cc and the analyzer
/// effect tokens those handlers may produce. This is the bridge between the
/// model's action alphabet and miniraid-analyze's protocol-effect pass: the
/// checked-in effect golden (tools/miniraid-analyze/effects_golden.txt) must
/// stay inside the union of these effect sets, which
/// tests/check_abstract_test.cc asserts. A handler effect with no owning
/// abstract action means the implementation grew a protocol step the model
/// does not explore.
struct ActionEffectVocabulary {
  AbstractAction::Kind kind;
  std::string_view name;                   // enumerator spelling, "kCommit"
  std::vector<std::string_view> handlers;  // realizing MsgType enumerators
  std::vector<std::string_view> effects;   // permitted effect tokens
};

/// The vocabulary for all ten action kinds, in Kind order.
const std::vector<ActionEffectVocabulary>& AbstractActionVocabulary();

struct AbstractViolation {
  AbstractProperty property = AbstractProperty::kLockAgreement;
  std::string detail;
  /// Action path from the initial state to the violating state.
  std::vector<AbstractAction> path;
  /// Human-readable dump of the violating state.
  std::string state;
};

struct AbstractResult {
  uint64_t states_visited = 0;   // canonical states stored
  uint64_t states_expanded = 0;  // dequeued and expanded
  uint64_t transitions = 0;      // edges taken (successors generated)
  uint64_t symmetry_hits = 0;    // successors folded into a visited state
  uint32_t max_depth_reached = 0;
  bool depth_bounded = false;  // some state still had successors at the bound
  bool state_bounded = false;  // max_states cut the search short
  /// Order-independent hash over the canonical visited set; equal runs
  /// must produce equal fingerprints (the determinism witness the smoke
  /// test compares across two executions).
  uint64_t fingerprint = 0;
  std::optional<AbstractViolation> violation;
};

/// Enumerates every action enabled in `state` (deterministic order).
std::vector<AbstractAction> EnabledActions(const AbstractConfig& cfg,
                                           const ModelState& state);

/// Applies `action` (which must be enabled) and returns the successor.
ModelState ApplyAction(const AbstractConfig& cfg, const ModelState& state,
                       const AbstractAction& action);

/// Checks the quiescent-state properties; returns a description of the
/// first violated one, or nullopt.
std::optional<std::pair<AbstractProperty, std::string>> CheckState(
    const AbstractConfig& cfg, const ModelState& state);

/// Bounded exhaustive BFS from the initial state. Stops at the first
/// property violation.
AbstractResult ExploreAbstract(const AbstractConfig& cfg);

}  // namespace miniraid::check

#endif  // MINIRAID_CHECK_ABSTRACT_MODEL_H_

// minicheck: exhaustive protocol state-space checker for mini-RAID.
//
//   minicheck abstract [--sites N] [--items M] [--depth D] [--bug NAME]
//       bounded exhaustive BFS over the abstract protocol model
//   minicheck systematic --scenario NAME
//       systematic execution of the real Site code under a schedule
//   minicheck --replay FILE
//       byte-for-byte replay of a recorded trace, re-asserting invariants
//   minicheck --record-golden NAME --out FILE
//       record a golden schedule for a named scenario
//   minicheck --smoke
//       CI entry: abstract + systematic, each run twice, determinism
//       compared; summary JSON via --json
//   minicheck --list
//       list scenario names
//   minicheck --effect-vocab FILE
//       dump the abstract action -> handler/effect vocabulary as JSON
//       (the contract miniraid-analyze's effect golden is checked against)
//
// Exit codes: 0 clean, 1 property/invariant violation, 2 usage or
// determinism failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "check/abstract_model.h"
#include "check/systematic.h"
#include "check/trace_io.h"
#include "common/strings.h"

namespace miniraid::check {
namespace {

struct Args {
  std::vector<std::string> positional;
  std::string scenario;
  std::string replay_path;
  std::string golden_scenario;
  std::string out_path;
  std::string json_path;
  std::string bug;
  bool check_agreement = false;
  bool interleaved = false;
  bool batched = false;
  uint32_t sites = 3;
  uint32_t items = 2;
  uint32_t depth = 12;
  uint64_t max_executions = 0;  // 0 = scenario default
  uint32_t branch_points = 0;   // 0 = scenario default
  bool no_symmetry = false;
  bool smoke = false;
  bool list = false;
  std::string effect_vocab_path;
  bool effect_vocab = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: minicheck abstract|systematic [options]\n"
               "       minicheck --replay FILE | --record-golden NAME --out "
               "FILE | --smoke | --list | --effect-vocab FILE\n"
               "options: --sites N --items M --depth D --interleaved "
               "--batched --bug "
               "drop-window|skip-merge|narrow-clear|skip-prospective "
               "--scenario NAME\n"
               "         --max-executions N --branch-points N --no-symmetry "
               "--json FILE --out FILE\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--smoke") {
      args->smoke = true;
    } else if (a == "--list") {
      args->list = true;
    } else if (a == "--effect-vocab") {
      const char* v = next();
      if (!v) return false;
      args->effect_vocab = true;
      args->effect_vocab_path = v;
    } else if (a == "--no-symmetry") {
      args->no_symmetry = true;
    } else if (a == "--check-agreement") {
      args->check_agreement = true;
    } else if (a == "--interleaved") {
      args->interleaved = true;
    } else if (a == "--batched") {
      args->batched = true;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return false;
      args->replay_path = v;
    } else if (a == "--record-golden") {
      const char* v = next();
      if (!v) return false;
      args->golden_scenario = v;
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (a == "--json") {
      const char* v = next();
      if (!v) return false;
      args->json_path = v;
    } else if (a == "--scenario") {
      const char* v = next();
      if (!v) return false;
      args->scenario = v;
    } else if (a == "--bug") {
      const char* v = next();
      if (!v) return false;
      args->bug = v;
    } else if (a == "--sites") {
      const char* v = next();
      if (!v) return false;
      args->sites = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--items") {
      const char* v = next();
      if (!v) return false;
      args->items = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--depth") {
      const char* v = next();
      if (!v) return false;
      args->depth = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--max-executions") {
      const char* v = next();
      if (!v) return false;
      args->max_executions = std::strtoull(v, nullptr, 10);
    } else if (a == "--branch-points") {
      const char* v = next();
      if (!v) return false;
      args->branch_points = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (!a.empty() && a[0] != '-') {
      args->positional.push_back(a);
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFileOrStdout(const std::string& path, const std::string& body) {
  if (path.empty() || path == "-") {
    std::fputs(body.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

std::string AbstractSummaryJson(const AbstractConfig& cfg,
                                const AbstractResult& r, bool deterministic) {
  std::string s = "{\n";
  s += StrFormat("  \"mode\": \"abstract\",\n  \"n_sites\": %u,\n", cfg.n_sites);
  s += StrFormat("  \"n_items\": %u,\n  \"max_depth\": %u,\n", cfg.n_items,
                 cfg.max_depth);
  s += StrFormat("  \"states_visited\": %llu,\n",
                 static_cast<unsigned long long>(r.states_visited));
  s += StrFormat("  \"states_expanded\": %llu,\n",
                 static_cast<unsigned long long>(r.states_expanded));
  s += StrFormat("  \"transitions\": %llu,\n",
                 static_cast<unsigned long long>(r.transitions));
  s += StrFormat("  \"symmetry_hits\": %llu,\n",
                 static_cast<unsigned long long>(r.symmetry_hits));
  s += StrFormat("  \"max_depth_reached\": %u,\n", r.max_depth_reached);
  s += StrFormat("  \"depth_bounded\": %s,\n",
                 r.depth_bounded ? "true" : "false");
  s += StrFormat("  \"fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.fingerprint));
  s += StrFormat("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  s += StrFormat("  \"violations\": %d\n}\n", r.violation ? 1 : 0);
  return s;
}

std::string SystematicSummaryJson(const SystematicResult& r,
                                  bool deterministic) {
  std::string s = "{\n  \"mode\": \"systematic\",\n";
  s += StrFormat("  \"executions\": %llu,\n",
                 static_cast<unsigned long long>(r.executions));
  s += StrFormat("  \"steps_total\": %llu,\n",
                 static_cast<unsigned long long>(r.steps_total));
  s += StrFormat("  \"branch_points\": %llu,\n",
                 static_cast<unsigned long long>(r.branch_points));
  s += StrFormat("  \"sleep_skips\": %llu,\n",
                 static_cast<unsigned long long>(r.sleep_skips));
  s += StrFormat("  \"max_choice_points\": %u,\n", r.max_choice_points);
  s += StrFormat("  \"execution_bounded\": %s,\n",
                 r.execution_bounded ? "true" : "false");
  s += StrFormat("  \"branch_bounded\": %s,\n",
                 r.branch_bounded ? "true" : "false");
  s += StrFormat("  \"fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.fingerprint));
  s += StrFormat("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  s += StrFormat("  \"violations\": %zu\n}\n", r.violations.size());
  return s;
}

void PrintAbstractViolation(const AbstractViolation& v) {
  std::printf("VIOLATION: %s\n  %s\n  path (%zu actions):\n",
              std::string(AbstractPropertyName(v.property)).c_str(),
              v.detail.c_str(), v.path.size());
  for (const AbstractAction& a : v.path) {
    std::printf("    %s\n", a.ToString().c_str());
  }
  std::printf("  state:\n%s", v.state.c_str());
}

AbstractConfig AbstractConfigFromArgs(const Args& args) {
  AbstractConfig cfg;
  cfg.n_sites = args.sites;
  cfg.n_items = args.items;
  cfg.max_depth = args.depth;
  cfg.canonicalize = !args.no_symmetry;
  cfg.drop_recovery_window_updates = args.bug == "drop-window";
  cfg.skip_prepare_view_merge = args.bug == "skip-merge";
  cfg.narrow_clear_broadcast = args.bug == "narrow-clear";
  cfg.skip_prospective_faillocks = args.bug == "skip-prospective";
  // The prospective-fail-lock bug only exists when prepare and commit are
  // separate steps, so the toggle implies the interleaved transition set.
  // Group commit only exists as distinct prepare/apply steps, so --batched
  // implies the interleaved transition set too.
  cfg.batched_commits = args.batched;
  cfg.interleaved_commits = args.interleaved || args.batched ||
                            cfg.skip_prospective_faillocks;
  cfg.check_lock_agreement = args.check_agreement;
  return cfg;
}

int RunAbstract(const Args& args) {
  if (!args.bug.empty() && args.bug != "drop-window" &&
      args.bug != "skip-merge" && args.bug != "narrow-clear" &&
      args.bug != "skip-prospective") {
    std::fprintf(stderr, "unknown --bug %s\n", args.bug.c_str());
    return 2;
  }
  AbstractConfig cfg = AbstractConfigFromArgs(args);
  AbstractResult r = ExploreAbstract(cfg);
  std::printf(
      "abstract: %llu states (%llu expanded), %llu transitions, "
      "%llu symmetry hits, depth %u%s, fingerprint %016llx\n",
      static_cast<unsigned long long>(r.states_visited),
      static_cast<unsigned long long>(r.states_expanded),
      static_cast<unsigned long long>(r.transitions),
      static_cast<unsigned long long>(r.symmetry_hits), r.max_depth_reached,
      r.depth_bounded ? " (depth-bounded)" : "",
      static_cast<unsigned long long>(r.fingerprint));
  if (!args.json_path.empty()) {
    WriteFileOrStdout(args.json_path, AbstractSummaryJson(cfg, r, true));
  }
  if (r.violation) {
    PrintAbstractViolation(*r.violation);
    return 1;
  }
  std::printf("no violation\n");
  return 0;
}

int RunSystematic(const Args& args) {
  std::string name = args.scenario.empty() ? "smoke" : args.scenario;
  std::optional<SystematicOptions> opts = ScenarioByName(name);
  if (!opts) {
    std::fprintf(stderr, "unknown scenario %s (try --list)\n", name.c_str());
    return 2;
  }
  if (args.max_executions) opts->max_executions = args.max_executions;
  if (args.branch_points) opts->max_branch_points = args.branch_points;
  SystematicResult r = ExploreSystematic(*opts);
  std::printf(
      "systematic[%s]: %llu executions, %llu steps, %llu branch points, "
      "%llu sleep skips%s%s, fingerprint %016llx\n",
      name.c_str(), static_cast<unsigned long long>(r.executions),
      static_cast<unsigned long long>(r.steps_total),
      static_cast<unsigned long long>(r.branch_points),
      static_cast<unsigned long long>(r.sleep_skips),
      r.execution_bounded ? " (execution-bounded)" : "",
      r.branch_bounded ? " (branch-bounded)" : "",
      static_cast<unsigned long long>(r.fingerprint));
  if (!args.json_path.empty()) {
    WriteFileOrStdout(args.json_path, SystematicSummaryJson(r, true));
  }
  if (r.counterexample) {
    std::printf("VIOLATION:\n");
    for (const std::string& v : r.violations) {
      std::printf("  %s\n", v.c_str());
    }
    std::string path = args.out_path.empty() ? name + ".counterexample.json"
                                             : args.out_path;
    Status st = WriteTraceFile(path, *r.counterexample);
    if (st.ok()) {
      std::printf("counterexample trace written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   st.ToString().c_str());
    }
    return 1;
  }
  std::printf("no violation\n");
  return 0;
}

int RunReplay(const Args& args) {
  Result<CheckTrace> trace = ReadTraceFile(args.replay_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }
  ReplayOutcome out = ReplayTrace(*trace, SystematicOracleOptions());
  std::printf("replay[%s]: %llu steps, %u choice points, %s\n",
              args.replay_path.c_str(),
              static_cast<unsigned long long>(out.steps), out.choice_points,
              out.matched ? "matched" : "DIVERGED");
  if (!out.matched) {
    std::printf("  %s\n", out.mismatch.c_str());
    return 2;
  }
  if (!out.violations.empty()) {
    std::printf("VIOLATION:\n");
    for (const std::string& v : out.violations) {
      std::printf("  %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("no violation\n");
  return 0;
}

int RunRecordGolden(const Args& args) {
  std::optional<SystematicOptions> opts = ScenarioByName(args.golden_scenario);
  if (!opts) {
    std::fprintf(stderr, "unknown scenario %s (try --list)\n",
                 args.golden_scenario.c_str());
    return 2;
  }
  CheckTrace trace = RecordGoldenTrace(*opts);
  trace.note = StrFormat("golden schedule for scenario \"%s\"; %s",
                         args.golden_scenario.c_str(), trace.note.c_str());
  std::string body = TraceToJson(trace);
  if (!WriteFileOrStdout(args.out_path, body)) {
    std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
    return 2;
  }
  return 0;
}

int RunSmoke(const Args& args) {
  // Abstract model, default 3 sites x 2 items, run twice: the second run
  // must reproduce the first bit for bit (state count and fingerprint).
  AbstractConfig cfg = AbstractConfigFromArgs(args);
  AbstractResult a1 = ExploreAbstract(cfg);
  AbstractResult a2 = ExploreAbstract(cfg);
  bool abstract_deterministic = a1.states_visited == a2.states_visited &&
                                a1.transitions == a2.transitions &&
                                a1.fingerprint == a2.fingerprint;
  std::printf(
      "abstract: %llu states, %llu transitions, depth %u%s, fingerprint "
      "%016llx, deterministic=%s\n",
      static_cast<unsigned long long>(a1.states_visited),
      static_cast<unsigned long long>(a1.transitions), a1.max_depth_reached,
      a1.depth_bounded ? " (depth-bounded)" : "",
      static_cast<unsigned long long>(a1.fingerprint),
      abstract_deterministic ? "true" : "false");

  std::optional<SystematicOptions> scen = ScenarioByName("smoke");
  SystematicResult s1 = ExploreSystematic(*scen);
  SystematicResult s2 = ExploreSystematic(*scen);
  bool systematic_deterministic = s1.executions == s2.executions &&
                                  s1.steps_total == s2.steps_total &&
                                  s1.fingerprint == s2.fingerprint;
  std::printf(
      "systematic[smoke]: %llu executions, %llu steps, fingerprint %016llx, "
      "deterministic=%s\n",
      static_cast<unsigned long long>(s1.executions),
      static_cast<unsigned long long>(s1.steps_total),
      static_cast<unsigned long long>(s1.fingerprint),
      systematic_deterministic ? "true" : "false");

  if (!args.json_path.empty()) {
    std::string body = "{\n  \"abstract\": ";
    std::string a = AbstractSummaryJson(cfg, a1, abstract_deterministic);
    std::string s = SystematicSummaryJson(s1, systematic_deterministic);
    // Indent the nested objects by two spaces for readability.
    body += a.substr(0, a.size() - 1);
    body += ",\n  \"systematic\": ";
    body += s.substr(0, s.size() - 1);
    body += "\n}\n";
    WriteFileOrStdout(args.json_path, body);
  }

  if (a1.violation) {
    PrintAbstractViolation(*a1.violation);
    return 1;
  }
  if (s1.counterexample) {
    std::printf("VIOLATION:\n");
    for (const std::string& v : s1.violations) {
      std::printf("  %s\n", v.c_str());
    }
    return 1;
  }
  if (!abstract_deterministic || !systematic_deterministic) {
    std::fprintf(stderr, "determinism check FAILED\n");
    return 2;
  }
  std::printf("smoke: clean and deterministic\n");
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.list) {
    for (std::string_view name : ScenarioNames()) {
      std::printf("%s\n", std::string(name).c_str());
    }
    return 0;
  }
  if (args.effect_vocab) {
    std::string body = "{\n";
    const auto& vocab = AbstractActionVocabulary();
    for (size_t i = 0; i < vocab.size(); ++i) {
      const ActionEffectVocabulary& v = vocab[i];
      body += StrFormat("  \"%s\": {\"handlers\": [",
                        std::string(v.name).c_str());
      for (size_t j = 0; j < v.handlers.size(); ++j) {
        body += StrFormat("%s\"%s\"", j ? ", " : "",
                          std::string(v.handlers[j]).c_str());
      }
      body += "], \"effects\": [";
      for (size_t j = 0; j < v.effects.size(); ++j) {
        body += StrFormat("%s\"%s\"", j ? ", " : "",
                          std::string(v.effects[j]).c_str());
      }
      body += StrFormat("]}%s\n", i + 1 < vocab.size() ? "," : "");
    }
    body += "}\n";
    if (!WriteFileOrStdout(args.effect_vocab_path, body)) {
      std::fprintf(stderr, "minicheck: cannot write %s\n",
                   args.effect_vocab_path.c_str());
      return 2;
    }
    return 0;
  }
  if (args.smoke) return RunSmoke(args);
  if (!args.replay_path.empty()) return RunReplay(args);
  if (!args.golden_scenario.empty()) return RunRecordGolden(args);
  if (args.positional.size() == 1 && args.positional[0] == "abstract") {
    return RunAbstract(args);
  }
  if (args.positional.size() == 1 && args.positional[0] == "systematic") {
    return RunSystematic(args);
  }
  return Usage();
}

}  // namespace
}  // namespace miniraid::check

int main(int argc, char** argv) { return miniraid::check::Main(argc, argv); }

#include "check/systematic.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/cluster.h"
#include "sim/event_queue.h"
#include "txn/transaction.h"

namespace miniraid::check {

namespace {

/// Chooser return value meaning "every continuation from here is covered by
/// an earlier sibling's subtree — end this execution".
constexpr size_t kAbortExecution = static_cast<size_t>(-1);

/// Identity of one scheduling option. Event ids are allocated
/// deterministically by the simulator, so the same id names the same
/// pending event across the re-executions of a common prefix.
struct OptionKey {
  bool action = false;  ///< inject the next external action
  EventQueue::EventId event = 0;
  SiteId site = kInvalidSite;

  bool operator==(const OptionKey& o) const {
    return action == o.action && event == o.event && site == o.site;
  }
};

/// Two options commute when they are deliveries bound to distinct site
/// contexts: each handler reads and writes only its own site's state, and
/// the messages either sends are ordered by their own later delivery
/// events, which the explorer branches on separately. Everything else
/// (external actions, global events) is conservatively dependent.
bool Independent(const OptionKey& a, const OptionKey& b) {
  if (a.action || b.action) return false;
  if (a.site == kInvalidSite || b.site == kInvalidSite) return false;
  return a.site != b.site;
}

bool InSet(const std::vector<OptionKey>& set, const OptionKey& k) {
  return std::find(set.begin(), set.end(), k) != set.end();
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

struct ExecutionOutcome {
  uint64_t steps = 0;
  uint32_t choice_points = 0;
  std::vector<InvariantViolation> violations;
  bool aborted = false;
};

void Inject(SimCluster& cluster, const ScheduleAction& action) {
  switch (action.kind) {
    case ScheduleAction::Kind::kSubmit:
      cluster.SubmitTxn(action.txn, action.site, [](const TxnResult&) {});
      break;
    case ScheduleAction::Kind::kFail:
      cluster.managing().FailSite(action.site);
      break;
    case ScheduleAction::Kind::kRecover:
      cluster.managing().RecoverSite(action.site);
      break;
  }
}

/// Runs the schedule once over a fresh SimCluster. At every step the
/// enabled options are the events tied at the front virtual time (FIFO
/// order) plus — unless the next action is serial — injecting that action;
/// `choose` returns the index to take. The cluster-wide invariants are
/// asserted at every quiescent cut (event queue drained); the execution
/// stops at the first violating cut.
ExecutionOutcome RunOneExecution(
    const SystematicOptions& sopts,
    const std::function<size_t(const std::vector<OptionKey>&)>& choose) {
  ClusterOptions copts;
  copts.backend = ClusterBackend::kSim;
  copts.n_sites = sopts.n_sites;
  copts.db_size = sopts.db_size;
  copts.site.concurrency = sopts.concurrency;
  copts.site.batching = sopts.batching;
  // Zero latency folds each protocol exchange onto one virtual instant, so
  // the front-time tie set is exactly the delivery nondeterminism.
  copts.transport.message_latency = 0;
  // The explorer owns invariant checking; the cluster's own enforcement
  // would MR_CHECK-abort instead of reporting.
  copts.check_invariants = false;
  std::unique_ptr<SimCluster> cluster = MakeSimCluster(copts);
  InvariantChecker checker(sopts.invariants);

  ExecutionOutcome out;
  size_t next_action = 0;
  while (true) {
    std::vector<EventQueue::FrontEvent> events =
        cluster->runtime().RunnableEvents();
    const bool have_action = next_action < sopts.actions.size();
    if (events.empty()) {
      // Quiescent cut: every message delivered, no timer pending.
      std::vector<InvariantViolation> found =
          checker.Check(cluster->SnapshotSites());
      if (!found.empty()) {
        out.violations = std::move(found);
        return out;
      }
      if (!have_action) return out;
    }
    const ScheduleAction* next =
        have_action ? &sopts.actions[next_action] : nullptr;
    std::vector<OptionKey> options;
    options.reserve(events.size() + 1);
    for (const EventQueue::FrontEvent& e : events) {
      options.push_back(OptionKey{false, e.id, e.site});
    }
    if (next != nullptr && (events.empty() || !next->serial)) {
      options.push_back(OptionKey{true, 0, kInvalidSite});
    }
    MR_CHECK(!options.empty());
    size_t pick = choose(options);
    if (pick == kAbortExecution) {
      out.aborted = true;
      return out;
    }
    MR_CHECK(pick < options.size());
    if (options.size() > 1) ++out.choice_points;
    if (options[pick].action) {
      Inject(*cluster, *next);
      ++next_action;
    } else {
      cluster->runtime().RunEventById(options[pick].event);
    }
    ++out.steps;
  }
}

uint64_t ExecutionFingerprint(const std::vector<uint32_t>& picks,
                              const std::vector<uint32_t>& fanouts,
                              uint64_t steps) {
  std::string key;
  key.reserve(picks.size() * 8 + 8);
  auto append32 = [&key](uint32_t v) {
    for (int i = 0; i < 4; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
  };
  for (size_t i = 0; i < picks.size(); ++i) {
    append32(picks[i]);
    append32(fanouts[i]);
  }
  append32(static_cast<uint32_t>(steps));
  append32(static_cast<uint32_t>(steps >> 32));
  return Mix(Fnv1a(key));
}

TxnSpec WriteTxn(TxnId id, ItemId item) {
  TxnSpec txn;
  txn.id = id;
  txn.ops.push_back(Operation::Write(item, WriteValueFor(id, item)));
  return txn;
}

}  // namespace

SystematicResult ExploreSystematic(const SystematicOptions& sopts) {
  struct Branch {
    std::vector<OptionKey> options;
    std::vector<char> explored;  ///< alternatives whose subtree is finished
    size_t taken = 0;
    /// Sleep set on first arrival: options covered by an earlier sibling of
    /// some ancestor; never taken here.
    std::vector<OptionKey> base_sleep;
  };
  std::vector<Branch> stack;
  SystematicResult result;

  while (true) {
    if (result.executions >= sopts.max_executions) {
      result.execution_bounded = true;
      break;
    }
    size_t cursor = 0;             // next recorded branch to follow
    std::vector<OptionKey> sleep;  // current sleep set along this execution
    std::vector<uint32_t> picks;
    std::vector<uint32_t> fanouts;

    auto choose = [&](const std::vector<OptionKey>& options) -> size_t {
      // Branches were recorded only at genuine choice points (>= 2 options
      // outside the sleep set), so the prefix-replay cursor must advance on
      // exactly the same condition. The sleep set evolves deterministically
      // along the common prefix, so `allowed` is recomputed identically.
      const bool replaying = cursor < stack.size();
      std::vector<size_t> allowed;
      allowed.reserve(options.size());
      for (size_t i = 0; i < options.size(); ++i) {
        if (sopts.sleep_sets && InSet(sleep, options[i])) {
          if (!replaying) ++result.sleep_skips;
          continue;
        }
        allowed.push_back(i);
      }
      if (allowed.empty()) return kAbortExecution;  // covered elsewhere
      size_t pick;
      if (replaying && allowed.size() >= 2) {
        Branch& b = stack[cursor];
        MR_CHECK(b.options == options)
            << "systematic explorer: options diverged at recorded branch "
            << cursor << " — replay is not deterministic";
        pick = b.taken;
        // Sleep set for the continuation: inherited members plus siblings
        // already fully explored, restricted to those that commute with the
        // transition being taken (a dependent step invalidates coverage).
        std::vector<OptionKey> next_sleep;
        for (const OptionKey& u : b.base_sleep) {
          if (Independent(u, options[pick])) next_sleep.push_back(u);
        }
        for (size_t j = 0; j < options.size(); ++j) {
          if (b.explored[j] && j != pick &&
              Independent(options[j], options[pick]) &&
              !InSet(next_sleep, options[j])) {
            next_sleep.push_back(options[j]);
          }
        }
        sleep = std::move(next_sleep);
        ++cursor;
      } else {
        pick = allowed[0];
        if (!replaying && allowed.size() >= 2) {
          if (stack.size() < sopts.max_branch_points) {
            Branch b;
            b.options = options;
            b.explored.assign(options.size(), 0);
            b.taken = pick;
            b.base_sleep = sleep;
            stack.push_back(std::move(b));
            ++cursor;
            ++result.branch_points;
          } else {
            result.branch_bounded = true;
          }
        }
        std::vector<OptionKey> next_sleep;
        for (const OptionKey& u : sleep) {
          if (Independent(u, options[pick])) next_sleep.push_back(u);
        }
        sleep = std::move(next_sleep);
      }
      if (options.size() > 1) {
        picks.push_back(static_cast<uint32_t>(pick));
        fanouts.push_back(static_cast<uint32_t>(options.size()));
      }
      return pick;
    };

    ExecutionOutcome exec = RunOneExecution(sopts, choose);
    ++result.executions;
    result.steps_total += exec.steps;
    result.max_choice_points =
        std::max(result.max_choice_points, exec.choice_points);
    result.fingerprint ^= ExecutionFingerprint(picks, fanouts, exec.steps);

    if (!exec.violations.empty()) {
      CheckTrace trace;
      trace.n_sites = sopts.n_sites;
      trace.db_size = sopts.db_size;
      trace.concurrency = sopts.concurrency;
      trace.batching = sopts.batching;
      trace.actions = sopts.actions;
      trace.picks = std::move(picks);
      trace.fanouts = std::move(fanouts);
      trace.note = StrFormat("counterexample (execution %lu): %s",
                             static_cast<unsigned long>(result.executions),
                             exec.violations.front().ToString().c_str());
      result.counterexample = std::move(trace);
      for (const InvariantViolation& v : exec.violations) {
        result.violations.push_back(v.ToString());
      }
      break;
    }
    MR_CHECK(cursor == stack.size())
        << "execution ended before traversing every recorded branch";

    // Backtrack: flip the deepest branch with an untried, non-sleeping
    // alternative; discard exhausted branches.
    bool advanced = false;
    while (!stack.empty()) {
      Branch& b = stack.back();
      b.explored[b.taken] = 1;
      size_t next = b.options.size();
      for (size_t j = b.taken + 1; j < b.options.size(); ++j) {
        if (b.explored[j]) continue;
        if (sopts.sleep_sets && InSet(b.base_sleep, b.options[j])) {
          ++result.sleep_skips;
          continue;
        }
        next = j;
        break;
      }
      if (next < b.options.size()) {
        b.taken = next;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) break;  // state space exhausted within the bounds
  }
  return result;
}

ReplayOutcome ReplayTrace(const CheckTrace& trace,
                          const InvariantChecker::Options& invariants) {
  SystematicOptions sopts;
  sopts.n_sites = trace.n_sites;
  sopts.db_size = trace.db_size;
  sopts.concurrency = trace.concurrency;
  sopts.batching = trace.batching;
  sopts.actions = trace.actions;
  sopts.invariants = invariants;

  ReplayOutcome out;
  size_t next_pick = 0;
  auto choose = [&](const std::vector<OptionKey>& options) -> size_t {
    if (options.size() <= 1) return 0;
    ++out.choice_points;
    if (next_pick >= trace.picks.size()) return 0;  // past the recorded prefix
    if (trace.fanouts[next_pick] != options.size()) {
      out.matched = false;
      out.mismatch = StrFormat(
          "choice point %zu: trace recorded fanout %u but live execution "
          "offers %zu options",
          next_pick, trace.fanouts[next_pick], options.size());
      return kAbortExecution;
    }
    return trace.picks[next_pick++];
  };

  ExecutionOutcome exec = RunOneExecution(sopts, choose);
  out.steps = exec.steps;
  if (out.matched && next_pick < trace.picks.size()) {
    out.matched = false;
    out.mismatch = StrFormat(
        "execution ended with %zu of %zu recorded picks unconsumed",
        trace.picks.size() - next_pick, trace.picks.size());
  }
  for (const InvariantViolation& v : exec.violations) {
    out.violations.push_back(v.ToString());
  }
  return out;
}

CheckTrace RecordGoldenTrace(const SystematicOptions& sopts) {
  std::vector<uint32_t> picks;
  std::vector<uint32_t> fanouts;
  uint64_t index = 0;
  auto choose = [&](const std::vector<OptionKey>& options) -> size_t {
    size_t pick = 0;
    if (options.size() > 1) {
      // Pseudo-deterministic non-FIFO picks: exercises reordering without
      // any randomness (determinism is the whole point of the trace).
      pick = static_cast<size_t>((index * 7 + 3) % options.size());
      picks.push_back(static_cast<uint32_t>(pick));
      fanouts.push_back(static_cast<uint32_t>(options.size()));
      ++index;
    }
    return pick;
  };
  ExecutionOutcome exec = RunOneExecution(sopts, choose);
  CheckTrace trace;
  trace.n_sites = sopts.n_sites;
  trace.db_size = sopts.db_size;
  trace.concurrency = sopts.concurrency;
  trace.batching = sopts.batching;
  trace.actions = sopts.actions;
  trace.picks = std::move(picks);
  trace.fanouts = std::move(fanouts);
  trace.note =
      exec.violations.empty()
          ? StrFormat("golden schedule, %lu steps",
                      static_cast<unsigned long>(exec.steps))
          : StrFormat("golden schedule, VIOLATES: %s",
                      exec.violations.front().ToString().c_str());
  return trace;
}

InvariantChecker::Options SystematicOracleOptions() {
  InvariantChecker::Options options;
  options.check_fail_lock_agreement = false;  // see the header for why
  return options;
}

std::vector<std::string_view> ScenarioNames() {
  return {"smoke", "recovery-skew", "recovery-window", "double-failure",
          "interleaved-2pl", "batched-commit"};
}

std::optional<SystematicOptions> ScenarioByName(std::string_view name) {
  SystematicOptions s;
  s.n_sites = 3;
  s.db_size = 2;
  s.invariants = SystematicOracleOptions();
  if (name == "smoke") {
    // One failure/recovery cycle with concurrent traffic; small enough to
    // exhaust in CI.
    s.actions = {
        ScheduleAction::Submit(WriteTxn(1, 0), 0, /*serial=*/true),
        ScheduleAction::Fail(2, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(2, 0), 1),
        ScheduleAction::Recover(2),
        ScheduleAction::Submit(WriteTxn(3, 1), 0),
    };
    s.max_branch_points = 10;
    s.max_executions = 2000;
    return s;
  }
  if (name == "recovery-skew") {
    // Deterministic prefix: site 0 fails, one commit fail-locks its copies.
    // Free suffix: a commit racing the recovery announcements, so one
    // participant can run commit-time maintenance under a pre-announce view
    // while another already saw the announce.
    s.actions = {
        ScheduleAction::Fail(0, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(1, 0), 1, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(2, 0), 1, /*serial=*/true),
        ScheduleAction::Recover(0, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(3, 0), 1),
    };
    s.max_branch_points = 18;
    s.max_executions = 60000;
    return s;
  }
  if (name == "recovery-window") {
    // Site 0 recovers while responder 2 is down, holding the recovery open
    // until the ack timeout; the free commit lands inside that window, so
    // its fail-lock maintenance at site 0 races the completion merge.
    s.actions = {
        ScheduleAction::Fail(0, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(1, 0), 1, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(2, 0), 1, /*serial=*/true),
        ScheduleAction::Fail(2, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(3, 0), 1, /*serial=*/true),
        ScheduleAction::Recover(0, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(4, 0), 1),
    };
    s.max_branch_points = 18;
    s.max_executions = 60000;
    return s;
  }
  if (name == "interleaved-2pl") {
    // Intra-site concurrency: with site 2 down, two coordinations with
    // conflicting write sets overlap at coordinator 0 (per-item 2PL,
    // wait-die — no lock timers, so every cut quiesces). Each commit runs
    // fail-lock maintenance for the dead site's copies while the other
    // executor is mid-flight on the same engine, so the explorer covers
    // lock hand-off, wait-die rejection, and maintenance/executor
    // interleavings; the serial recovery then re-checks the column merge.
    s.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
    s.concurrency.max_executors = 2;
    s.concurrency.deadlock_policy = DeadlockPolicy::kWaitDie;
    s.actions = {
        ScheduleAction::Submit(WriteTxn(1, 0), 0, /*serial=*/true),
        ScheduleAction::Fail(2, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(2, 0), 0),
        ScheduleAction::Submit(WriteTxn(3, 0), 0),
        ScheduleAction::Recover(2, /*serial=*/true),
    };
    // Exhausts at ~51k executions / ~45k branch nodes (a couple of seconds);
    // the bounds leave headroom so the run reports a genuine full sweep.
    s.max_branch_points = 32;
    s.max_executions = 80000;
    return s;
  }
  if (name == "batched-commit") {
    // Group commit: with site 2 down (so commit-time maintenance has
    // fail-locks to write), two coordinations on DISTINCT items overlap at
    // coordinator 0 under 2PL with batching on. Schedules where both reach
    // their prepare in the same step drain as one BatchPrepare/BatchCommit
    // round with coalesced maintenance; schedules where they do not cover
    // the batch-of-1 degrade path — the explorer sweeps both, plus the
    // batch round racing failure detection and the serial recovery's
    // column merge afterwards.
    s.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
    s.concurrency.max_executors = 2;
    s.concurrency.deadlock_policy = DeadlockPolicy::kWaitDie;
    s.batching.max_batch = 2;
    s.batching.batch_linger = 0;
    s.actions = {
        ScheduleAction::Submit(WriteTxn(1, 0), 0, /*serial=*/true),
        ScheduleAction::Fail(2, /*serial=*/true),
        ScheduleAction::Submit(WriteTxn(2, 0), 0),
        ScheduleAction::Submit(WriteTxn(3, 1), 0),
        ScheduleAction::Recover(2, /*serial=*/true),
    };
    s.max_branch_points = 32;
    s.max_executions = 80000;
    return s;
  }
  if (name == "double-failure") {
    // Failure and recovery themselves injected at arbitrary points into
    // running traffic.
    s.actions = {
        ScheduleAction::Submit(WriteTxn(1, 0), 0, /*serial=*/true),
        ScheduleAction::Fail(1),
        ScheduleAction::Submit(WriteTxn(2, 0), 0),
        ScheduleAction::Recover(1),
        ScheduleAction::Submit(WriteTxn(3, 1), 2),
    };
    s.max_branch_points = 12;
    s.max_executions = 20000;
    return s;
  }
  return std::nullopt;
}

}  // namespace miniraid::check

#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

constexpr size_t kHeaderBytes = 8;  // u32 length + u32 crc
constexpr uint32_t kMaxRecordBytes = 64u << 20;

uint32_t ReadLE32(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

void WriteLE32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

/// Scans the file for the longest valid prefix of records, invoking `fn`
/// (when non-null) for each.
Status ScanValidPrefix(
    std::FILE* file,
    const std::function<Status(const uint8_t*, size_t)>* fn,
    uint64_t* valid_bytes) {
  uint64_t offset = 0;
  std::vector<uint8_t> payload;
  while (true) {
    uint8_t header[kHeaderBytes];
    const size_t got = std::fread(header, 1, kHeaderBytes, file);
    if (got < kHeaderBytes) break;  // clean EOF or torn header
    const uint32_t length = ReadLE32(header);
    const uint32_t crc = ReadLE32(header + 4);
    if (length > kMaxRecordBytes) break;  // garbage length: torn tail
    payload.resize(length);
    if (std::fread(payload.data(), 1, length, file) < length) break;
    if (Crc32(payload.data(), payload.size()) != crc) break;
    if (fn != nullptr && *fn) {
      MINIRAID_RETURN_IF_ERROR((*fn)(payload.data(), payload.size()));
    }
    offset += kHeaderBytes + length;
  }
  if (valid_bytes != nullptr) *valid_bytes = offset;
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const Options& options) {
  // Determine the valid prefix (tolerating a torn tail from a crash).
  uint64_t valid = 0;
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe != nullptr) {
    const Status scanned = ScanValidPrefix(probe, nullptr, &valid);
    std::fclose(probe);
    MINIRAID_RETURN_IF_ERROR(scanned);
    if (::truncate(path.c_str(), static_cast<off_t>(valid)) != 0) {
      return Status::IoError(
          StrFormat("truncate %s: %s", path.c_str(), std::strerror(errno)));
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError(
        StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, file, valid, options));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(const uint8_t* payload, size_t size) {
  if (size > kMaxRecordBytes) {
    return Status::InvalidArgument("record too large");
  }
  uint8_t header[kHeaderBytes];
  WriteLE32(header, static_cast<uint32_t>(size));
  WriteLE32(header + 4, Crc32(payload, size));
  if (std::fwrite(header, 1, kHeaderBytes, file_) < kHeaderBytes ||
      std::fwrite(payload, 1, size, file_) < size) {
    return Status::IoError(StrFormat("append to %s failed", path_.c_str()));
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError(StrFormat("flush %s failed", path_.c_str()));
  }
  if (options_.sync_each_append) {
    MINIRAID_RETURN_IF_ERROR(Sync());
  }
  size_bytes_ += kHeaderBytes + size;
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IoError(StrFormat("fsync %s failed", path_.c_str()));
  }
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError(
        StrFormat("reopen %s: %s", path_.c_str(), std::strerror(errno)));
  }
  size_bytes_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const uint8_t*, size_t)>& fn,
    uint64_t* valid_bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (valid_bytes != nullptr) *valid_bytes = 0;
    return Status::Ok();  // no log yet: nothing to replay
  }
  const Status status = ScanValidPrefix(file, &fn, valid_bytes);
  std::fclose(file);
  return status;
}

}  // namespace miniraid

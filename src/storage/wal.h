#ifndef MINIRAID_STORAGE_WAL_H_
#define MINIRAID_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace miniraid {

/// Append-only write-ahead log of length-prefixed, CRC-checked records.
/// The paper's testbed kept all state in memory (assumption 3); this is
/// the substrate a production deployment of the protocol would put under
/// it, and what makes the retain-state crash model
/// (SiteOptions::lose_state_on_crash == false) realistic on real machines.
///
/// On-disk record layout: u32 payload length (LE), u32 CRC-32 of the
/// payload, payload bytes. Recovery replays the longest valid prefix: a
/// torn or corrupt tail (the signature of a crash mid-append) is detected
/// by length/CRC and truncated away on open.
class WriteAheadLog {
 public:
  struct Options {
    /// fsync after every append (durable but slow) or leave flushing to
    /// the OS (fast; loses the tail on power failure, never corrupts).
    bool sync_each_append = false;
  };

  /// Opens (creating if absent) the log at `path`, truncating any invalid
  /// tail left by a previous crash.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     const Options& options);
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path) {
    return Open(path, Options{});
  }

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record (atomic with respect to crash: either the whole
  /// record is in the valid prefix after recovery, or none of it).
  Status Append(const uint8_t* payload, size_t size);
  Status Append(const std::vector<uint8_t>& payload) {
    return Append(payload.data(), payload.size());
  }

  /// Flushes to stable storage.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Bytes of valid records currently in the log.
  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

  /// Replays every valid record at `path` through `fn`, stopping at the
  /// first invalid/torn record. Returns the byte length of the valid
  /// prefix via `valid_bytes` (null ok). A missing file replays nothing.
  static Status Replay(
      const std::string& path,
      const std::function<Status(const uint8_t* payload, size_t size)>& fn,
      uint64_t* valid_bytes = nullptr);

 private:
  WriteAheadLog(std::string path, std::FILE* file, uint64_t size_bytes,
                const Options& options)
      : path_(std::move(path)),
        file_(file),
        size_bytes_(size_bytes),
        options_(options) {}

  std::string path_;
  std::FILE* file_;
  uint64_t size_bytes_;
  Options options_;
};

}  // namespace miniraid

#endif  // MINIRAID_STORAGE_WAL_H_

#include "storage/durable_database.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"
#include "msg/codec.h"

namespace miniraid {
namespace {

constexpr uint32_t kSnapshotMagic = 0x52414944;  // "RAID"
constexpr uint8_t kOpCommit = 1;
constexpr uint8_t kOpInstall = 2;
constexpr uint8_t kOpDrop = 3;

std::string SnapshotPath(const std::string& dir) { return dir + "/snapshot"; }
std::string WalPath(const std::string& dir) { return dir + "/wal"; }

/// Serializes the whole database image (held items only).
std::vector<uint8_t> EncodeSnapshot(const Database& db) {
  Encoder enc;
  enc.PutU32(kSnapshotMagic);
  enc.PutU32(db.n_items());
  uint32_t held = 0;
  for (ItemId item = 0; item < db.n_items(); ++item) {
    held += db.Holds(item) ? 1 : 0;
  }
  enc.PutU32(held);
  for (ItemId item = 0; item < db.n_items(); ++item) {
    if (!db.Holds(item)) continue;
    const ItemState state = *db.Read(item);
    enc.PutU32(item);
    enc.PutI64(state.value);
    enc.PutU64(state.version);
  }
  const uint32_t crc = Crc32(enc.buffer().data(), enc.size());
  enc.PutU32(crc);
  return enc.TakeBuffer();
}

/// Parses a snapshot into a Database. A missing file yields an empty
/// (no-copies) database of `n_items`; corruption is an error.
Result<Database> DecodeSnapshot(const std::string& path, uint32_t n_items) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Database(n_items, {});  // fresh store: holds nothing yet
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  if (bytes.size() < 4) return Status::Corruption("snapshot truncated");
  const size_t body = bytes.size() - 4;
  Decoder crc_dec(bytes.data() + body, 4);
  uint32_t stored_crc = 0;
  MINIRAID_RETURN_IF_ERROR(crc_dec.GetU32(&stored_crc));
  if (Crc32(bytes.data(), body) != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  Decoder dec(bytes.data(), body);
  uint32_t magic = 0, stored_items = 0, held = 0;
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&stored_items));
  if (stored_items != n_items) {
    return Status::InvalidArgument(
        StrFormat("snapshot has %u items, store opened with %u",
                  stored_items, n_items));
  }
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&held));
  Database db(n_items, {});
  for (uint32_t i = 0; i < held; ++i) {
    uint32_t item = 0;
    int64_t value = 0;
    uint64_t version = 0;
    MINIRAID_RETURN_IF_ERROR(dec.GetU32(&item));
    MINIRAID_RETURN_IF_ERROR(dec.GetI64(&value));
    MINIRAID_RETURN_IF_ERROR(dec.GetU64(&version));
    MINIRAID_RETURN_IF_ERROR(db.InstallCopy(item, ItemState{value, version}));
  }
  if (!dec.AtEnd()) return Status::Corruption("snapshot trailing bytes");
  return db;
}

/// Writes `bytes` to `path` atomically (temp file + rename + fsync).
Status AtomicWrite(const std::string& path, const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(
        StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (!wrote || !flushed) {
    return Status::IoError(StrFormat("write %s failed", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(
        StrFormat("rename %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const Options& options, uint32_t n_items) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurableDatabase needs a directory");
  }
  MINIRAID_ASSIGN_OR_RETURN(
      Database db, DecodeSnapshot(SnapshotPath(options.dir), n_items));

  // Replay mutations since the snapshot.
  uint64_t replayed = 0;
  const Status replay_status = WriteAheadLog::Replay(
      WalPath(options.dir),
      [&db, &replayed](const uint8_t* payload, size_t size) -> Status {
        Decoder dec(payload, size);
        uint8_t op = 0;
        uint32_t item = 0;
        int64_t value = 0;
        uint64_t version = 0;
        MINIRAID_RETURN_IF_ERROR(dec.GetU8(&op));
        MINIRAID_RETURN_IF_ERROR(dec.GetU32(&item));
        MINIRAID_RETURN_IF_ERROR(dec.GetI64(&value));
        MINIRAID_RETURN_IF_ERROR(dec.GetU64(&version));
        ++replayed;
        switch (op) {
          case kOpCommit:
          case kOpInstall:
            // Replay is idempotent and ordered; install semantics cover
            // both (create-or-refresh with the logged version).
            return db.InstallCopy(item, ItemState{value, version});
          case kOpDrop:
            return db.DropCopy(item);
          default:
            return Status::Corruption("unknown wal op");
        }
      });
  MINIRAID_RETURN_IF_ERROR(replay_status);

  WriteAheadLog::Options wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  MINIRAID_ASSIGN_OR_RETURN(
      std::unique_ptr<WriteAheadLog> wal,
      WriteAheadLog::Open(WalPath(options.dir), wal_options));
  return std::unique_ptr<DurableDatabase>(new DurableDatabase(
      std::move(db), std::move(wal), options, replayed));
}

Status DurableDatabase::AppendRecord(uint8_t op, ItemId item, Value value,
                                     Version version) {
  Encoder enc;
  enc.PutU8(op);
  enc.PutU32(item);
  enc.PutI64(value);
  enc.PutU64(version);
  MINIRAID_RETURN_IF_ERROR(wal_->Append(enc.buffer()));
  return MaybeAutoCheckpoint();
}

Status DurableDatabase::MaybeAutoCheckpoint() {
  if (options_.auto_checkpoint_bytes == 0) return Status::Ok();
  if (wal_->size_bytes() < options_.auto_checkpoint_bytes) return Status::Ok();
  return Checkpoint();
}

Status DurableDatabase::CommitWrite(ItemId item, Value value, TxnId writer) {
  // Validate BEFORE logging: a mutation the in-memory image would reject
  // (version regression, bad item) must never reach the log, or replay
  // would fail where the live store succeeded.
  if (item >= db_.n_items()) {
    return Status::InvalidArgument(StrFormat("item %u out of range", item));
  }
  if (db_.Holds(item) && writer < db_.Read(item)->version) {
    return Status::InvalidArgument(
        StrFormat("write by txn %llu would regress item %u",
                  (unsigned long long)writer, item));
  }
  // Log first (write-ahead), then apply; a crash between the two replays
  // the logged mutation on reopen.
  MINIRAID_RETURN_IF_ERROR(AppendRecord(kOpCommit, item, value, writer));
  if (!db_.Holds(item)) {
    // A store that never held the item adopts it on first write (the
    // caller decides placement; the log keeps it durable either way).
    return db_.InstallCopy(item, ItemState{value, writer});
  }
  return db_.CommitWrite(item, value, writer);
}

Status DurableDatabase::InstallCopy(ItemId item, const ItemState& copy) {
  if (item >= db_.n_items()) {
    return Status::InvalidArgument(StrFormat("item %u out of range", item));
  }
  if (db_.Holds(item) && copy.version < db_.Read(item)->version) {
    return Status::InvalidArgument(
        StrFormat("incoming copy of item %u is older than local", item));
  }
  MINIRAID_RETURN_IF_ERROR(
      AppendRecord(kOpInstall, item, copy.value, copy.version));
  return db_.InstallCopy(item, copy);
}

Status DurableDatabase::DropCopy(ItemId item) {
  if (!db_.Holds(item)) {
    return Status::NotFound(StrFormat("no local copy of item %u", item));
  }
  MINIRAID_RETURN_IF_ERROR(AppendRecord(kOpDrop, item, 0, 0));
  return db_.DropCopy(item);
}

Status DurableDatabase::Checkpoint() {
  MINIRAID_RETURN_IF_ERROR(
      AtomicWrite(SnapshotPath(options_.dir), EncodeSnapshot(db_)));
  MINIRAID_RETURN_IF_ERROR(wal_->Reset());
  replayed_records_ = 0;
  return Status::Ok();
}

}  // namespace miniraid

#ifndef MINIRAID_STORAGE_DURABLE_DATABASE_H_
#define MINIRAID_STORAGE_DURABLE_DATABASE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "db/database.h"
#include "storage/wal.h"

namespace miniraid {

/// A crash-recoverable replica store: the in-memory Database fronted by a
/// checksummed snapshot file plus a write-ahead log of mutations since the
/// snapshot. Open() reconstructs the exact pre-crash state (modulo an
/// un-synced tail, see WriteAheadLog), which realizes the paper's
/// retain-state crash model on real hardware — a restarted site recovers
/// its copies and rejoins via control transaction type 1, with fail-locks
/// pinpointing only the updates it missed while down.
///
/// Layout in `dir`: "snapshot" (atomic, written via temp+rename) and
/// "wal". Checkpoint() folds the log into a fresh snapshot.
class DurableDatabase {
 public:
  struct Options {
    std::string dir;
    bool sync_each_append = false;
    /// Checkpoint automatically once the log exceeds this size (0 = only
    /// explicit Checkpoint() calls).
    uint64_t auto_checkpoint_bytes = 0;
  };

  /// Opens or creates the store for `n_items` items (fully replicated
  /// layout; partial placement stores only held items in the snapshot).
  static Result<std::unique_ptr<DurableDatabase>> Open(const Options& options,
                                                       uint32_t n_items);

  // -- Database surface (durably logged) ---------------------------------

  bool Holds(ItemId item) const { return db_.Holds(item); }
  uint32_t n_items() const { return db_.n_items(); }
  Result<ItemState> Read(ItemId item) const { return db_.Read(item); }

  Status CommitWrite(ItemId item, Value value, TxnId writer);
  Status InstallCopy(ItemId item, const ItemState& copy);
  Status DropCopy(ItemId item);

  /// The in-memory image (for oracles and bulk inspection).
  const Database& cache() const { return db_; }

  // -- durability controls -------------------------------------------------

  /// Writes a fresh snapshot atomically and truncates the log.
  Status Checkpoint();

  /// Forces the log to stable storage.
  Status Sync() { return wal_->Sync(); }

  uint64_t wal_bytes() const { return wal_->size_bytes(); }
  /// Number of log records replayed by Open() (0 after a checkpoint).
  uint64_t replayed_records() const { return replayed_records_; }

 private:
  DurableDatabase(Database db, std::unique_ptr<WriteAheadLog> wal,
                  Options options, uint64_t replayed)
      : db_(std::move(db)),
        wal_(std::move(wal)),
        options_(std::move(options)),
        replayed_records_(replayed) {}

  Status AppendRecord(uint8_t op, ItemId item, Value value, Version version);
  Status MaybeAutoCheckpoint();

  Database db_;
  std::unique_ptr<WriteAheadLog> wal_;
  Options options_;
  uint64_t replayed_records_;
};

}  // namespace miniraid

#endif  // MINIRAID_STORAGE_DURABLE_DATABASE_H_

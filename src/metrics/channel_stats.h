#ifndef MINIRAID_METRICS_CHANNEL_STATS_H_
#define MINIRAID_METRICS_CHANNEL_STATS_H_

#include <cstdint>

namespace miniraid {

/// Counters kept by one ReliableChannel endpoint (see
/// net/reliable_channel.h). Everything is cumulative from channel
/// construction; clusters aggregate them across endpoints into
/// ClusterStats.
struct ChannelCounters {
  // -- sender side ---------------------------------------------------------
  /// Data messages given a sequence number and sent at least once.
  uint64_t data_sent = 0;
  /// Retransmissions after an RTO expiry (per message copy, not per timer).
  uint64_t retransmits = 0;
  /// Messages abandoned after max_retransmits unacknowledged attempts; the
  /// protocol layer's own timeouts own the failure from here.
  uint64_t abandoned = 0;
  /// Sequence numbers acknowledged by the peer (cumulative-ack advances).
  uint64_t acked = 0;

  // -- receiver side -------------------------------------------------------
  /// In-order messages delivered up the stack (exactly once each).
  uint64_t delivered = 0;
  /// Duplicates suppressed (seq below the delivery frontier, or already
  /// buffered); each still triggers a re-ack.
  uint64_t dup_suppressed = 0;
  /// Messages that arrived ahead of the frontier and were buffered until
  /// the gap filled (per-pair FIFO is preserved for the upper layer).
  uint64_t out_of_order_buffered = 0;
  /// Standalone ChannelAck messages emitted (piggybacked acks not counted).
  uint64_t acks_sent = 0;

  ChannelCounters& operator+=(const ChannelCounters& o) {
    data_sent += o.data_sent;
    retransmits += o.retransmits;
    abandoned += o.abandoned;
    acked += o.acked;
    delivered += o.delivered;
    dup_suppressed += o.dup_suppressed;
    out_of_order_buffered += o.out_of_order_buffered;
    acks_sent += o.acks_sent;
    return *this;
  }
};

}  // namespace miniraid

#endif  // MINIRAID_METRICS_CHANNEL_STATS_H_

#include "metrics/series.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace miniraid {

void WriteCsv(std::ostream& out, const std::string& x_label,
              const std::vector<Series>& series) {
  out << x_label;
  for (const Series& s : series) out << "," << s.label;
  out << "\n";

  // Collect the union of x values, then one row per x.
  std::map<double, std::vector<std::string>> rows;
  for (size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    for (size_t i = 0; i < s.size(); ++i) {
      auto [it, inserted] =
          rows.try_emplace(s.xs[i], std::vector<std::string>(series.size()));
      it->second[si] = StrFormat("%g", s.ys[i]);
    }
  }
  for (const auto& [x, cells] : rows) {
    out << StrFormat("%g", x);
    for (const std::string& cell : cells) out << "," << cell;
    out << "\n";
  }
}

std::string RenderAsciiChart(const std::vector<Series>& series, int width,
                             int height, const std::string& x_label,
                             const std::string& y_label) {
  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
  if (width < 10) width = 10;
  if (height < 4) height = 4;

  double min_x = 0, max_x = 1, min_y = 0, max_y = 1;
  bool any = false;
  for (const Series& s : series) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (!any) {
        min_x = max_x = s.xs[i];
        min_y = max_y = s.ys[i];
        any = true;
      } else {
        min_x = std::min(min_x, s.xs[i]);
        max_x = std::max(max_x, s.xs[i]);
        min_y = std::min(min_y, s.ys[i]);
        max_y = std::max(max_y, s.ys[i]);
      }
    }
  }
  if (!any) return "(empty chart)\n";
  // Anchor the y axis at zero like the paper's figures, and avoid a
  // degenerate scale when all values coincide.
  min_y = std::min(min_y, 0.0);
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series[si];
    for (size_t i = 0; i < s.size(); ++i) {
      const int col = static_cast<int>(
          std::lround((s.xs[i] - min_x) / (max_x - min_x) * (width - 1)));
      const int row = static_cast<int>(
          std::lround((s.ys[i] - min_y) / (max_y - min_y) * (height - 1)));
      grid[height - 1 - row][col] = glyph;
    }
  }

  std::string out;
  out += StrFormat("%s\n", y_label.c_str());
  const std::string top_label = StrFormat("%6.0f |", max_y);
  const std::string bottom_label = StrFormat("%6.0f |", min_y);
  const std::string pad(8, ' ');
  for (int r = 0; r < height; ++r) {
    if (r == 0) {
      out += top_label;
    } else if (r == height - 1) {
      out += bottom_label;
    } else {
      out += "       |";
    }
    out += grid[r];
    out += "\n";
  }
  out += pad + std::string(width, '-') + "\n";
  out += pad + StrFormat("%-10.0f", min_x) +
         std::string(std::max(0, width - 20), ' ') +
         StrFormat("%10.0f", max_x) + "\n";
  out += pad + x_label + "\n";
  for (size_t si = 0; si < series.size(); ++si) {
    out += StrFormat("        %c = %s\n", kGlyphs[si % sizeof(kGlyphs)],
                     series[si].label.c_str());
  }
  return out;
}

}  // namespace miniraid

#ifndef MINIRAID_METRICS_SERIES_H_
#define MINIRAID_METRICS_SERIES_H_

#include <ostream>
#include <string>
#include <vector>

namespace miniraid {

/// One plotted curve: (x, y) points with a legend label. The experiment
/// drivers record one series per site (e.g. "fail-locks set for site 0"
/// against the transaction number, the axes of the paper's Figures 1-3).
struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;

  void Add(double x, double y) {
    xs.push_back(x);
    ys.push_back(y);
  }
  size_t size() const { return xs.size(); }
};

/// Writes series as CSV: header "x,label1,label2,...", one row per distinct
/// x (missing values empty). Suitable for external plotting.
void WriteCsv(std::ostream& out, const std::string& x_label,
              const std::vector<Series>& series);

/// Renders series as a monochrome ASCII chart of the given size; each
/// series uses its own glyph, with a legend underneath. This is how the
/// benches reproduce the paper's figures in a terminal.
std::string RenderAsciiChart(const std::vector<Series>& series, int width,
                             int height, const std::string& x_label,
                             const std::string& y_label);

}  // namespace miniraid

#endif  // MINIRAID_METRICS_SERIES_H_

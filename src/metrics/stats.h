#ifndef MINIRAID_METRICS_STATS_H_
#define MINIRAID_METRICS_STATS_H_

#include <string>
#include <vector>

#include "common/clock.h"

namespace miniraid {

/// Accumulates duration samples and reports summary statistics. The paper
/// reports averages of "the recorded times ... after a stable state of
/// transaction processing was achieved"; Mean() is the headline number and
/// percentiles support deeper analysis.
class DurationStats {
 public:
  void Add(Duration sample);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  Duration Min() const;
  Duration Max() const;
  Duration Mean() const;
  /// `q` in [0, 1]; nearest-rank on the sorted samples.
  Duration Percentile(double q) const;

  double MeanMillis() const { return ToMillis(Mean()); }

  /// "n=12 mean=176.2ms min=... p95=... max=..."
  std::string Summary() const;

  /// Raw samples in insertion order (used to merge per-site stats).
  const std::vector<Duration>& samples() const { return samples_; }

  /// Appends all of `other`'s samples.
  void MergeFrom(const DurationStats& other);

 private:
  void EnsureSorted() const;

  std::vector<Duration> samples_;
  mutable std::vector<Duration> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace miniraid

#endif  // MINIRAID_METRICS_STATS_H_

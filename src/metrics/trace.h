#ifndef MINIRAID_METRICS_TRACE_H_
#define MINIRAID_METRICS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/types.h"

namespace miniraid {

/// Protocol events a site can record. One enumerator per externally
/// meaningful protocol step; the two argument slots are event-specific
/// (documented per enumerator).
enum class TraceEvent : uint8_t {
  kTxnReceived = 0,        // a=txn id, b=op count
  kTxnCommitted = 1,       // a=txn id, b=write count
  kTxnAborted = 2,         // a=txn id, b=outcome (TxnOutcome)
  kCopierStarted = 3,      // a=txn id, b=item count needing copies
  kCopyServed = 4,         // a=requesting site, b=copies returned
  kClearLocksSent = 5,     // a=txn id, b=item count
  kPrepareHandled = 6,     // a=txn id, b=staged item count
  kParticipantCommitted = 7,  // a=txn id, b=installed item count
  kCrashed = 8,            // a=1 if state lost
  kRecoveryStarted = 9,    // a=new session number
  kRecoveryServed = 10,    // a=recovering site, b=fail-lock rows sent
  kRecoveryCompleted = 11, // a=session, b=own fail-lock count afterwards
  kFailureDetected = 12,   // a=failed site (control type 2 initiated)
  kFailureLearned = 13,    // a=failed site (control type 2 received)
  kType3Backup = 14,       // a=backup site, b=copies shipped
  kBatchCopierStarted = 15,  // a=items in the batch
};

std::string_view TraceEventName(TraceEvent event);

/// One recorded event.
struct TraceRecord {
  TimePoint when = 0;
  SiteId site = kInvalidSite;
  TraceEvent event = TraceEvent::kTxnReceived;
  uint64_t a = 0;
  uint64_t b = 0;

  std::string ToString() const;
};

/// Bounded in-memory protocol trace, shared by all sites of a cluster.
/// Thread-safe (a single mutex guards the buffer), so it works on the real
/// thread/socket runtimes as well as under the simulator. Oldest records
/// are dropped once `capacity` is reached.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 65536) : capacity_(capacity) {}

  void Record(TimePoint when, SiteId site, TraceEvent event, uint64_t a = 0,
              uint64_t b = 0);

  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Copy of the full buffer, in order.
  std::vector<TraceRecord> Snapshot() const;

  /// Records matching `event` (all sites), in order.
  std::vector<TraceRecord> Filter(TraceEvent event) const;
  /// Records for `site`, in order.
  std::vector<TraceRecord> ForSite(SiteId site) const;

  /// Count of records matching `event`.
  size_t Count(TraceEvent event) const;

  /// Multi-line human-readable dump ("[12.345ms] site 1 Prepare txn=7 ...").
  std::string Dump() const;

 private:
  mutable Mutex mu_;
  size_t capacity_;
  std::deque<TraceRecord> records_ MR_GUARDED_BY(mu_);
  uint64_t dropped_ MR_GUARDED_BY(mu_) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_METRICS_TRACE_H_

#include "metrics/stats.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

void DurationStats::Add(Duration sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void DurationStats::MergeFrom(const DurationStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

void DurationStats::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void DurationStats::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

Duration DurationStats::Min() const {
  MR_CHECK(!samples_.empty()) << "Min of empty stats";
  EnsureSorted();
  return sorted_.front();
}

Duration DurationStats::Max() const {
  MR_CHECK(!samples_.empty()) << "Max of empty stats";
  EnsureSorted();
  return sorted_.back();
}

Duration DurationStats::Mean() const {
  MR_CHECK(!samples_.empty()) << "Mean of empty stats";
  const __int128 total = std::accumulate(
      samples_.begin(), samples_.end(), __int128{0},
      [](__int128 acc, Duration d) { return acc + d; });
  return static_cast<Duration>(total / static_cast<__int128>(samples_.size()));
}

Duration DurationStats::Percentile(double q) const {
  MR_CHECK(!samples_.empty()) << "Percentile of empty stats";
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(q * double(sorted_.size() - 1) + 0.5);
  return sorted_[rank];
}

std::string DurationStats::Summary() const {
  if (samples_.empty()) return "n=0";
  return StrFormat("n=%zu mean=%.2fms min=%.2fms p50=%.2fms p95=%.2fms max=%.2fms",
                   count(), ToMillis(Mean()), ToMillis(Min()),
                   ToMillis(Percentile(0.5)), ToMillis(Percentile(0.95)),
                   ToMillis(Max()));
}

}  // namespace miniraid

#include "metrics/trace.h"

#include "common/strings.h"

namespace miniraid {

std::string_view TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kTxnReceived:
      return "TxnReceived";
    case TraceEvent::kTxnCommitted:
      return "TxnCommitted";
    case TraceEvent::kTxnAborted:
      return "TxnAborted";
    case TraceEvent::kCopierStarted:
      return "CopierStarted";
    case TraceEvent::kCopyServed:
      return "CopyServed";
    case TraceEvent::kClearLocksSent:
      return "ClearLocksSent";
    case TraceEvent::kPrepareHandled:
      return "PrepareHandled";
    case TraceEvent::kParticipantCommitted:
      return "ParticipantCommitted";
    case TraceEvent::kCrashed:
      return "Crashed";
    case TraceEvent::kRecoveryStarted:
      return "RecoveryStarted";
    case TraceEvent::kRecoveryServed:
      return "RecoveryServed";
    case TraceEvent::kRecoveryCompleted:
      return "RecoveryCompleted";
    case TraceEvent::kFailureDetected:
      return "FailureDetected";
    case TraceEvent::kFailureLearned:
      return "FailureLearned";
    case TraceEvent::kType3Backup:
      return "Type3Backup";
    case TraceEvent::kBatchCopierStarted:
      return "BatchCopierStarted";
  }
  return "Unknown";
}

std::string TraceRecord::ToString() const {
  return StrFormat("[%10.3fms] site %u %-20s a=%llu b=%llu", ToMillis(when),
                   site, std::string(TraceEventName(event)).c_str(),
                   (unsigned long long)a, (unsigned long long)b);
}

void TraceLog::Record(TimePoint when, SiteId site, TraceEvent event,
                      uint64_t a, uint64_t b) {
  MutexLock lock(mu_);
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(TraceRecord{when, site, event, a, b});
}

size_t TraceLog::size() const {
  MutexLock lock(mu_);
  return records_.size();
}

uint64_t TraceLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceLog::Clear() {
  MutexLock lock(mu_);
  records_.clear();
  dropped_ = 0;
}

std::vector<TraceRecord> TraceLog::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<TraceRecord>(records_.begin(), records_.end());
}

std::vector<TraceRecord> TraceLog::Filter(TraceEvent event) const {
  MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  for (const TraceRecord& record : records_) {
    if (record.event == event) out.push_back(record);
  }
  return out;
}

std::vector<TraceRecord> TraceLog::ForSite(SiteId site) const {
  MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  for (const TraceRecord& record : records_) {
    if (record.site == site) out.push_back(record);
  }
  return out;
}

size_t TraceLog::Count(TraceEvent event) const {
  MutexLock lock(mu_);
  size_t count = 0;
  for (const TraceRecord& record : records_) {
    count += record.event == event ? 1 : 0;
  }
  return count;
}

std::string TraceLog::Dump() const {
  MutexLock lock(mu_);
  std::string out;
  for (const TraceRecord& record : records_) {
    out += record.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace miniraid

#include "common/crc32.h"

#include <array>

namespace miniraid {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;  // reflected IEEE polynomial

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Extend(uint32_t seed, const uint8_t* data, size_t size) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xff];
  }
  return ~crc;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Extend(0, data, size);
}

}  // namespace miniraid

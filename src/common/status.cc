#include "common/status.h"

namespace miniraid {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace miniraid

#ifndef MINIRAID_COMMON_RUNTIME_H_
#define MINIRAID_COMMON_RUNTIME_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace miniraid {

using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Per-site execution services the protocol engine runs against. The same
/// engine code runs deterministically under the discrete-event simulator
/// (virtual time, modelled CPU costs) and on real threads/sockets (steady
/// clock, no-op CPU accounting).
///
/// Threading contract: all calls into a SiteRuntime for a given site are
/// made from that site's execution context (the simulator's single thread,
/// or the site's event-loop thread), and timer callbacks fire in that same
/// context — so the protocol engine needs no internal locking.
///
/// The methods are MR_RUNS_ON(any): confinement here is per *instance*
/// (the owning endpoint's context), which the MR_RUNS_ON vocabulary is
/// deliberately too coarse to express — `any` records the obligation that
/// the implementations themselves stay confinement- and blocking-clean.
class SiteRuntime {
 public:
  virtual ~SiteRuntime() = default;

  /// Current time (virtual or steady), in nanoseconds since runtime start.
  MR_RUNS_ON(any) virtual TimePoint Now() const = 0;

  /// Runs `fn` after `delay` in this site's execution context. Returns a
  /// handle that can cancel the timer before it fires.
  MR_RUNS_ON(any)
  virtual TimerId ScheduleAfter(Duration delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; a no-op if it already fired or was cancelled.
  MR_RUNS_ON(any) virtual void CancelTimer(TimerId id) = 0;

  /// Accounts `amount` of CPU work to this site. Under the simulator this
  /// advances the site's virtual clock (and delays everything the site does
  /// afterwards); real runtimes may ignore it.
  MR_RUNS_ON(any) virtual void ChargeCpu(Duration amount) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_COMMON_RUNTIME_H_

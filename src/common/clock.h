#ifndef MINIRAID_COMMON_CLOCK_H_
#define MINIRAID_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace miniraid {

/// Time within the system, in nanoseconds. Under the simulator this is
/// virtual time; under the thread/socket runtimes it is steady_clock time.
using Duration = int64_t;  // nanoseconds
using TimePoint = int64_t;  // nanoseconds since runtime start

constexpr Duration Nanoseconds(int64_t n) { return n; }
constexpr Duration Microseconds(int64_t n) { return n * 1000; }
constexpr Duration Milliseconds(int64_t n) { return n * 1000 * 1000; }
constexpr Duration Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double ToMillis(Duration d) { return double(d) / 1e6; }

/// Source of "now". The protocol engine only ever reads time through this
/// interface so the identical code runs in virtual and real time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

/// Real-time clock backed by std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

  TimePoint Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace miniraid

#endif  // MINIRAID_COMMON_CLOCK_H_

#ifndef MINIRAID_COMMON_STATUS_H_
#define MINIRAID_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace miniraid {

/// Error categories used across the library. Modelled after the
/// RocksDB/absl status idiom: no exceptions cross a library boundary; any
/// fallible call returns a Status (or Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kUnavailable = 5,   // e.g. no operational site holds an up-to-date copy
  kTimedOut = 6,      // e.g. a 2PC ack deadline expired
  kAborted = 7,       // transaction aborted by the protocol
  kIoError = 8,       // socket / OS-level failure
  kCorruption = 9,    // malformed wire data
  kInternal = 10,     // invariant violation (a bug)
};

/// Returns a stable human-readable name for `code` ("Ok", "TimedOut", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-type result of a fallible operation: a code plus an optional
/// message. Cheap to copy when OK (no allocation on the OK path).
/// [[nodiscard]]: silently dropping a Status hides protocol errors, so a
/// discarded return is a compile error; truly intentional drops must say so
/// with a cast (e.g. `(void)transport_->Send(...)`).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are advisory
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if not OK.
#define MINIRAID_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::miniraid::Status _mr_status = (expr);            \
    if (!_mr_status.ok()) return _mr_status;           \
  } while (0)

}  // namespace miniraid

#endif  // MINIRAID_COMMON_STATUS_H_

#ifndef MINIRAID_COMMON_CRC32_H_
#define MINIRAID_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace miniraid {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant). Used to detect
/// torn or corrupt records in the write-ahead log and snapshot files.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Incremental form: extends `seed` (a previous Crc32 result) with more
/// bytes. Crc32(all) == Crc32Extend(Crc32(first), rest).
uint32_t Crc32Extend(uint32_t seed, const uint8_t* data, size_t size);

}  // namespace miniraid

#endif  // MINIRAID_COMMON_CRC32_H_

#ifndef MINIRAID_COMMON_THREAD_ANNOTATIONS_H_
#define MINIRAID_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (no-ops on other
/// compilers). They let the compiler prove lock discipline statically:
/// every access to a MR_GUARDED_BY field is rejected at compile time
/// unless the named capability (mutex) is held, and lock ordering declared
/// with MR_ACQUIRED_BEFORE forbids whole deadlock classes that TSan can
/// only observe at runtime.
///
/// Build with the `clang-tsa` CMake preset (clang++, -Wthread-safety
/// -Werror=thread-safety) to enforce; GCC builds compile the annotations
/// away. Use the annotated wrappers in common/mutex.h rather than
/// std::mutex — scripts/miniraid_lint.py rejects raw standard-library
/// synchronization types outside src/common/.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MR_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef MR_THREAD_ANNOTATION_
#define MR_THREAD_ANNOTATION_(x)  // not clang: annotations compile away
#endif

/// Marks a class as a capability (something that can be held). The string
/// names the capability kind in diagnostics ("mutex", "role", ...).
#define MR_CAPABILITY(x) MR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard shape).
#define MR_SCOPED_CAPABILITY MR_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define MR_GUARDED_BY(x) MR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define MR_PT_GUARDED_BY(x) MR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares lock order: this capability must be acquired before / after
/// the listed ones. Violations are whole deadlock classes; clang checks
/// them under -Wthread-safety-beta, and miniraid-analyze's lock-order pass
/// checks the declared graph for cycles and diffs it against the acquisition
/// order actually observed in function bodies (docs/ANALYSIS.md §8).
///
/// On clang the edge is additionally emitted as an annotate attribute
/// ("mr_acquired_before:<targets>") so the AST frontend sees the same
/// vocabulary the built-in indexer reads from the macro tokens.
#if defined(__clang__)
#define MR_LOCK_EDGE_ANNOTATE_(dir, ...) \
  __attribute__((annotate(dir #__VA_ARGS__)))
#else
#define MR_LOCK_EDGE_ANNOTATE_(dir, ...)
#endif
#define MR_ACQUIRED_BEFORE(...)                           \
  MR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))     \
  MR_LOCK_EDGE_ANNOTATE_("mr_acquired_before:", __VA_ARGS__)
#define MR_ACQUIRED_AFTER(...)                            \
  MR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))      \
  MR_LOCK_EDGE_ANNOTATE_("mr_acquired_after:", __VA_ARGS__)

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define MR_REQUIRES(...) \
  MR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MR_REQUIRES_SHARED(...) \
  MR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities (or `this` for a
/// capability class's own methods when the list is empty).
#define MR_ACQUIRE(...) MR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MR_RELEASE(...) MR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability and returns `ret` on success.
#define MR_TRY_ACQUIRE(ret, ...) \
  MR_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (anti-deadlock for
/// self-locking APIs).
#define MR_EXCLUDES(...) MR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held; informs the analysis.
#define MR_ASSERT_CAPABILITY(x) MR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability (accessor form).
#define MR_RETURN_CAPABILITY(x) MR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is excluded from analysis. Permitted only
/// inside src/common/ wrapper internals; everywhere else the tree builds
/// with zero suppressions.
#define MR_NO_THREAD_SAFETY_ANALYSIS \
  MR_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// ---------------------------------------------------------------------------
/// Execution-context confinement (checked by tools/miniraid-analyze).
///
/// MR_RUNS_ON(ctx) declares the execution context a function is confined
/// to. Place it at the start of the declaration:
///
///   MR_RUNS_ON(managing) void Submit(TxnId id);
///
/// Vocabulary:
///   managing - the managing site's execution context (ManagingSite,
///              SubmitWindow, and everything confined to coordinator state).
///   loop     - a site's event-loop context (Site and the protocol engine).
///   client   - caller/driver threads and dedicated IO threads; blocking is
///              permitted, touching loop-/managing-confined state is not
///              (marshal through EventLoop::Post / PostAndWait instead).
///   any      - callable from every context; must itself stay confinement-
///              and blocking-clean.
///
/// miniraid-analyze verifies by call-graph reachability that a function
/// annotated for one context never reaches a function confined to another,
/// that no blocking call is reachable from managing/loop/any entry points,
/// and that every public method of an annotated class carries a context.
/// On clang the annotation is also visible to the AST frontend as
/// __attribute__((annotate("mr_runs_on:<ctx>"))); on other compilers it
/// compiles away and the built-in indexer reads the macro token directly.
/// ---------------------------------------------------------------------------
#if defined(__clang__)
#define MR_RUNS_ON(ctx) __attribute__((annotate("mr_runs_on:" #ctx)))
#else
#define MR_RUNS_ON(ctx)
#endif

/// Field-level confinement waiver for the shared-state pass
/// (docs/ANALYSIS.md §9). Declares that a field, although reachable from
/// more than one execution context in the call graph, is only ever
/// *dynamically* touched from the named context — the cross-context paths
/// are phase-separated (e.g. configured before threads start, or only the
/// client context drives the simulation). Place it on the field:
///
///   std::vector<Event> trace_ MR_CONTEXT_CONFINED(client);
///
/// The waiver is an auditable claim, not an enforcement: each use must
/// carry a comment at the field explaining why the phases cannot overlap.
/// Prefer MR_GUARDED_BY when a mutex exists.
#if defined(__clang__)
#define MR_CONTEXT_CONFINED(ctx) \
  __attribute__((annotate("mr_context_confined:" #ctx)))
#else
#define MR_CONTEXT_CONFINED(ctx)
#endif

#endif  // MINIRAID_COMMON_THREAD_ANNOTATIONS_H_

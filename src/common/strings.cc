#include "common/strings.h"

#include <cstdio>

namespace miniraid {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the NUL one past `needed`; &out[0] has room because
    // C++11 strings are contiguous with a writable terminator slot.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace miniraid

#include "common/rng.h"

#include <cmath>

namespace miniraid {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits to a double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, Rng* rng)
    : n_(n), theta_(theta), rng_(rng) {
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) zetan += 1.0 / std::pow(double(i), theta_);
  zetan_ = zetan;
  double zeta2 = 0.0;
  for (uint64_t i = 1; i <= 2 && i <= n_; ++i) {
    zeta2 += 1.0 / std::pow(double(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_->NextBounded(n_);
  const double u = rng_->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t k = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

}  // namespace miniraid

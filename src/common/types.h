#ifndef MINIRAID_COMMON_TYPES_H_
#define MINIRAID_COMMON_TYPES_H_

#include <cstdint>

namespace miniraid {

/// Identifies a database site. The managing site is a site too (it owns no
/// replica but speaks the same message channel, as in the paper).
using SiteId = uint32_t;

/// Index of a logical data item in the frequently-referenced hot set.
using ItemId = uint32_t;

/// A session number identifies one operational epoch of a site; it is
/// incremented every time the site comes back up (paper §1.1).
using SessionNumber = uint64_t;

/// Monotone identifier the managing site assigns to database transactions.
using TxnId = uint64_t;

/// Stored value of a data item. The workloads write values derived from
/// (transaction id, item) so replica agreement is checkable bit-for-bit.
using Value = int64_t;

/// Per-item commit counter: the number of committed writes applied to an
/// up-to-date copy. Equal versions with clear fail-locks imply equal values.
using Version = uint64_t;

/// Perceived operational state of a site, as recorded in a nominal session
/// vector (paper §1.2: "site is up, site is down, site is waiting to
/// recover, and site is terminating").
enum class SiteStatus : uint8_t {
  kUp = 0,
  kDown = 1,
  kWaitingToRecover = 2,
  kTerminating = 3,
};

/// Sentinel meaning "no site".
inline constexpr SiteId kInvalidSite = ~SiteId{0};

/// Maximum number of database sites a fail-lock bitmap word supports.
inline constexpr uint32_t kMaxSites = 64;

}  // namespace miniraid

#endif  // MINIRAID_COMMON_TYPES_H_

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"

namespace miniraid {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

// Serializes line emission so concurrent sites do not interleave output.
Mutex& EmitMutex() {
  static Mutex* m = new Mutex;
  return *m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line,
          const std::string& message) {
  MutexLock lock(EmitMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

FatalLine::FatalLine(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLine::~FatalLine() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging

}  // namespace miniraid

#ifndef MINIRAID_COMMON_LOGGING_H_
#define MINIRAID_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace miniraid {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are dropped before formatting
/// (the macro short-circuits, so disabled logging costs one branch).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Emits one formatted line to stderr: "[LEVEL file:line] message".
void Emit(LogLevel level, const char* file, int line,
          const std::string& message);

/// Stream collector used by the MR_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define MR_LOG(level)                                               \
  if (::miniraid::LogLevel::level < ::miniraid::GetLogLevel()) {    \
  } else                                                            \
    ::miniraid::internal_logging::LogLine(::miniraid::LogLevel::level, \
                                          __FILE__, __LINE__)

#define MR_CHECK(cond)                                                   \
  if (cond) {                                                            \
  } else                                                                 \
    ::miniraid::internal_logging::FatalLine(__FILE__, __LINE__, #cond)

namespace internal_logging {

/// Collector for MR_CHECK failures; aborts the process in the destructor.
class FatalLine {
 public:
  FatalLine(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLine();

  FatalLine(const FatalLine&) = delete;
  FatalLine& operator=(const FatalLine&) = delete;

  template <typename T>
  FatalLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace miniraid

#endif  // MINIRAID_COMMON_LOGGING_H_

#ifndef MINIRAID_COMMON_MUTEX_H_
#define MINIRAID_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace miniraid {

/// The repo's annotated mutex: a std::mutex carrying the Clang Thread
/// Safety Analysis `capability` attribute, so fields declared
/// MR_GUARDED_BY(mu_) are compile-time rejected when accessed without it.
/// All concurrent code outside src/common/ must use this wrapper (and
/// MutexLock / CondVar below) instead of the raw standard-library types —
/// scripts/miniraid_lint.py enforces that textually, the `clang-tsa`
/// preset enforces the lock discipline itself.
class MR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MR_ACQUIRE() { mu_.lock(); }
  void Unlock() MR_RELEASE() { mu_.unlock(); }
  bool TryLock() MR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard shape, TSA `scoped_lockable`).
class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. The Wait family takes the held
/// Mutex explicitly (MR_REQUIRES), so the analysis knows the lock is held
/// across the wait. There is deliberately no predicate overload: write the
/// standard loop instead —
///
///   MutexLock lock(mu_);
///   while (!done_) cv_.Wait(mu_);
///
/// — the analysis then sees every read of the guarded predicate happen
/// under the lock (a predicate lambda would be opaque to it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  void Wait(Mutex& mu) MR_REQUIRES(mu) MR_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait, but gives up at `deadline`. Returns true on timeout.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      MR_REQUIRES(mu) MR_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::timeout;
  }

  /// Like Wait, but gives up after `timeout_ns` nanoseconds (the repo's
  /// Duration unit). Returns true on timeout.
  bool WaitFor(Mutex& mu, int64_t timeout_ns) MR_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(timeout_ns));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace miniraid

#endif  // MINIRAID_COMMON_MUTEX_H_

#ifndef MINIRAID_COMMON_RESULT_H_
#define MINIRAID_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace miniraid {

/// A Status with a value on success (a minimal absl::StatusOr). The value
/// is engaged iff status().ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status makes
  /// `return Status::NotFound(...);` work. A program that constructs a
  /// Result from an OK status without a value has a bug.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result from OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status
/// from the enclosing function.
#define MINIRAID_ASSIGN_OR_RETURN(lhs, expr)             \
  auto MINIRAID_CONCAT_(_mr_result_, __LINE__) = (expr); \
  if (!MINIRAID_CONCAT_(_mr_result_, __LINE__).ok())     \
    return MINIRAID_CONCAT_(_mr_result_, __LINE__).status(); \
  lhs = std::move(MINIRAID_CONCAT_(_mr_result_, __LINE__)).value()

#define MINIRAID_CONCAT_INNER_(a, b) a##b
#define MINIRAID_CONCAT_(a, b) MINIRAID_CONCAT_INNER_(a, b)

}  // namespace miniraid

#endif  // MINIRAID_COMMON_RESULT_H_

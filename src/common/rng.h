#ifndef MINIRAID_COMMON_RNG_H_
#define MINIRAID_COMMON_RNG_H_

#include <cstdint>

#include "common/thread_annotations.h"

namespace miniraid {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Used everywhere instead of std::mt19937 so that experiment
/// traces are reproducible bit-for-bit across platforms and standard-library
/// versions.
class Rng {
 public:
  /// Seeds the four-word state from `seed` with SplitMix64 so that nearby
  /// seeds give uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0. Uses rejection
  /// sampling (Lemire) so results are unbiased.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Derives an independent child generator; convenient for giving each
  /// site / workload its own stream from one experiment seed.
  Rng Fork();

 private:
  /// Value type: every consumer forks (or seeds) its own generator, so
  /// stream state is confined to whichever context owns the instance —
  /// sharing one Rng across contexts would also break replay determinism.
  uint64_t s_[4] MR_CONTEXT_CONFINED(any);
};

/// Zipf(θ) sampler over {0, ..., n-1} using the classic CDF-inversion
/// approximation with precomputed harmonic normalization. θ = 0 degenerates
/// to uniform. Used by the skewed workloads (paper §5 discusses relaxing the
/// equal-probability hot-set assumption).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, Rng* rng);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng* rng_;  // not owned
};

}  // namespace miniraid

#endif  // MINIRAID_COMMON_RNG_H_

#ifndef MINIRAID_COMMON_BITMAP_H_
#define MINIRAID_COMMON_BITMAP_H_

#include <bit>
#include <cstdint>

#include "common/thread_annotations.h"

namespace miniraid {

/// A fixed 64-bit set. The paper implements fail-locks as "a bit map for
/// each data item [whose] size was less than or equal to the number of
/// possible sites ... allow[ing] the fail-lock operations to be performed
/// very quickly"; one machine word covers up to 64 sites.
class Bitmap64 {
 public:
  constexpr Bitmap64() = default;
  constexpr explicit Bitmap64(uint64_t bits) : bits_(bits) {}

  constexpr void Set(uint32_t i) { bits_ |= (uint64_t{1} << i); }
  constexpr void Clear(uint32_t i) { bits_ &= ~(uint64_t{1} << i); }
  constexpr bool Test(uint32_t i) const {
    return (bits_ >> i) & uint64_t{1};
  }

  constexpr void SetAll(uint32_t n) {
    bits_ = (n >= 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  }
  constexpr void ClearAll() { bits_ = 0; }

  constexpr bool Any() const { return bits_ != 0; }
  constexpr bool None() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }

  constexpr uint64_t bits() const { return bits_; }

  constexpr Bitmap64 operator|(Bitmap64 other) const {
    return Bitmap64(bits_ | other.bits_);
  }
  constexpr Bitmap64 operator&(Bitmap64 other) const {
    return Bitmap64(bits_ & other.bits_);
  }
  constexpr Bitmap64& operator|=(Bitmap64 other) {
    bits_ |= other.bits_;
    return *this;
  }
  constexpr Bitmap64& operator&=(Bitmap64 other) {
    bits_ &= other.bits_;
    return *this;
  }
  friend constexpr bool operator==(Bitmap64 a, Bitmap64 b) {
    return a.bits_ == b.bits_;
  }

 private:
  /// Value type: each Bitmap64 lives and dies inside its owner (a
  /// FailLockTable row, a quorum tally) and inherits that owner's
  /// confinement; the class itself has no context of its own.
  uint64_t bits_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_COMMON_BITMAP_H_

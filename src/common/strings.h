#ifndef MINIRAID_COMMON_STRINGS_H_
#define MINIRAID_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace miniraid {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

}  // namespace miniraid

#endif  // MINIRAID_COMMON_STRINGS_H_

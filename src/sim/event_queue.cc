#include "sim/event_queue.h"

#include "common/logging.h"

namespace miniraid {

EventQueue::EventId EventQueue::Push(TimePoint when,
                                     std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  functions_.emplace(id, std::move(fn));
  return id;
}

void EventQueue::Cancel(EventId id) {
  auto it = functions_.find(id);
  if (it == functions_.end()) return;  // already ran or cancelled
  functions_.erase(it);
  cancelled_.insert(id);
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::Empty() const {
  DropCancelledHead();
  return heap_.empty();
}

TimePoint EventQueue::NextTime() const {
  DropCancelledHead();
  MR_CHECK(!heap_.empty()) << "NextTime on empty event queue";
  return heap_.top().when;
}

EventQueue::Event EventQueue::Pop() {
  DropCancelledHead();
  MR_CHECK(!heap_.empty()) << "Pop on empty event queue";
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = functions_.find(entry.id);
  MR_CHECK(it != functions_.end()) << "live heap entry without function";
  Event event{entry.when, entry.id, std::move(it->second)};
  functions_.erase(it);
  return event;
}

}  // namespace miniraid

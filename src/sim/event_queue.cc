#include "sim/event_queue.h"

#include "common/logging.h"

namespace miniraid {

EventQueue::EventId EventQueue::Push(TimePoint when, std::function<void()> fn,
                                     SiteId site) {
  const EventId id = next_id_++;
  const Key key{when, next_seq_++};
  entries_.emplace(key, Record{id, site, std::move(fn)});
  index_.emplace(id, key);
  return id;
}

void EventQueue::Cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;  // already ran or cancelled
  entries_.erase(it->second);
  index_.erase(it);
}

TimePoint EventQueue::NextTime() const {
  MR_CHECK(!entries_.empty()) << "NextTime on empty event queue";
  return entries_.begin()->first.first;
}

EventQueue::Event EventQueue::Take(std::map<Key, Record>::iterator it) {
  Event event{it->first.first, it->second.id, it->second.site,
              std::move(it->second.fn)};
  index_.erase(it->second.id);
  entries_.erase(it);
  return event;
}

EventQueue::Event EventQueue::Pop() {
  MR_CHECK(!entries_.empty()) << "Pop on empty event queue";
  return Take(entries_.begin());
}

std::vector<EventQueue::FrontEvent> EventQueue::FrontEvents() const {
  MR_CHECK(!entries_.empty()) << "FrontEvents on empty event queue";
  const TimePoint front_time = entries_.begin()->first.first;
  std::vector<FrontEvent> front;
  for (auto it = entries_.begin();
       it != entries_.end() && it->first.first == front_time; ++it) {
    front.push_back(FrontEvent{it->second.id, it->second.site});
  }
  return front;
}

EventQueue::Event EventQueue::PopById(EventId id) {
  auto it = index_.find(id);
  MR_CHECK(it != index_.end()) << "PopById on unknown event " << id;
  auto entry = entries_.find(it->second);
  MR_CHECK(entry != entries_.end()) << "event index out of sync";
  return Take(entry);
}

}  // namespace miniraid

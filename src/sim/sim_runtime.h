#ifndef MINIRAID_SIM_SIM_RUNTIME_H_
#define MINIRAID_SIM_SIM_RUNTIME_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/clock.h"
#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace miniraid {

struct SimOptions {
  /// The paper ran all sites as UNIX processes on one processor; with
  /// shared_cpu every site's modelled CPU work serializes on one resource.
  /// With false, each site has its own CPU (a modern cluster).
  bool shared_cpu = true;
};

/// Deterministic discrete-event runtime. Sites execute as event handlers in
/// virtual time; CPU work is modelled by ChargeCpu, which advances the
/// executing site's local time so later sends and the site's next message
/// are delayed accordingly (and, in shared-CPU mode, everyone else's too).
///
/// Single-threaded: all events run on the caller's thread inside Run*().
class SimRuntime {
 public:
  explicit SimRuntime(const SimOptions& options = SimOptions{});
  ~SimRuntime();

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  /// The per-site SiteRuntime facade (created on first use). Stable for the
  /// lifetime of the SimRuntime.
  SiteRuntime* RuntimeFor(SiteId site);

  /// Runs the next runnable event. Returns false when the queue is empty.
  bool RunOne();

  /// Every pending event tied for the earliest virtual time, with the site
  /// context each is bound to (kInvalidSite for global events). Empty when
  /// the queue is idle. Deliveries to distinct sites at the same instant
  /// commute, so the systematic checker (src/check) uses this set as the
  /// branching choices at each scheduling point.
  std::vector<EventQueue::FrontEvent> RunnableEvents() const;

  /// Runs the specific pending event `id` instead of the FIFO front.
  /// Precondition: `id` was returned by RunnableEvents() for the current
  /// front time (running a later-time event before an earlier one is a
  /// checked error).
  void RunEventById(EventQueue::EventId id);

  /// Runs events until the queue drains.
  void RunUntilIdle();

  /// Runs all events scheduled at or before `deadline`, then advances the
  /// clock to `deadline`.
  void RunUntil(TimePoint deadline);
  void RunFor(Duration duration) { RunUntil(now_ + duration); }

  /// Base virtual time (start of the currently/last executing event).
  TimePoint now() const { return now_; }

  /// Time as seen by the code currently executing (base time plus the CPU
  /// charged so far in this handler).
  TimePoint CurrentTime() const { return now_ + current_offset_; }

  /// Schedules `fn` in `site`'s execution context at absolute time `when`
  /// (not before the site's CPU frees up). FIFO per push order.
  EventQueue::EventId ScheduleSiteEvent(TimePoint when, SiteId site,
                                        std::function<void()> fn);

  /// Schedules `fn` with no site context (bookkeeping, drivers).
  EventQueue::EventId ScheduleGlobalEvent(TimePoint when,
                                          std::function<void()> fn);

  void CancelEvent(EventQueue::EventId id) { queue_.Cancel(id); }

  /// Adds CPU work to the site whose handler is currently executing; no-op
  /// when called outside any site context.
  void ChargeCurrentSite(Duration amount);

  uint64_t events_processed() const { return events_processed_; }

 private:
  class SimSiteRuntime;

  TimePoint BusyUntil(SiteId site) const;
  void SetBusyUntil(SiteId site, TimePoint when);
  void RunEvent(EventQueue::Event event);
  void ExecuteSiteEvent(SiteId site, TimePoint when,
                        std::function<void()>&& fn);

  // The simulation is single-threaded: site handlers and managing logic
  // execute as events on the driving (client) thread inside Run*(), so the
  // loop/managing contexts the call graph reaches are virtualized onto that
  // one thread and never overlap dynamically.
  SimOptions options_;
  EventQueue queue_;
  TimePoint now_ MR_CONTEXT_CONFINED(client) = 0;

  // Context of the currently executing site-bound handler.
  SiteId current_site_ MR_CONTEXT_CONFINED(client) = kInvalidSite;
  Duration current_offset_ MR_CONTEXT_CONFINED(client) = 0;

  TimePoint shared_busy_until_ MR_CONTEXT_CONFINED(client) = 0;
  std::unordered_map<SiteId, TimePoint> busy_until_;
  std::unordered_map<SiteId, std::unique_ptr<SimSiteRuntime>> site_runtimes_;
  uint64_t events_processed_ = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_SIM_SIM_RUNTIME_H_

#ifndef MINIRAID_SIM_EVENT_QUEUE_H_
#define MINIRAID_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace miniraid {

/// Time-ordered queue of simulation events. Ties are broken by insertion
/// order (a strictly increasing sequence number), which makes runs fully
/// deterministic and preserves FIFO delivery for messages scheduled at the
/// same instant.
///
/// Events may carry a SiteId tag identifying the execution context they are
/// bound to (kInvalidSite for global/driver events). The tag is what lets
/// the systematic checker (src/check) treat same-time deliveries to
/// different sites as commuting choices: FrontEvents() enumerates every
/// event tied for the earliest time, and PopById() removes a specific one,
/// so a scheduler other than strict FIFO can drive the simulation.
class EventQueue {
 public:
  using EventId = uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to run at absolute time `when`, optionally tagged with
  /// the site whose context it executes in. Returns an id usable with
  /// Cancel().
  EventId Push(TimePoint when, std::function<void()> fn,
               SiteId site = kInvalidSite);

  /// Removes an event; no-op if it already ran or was cancelled.
  void Cancel(EventId id);

  /// True if no runnable (non-cancelled) event remains.
  bool Empty() const { return entries_.empty(); }

  /// Time of the earliest runnable event. Precondition: !Empty().
  TimePoint NextTime() const;

  /// Pops and returns the earliest runnable event. Precondition: !Empty().
  struct Event {
    TimePoint when;
    EventId id;
    SiteId site;
    std::function<void()> fn;
  };
  Event Pop();

  /// Every pending event tied for the earliest time, in insertion order.
  /// Precondition: !Empty().
  struct FrontEvent {
    EventId id;
    SiteId site;
  };
  std::vector<FrontEvent> FrontEvents() const;

  /// Pops the specific pending event `id`. Precondition: `id` is pending.
  Event PopById(EventId id);

  size_t size() const { return entries_.size(); }

 private:
  // (when, seq) orders the queue; seq is unique so the key is too.
  using Key = std::pair<TimePoint, uint64_t>;
  struct Record {
    EventId id;
    SiteId site;
    std::function<void()> fn;
  };

  Event Take(std::map<Key, Record>::iterator it);

  // Owned by SimRuntime, whose event handlers all run on the simulation's
  // driving (client) thread — the loop/managing callers in the call graph
  // are virtualized onto it, so the queue is never touched concurrently.
  std::map<Key, Record> entries_ MR_CONTEXT_CONFINED(client);
  std::unordered_map<EventId, Key> index_ MR_CONTEXT_CONFINED(client);
  uint64_t next_seq_ MR_CONTEXT_CONFINED(client) = 0;
  EventId next_id_ MR_CONTEXT_CONFINED(client) = 1;
};

}  // namespace miniraid

#endif  // MINIRAID_SIM_EVENT_QUEUE_H_

#ifndef MINIRAID_SIM_EVENT_QUEUE_H_
#define MINIRAID_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace miniraid {

/// Time-ordered queue of simulation events. Ties are broken by insertion
/// order (a strictly increasing sequence number), which makes runs fully
/// deterministic and preserves FIFO delivery for messages scheduled at the
/// same instant.
class EventQueue {
 public:
  using EventId = uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to run at absolute time `when`. Returns an id usable
  /// with Cancel().
  EventId Push(TimePoint when, std::function<void()> fn);

  /// Marks an event cancelled; it is discarded when popped. No-op if the
  /// event already ran.
  void Cancel(EventId id);

  /// True if no runnable (non-cancelled) event remains.
  bool Empty() const;

  /// Time of the earliest runnable event. Precondition: !Empty().
  TimePoint NextTime() const;

  /// Pops and returns the earliest runnable event. Precondition: !Empty().
  struct Event {
    TimePoint when;
    EventId id;
    std::function<void()> fn;
  };
  Event Pop();

  size_t size() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    EventId id;
    // Heap orders earliest-first; std::priority_queue is a max-heap, so
    // invert the comparison.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead() const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> functions_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace miniraid

#endif  // MINIRAID_SIM_EVENT_QUEUE_H_

#include "sim/sim_runtime.h"

#include <utility>

#include "common/logging.h"

namespace miniraid {

/// Per-site facade implementing the SiteRuntime interface on top of the
/// shared SimRuntime.
class SimRuntime::SimSiteRuntime : public SiteRuntime {
 public:
  SimSiteRuntime(SimRuntime* sim, SiteId site) : sim_(sim), site_(site) {}

  TimePoint Now() const override {
    // Inside this site's handler, time includes CPU charged so far;
    // otherwise the base simulation time.
    if (sim_->current_site_ == site_) return sim_->CurrentTime();
    return sim_->now_;
  }

  TimerId ScheduleAfter(Duration delay, std::function<void()> fn) override {
    return sim_->ScheduleSiteEvent(Now() + delay, site_, std::move(fn));
  }

  void CancelTimer(TimerId id) override {
    if (id != kInvalidTimer) sim_->CancelEvent(id);
  }

  void ChargeCpu(Duration amount) override {
    if (sim_->current_site_ == site_) {
      sim_->ChargeCurrentSite(amount);
    } else {
      // Charging outside the site's handler (e.g. from a driver) just
      // pushes the site's busy horizon forward.
      sim_->SetBusyUntil(site_,
                         std::max(sim_->BusyUntil(site_), sim_->now_) + amount);
    }
  }

 private:
  SimRuntime* sim_;
  SiteId site_;
};

SimRuntime::SimRuntime(const SimOptions& options) : options_(options) {}

SimRuntime::~SimRuntime() = default;

SiteRuntime* SimRuntime::RuntimeFor(SiteId site) {
  auto it = site_runtimes_.find(site);
  if (it == site_runtimes_.end()) {
    it = site_runtimes_
             .emplace(site, std::make_unique<SimSiteRuntime>(this, site))
             .first;
  }
  return it->second.get();
}

TimePoint SimRuntime::BusyUntil(SiteId site) const {
  if (options_.shared_cpu) return shared_busy_until_;
  auto it = busy_until_.find(site);
  return it == busy_until_.end() ? 0 : it->second;
}

void SimRuntime::SetBusyUntil(SiteId site, TimePoint when) {
  if (options_.shared_cpu) {
    shared_busy_until_ = std::max(shared_busy_until_, when);
  } else {
    TimePoint& slot = busy_until_[site];
    slot = std::max(slot, when);
  }
}

EventQueue::EventId SimRuntime::ScheduleSiteEvent(TimePoint when, SiteId site,
                                                  std::function<void()> fn) {
  return queue_.Push(
      when,
      [this, site, when, fn = std::move(fn)]() mutable {
        ExecuteSiteEvent(site, when, std::move(fn));
      },
      site);
}

EventQueue::EventId SimRuntime::ScheduleGlobalEvent(TimePoint when,
                                                    std::function<void()> fn) {
  return queue_.Push(when, std::move(fn));
}

void SimRuntime::ChargeCurrentSite(Duration amount) {
  if (current_site_ == kInvalidSite) return;
  MR_CHECK(amount >= 0) << "negative CPU charge";
  current_offset_ += amount;
}

void SimRuntime::ExecuteSiteEvent(SiteId site, TimePoint when,
                                  std::function<void()>&& fn) {
  const TimePoint busy = BusyUntil(site);
  if (busy > when) {
    // The site's (or, in shared mode, the machine's) CPU is still occupied;
    // requeue at the busy horizon. Push order preserves FIFO.
    ScheduleSiteEvent(busy, site, std::move(fn));
    return;
  }
  MR_CHECK(current_site_ == kInvalidSite) << "nested site event execution";
  current_site_ = site;
  current_offset_ = 0;
  fn();
  SetBusyUntil(site, when + current_offset_);
  current_site_ = kInvalidSite;
  current_offset_ = 0;
}

bool SimRuntime::RunOne() {
  if (queue_.Empty()) return false;
  RunEvent(queue_.Pop());
  return true;
}

void SimRuntime::RunEvent(EventQueue::Event event) {
  MR_CHECK(event.when >= now_) << "event scheduled in the past";
  now_ = event.when;
  ++events_processed_;
  event.fn();
}

std::vector<EventQueue::FrontEvent> SimRuntime::RunnableEvents() const {
  if (queue_.Empty()) return {};
  return queue_.FrontEvents();
}

void SimRuntime::RunEventById(EventQueue::EventId id) {
  EventQueue::Event event = queue_.PopById(id);
  MR_CHECK(queue_.Empty() || queue_.NextTime() >= event.when)
      << "RunEventById skipping past an earlier event";
  RunEvent(std::move(event));
}

void SimRuntime::RunUntilIdle() {
  while (RunOne()) {
  }
}

void SimRuntime::RunUntil(TimePoint deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    RunOne();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace miniraid

#include "msg/message.h"

#include "common/logging.h"
#include "common/strings.h"
#include "msg/codec.h"

namespace miniraid {

namespace {

// -- per-struct encode helpers ----------------------------------------------

void PutOperation(Encoder& enc, const Operation& op) {
  enc.PutU8(static_cast<uint8_t>(op.kind));
  enc.PutU32(op.item);
  enc.PutI64(op.value);
}

Status GetOperation(Decoder& dec, Operation* op) {
  uint8_t kind = 0;
  MINIRAID_RETURN_IF_ERROR(dec.GetU8(&kind));
  if (kind > static_cast<uint8_t>(Operation::Kind::kWrite)) {
    return Status::Corruption("bad operation kind");
  }
  op->kind = static_cast<Operation::Kind>(kind);
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&op->item));
  return dec.GetI64(&op->value);
}

void PutItemWrite(Encoder& enc, const ItemWrite& w) {
  enc.PutU32(w.item);
  enc.PutI64(w.value);
}

Status GetItemWrite(Decoder& dec, ItemWrite* w) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&w->item));
  return dec.GetI64(&w->value);
}

void PutItemCopy(Encoder& enc, const ItemCopy& c) {
  enc.PutU32(c.item);
  enc.PutI64(c.value);
  enc.PutU64(c.version);
}

Status GetItemCopy(Decoder& dec, ItemCopy* c) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&c->item));
  MINIRAID_RETURN_IF_ERROR(dec.GetI64(&c->value));
  return dec.GetU64(&c->version);
}

void PutFailLockRow(Encoder& enc, const FailLockRow& r) {
  enc.PutU32(r.item);
  enc.PutU64(r.bits);
}

Status GetFailLockRow(Decoder& dec, FailLockRow* r) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&r->item));
  return dec.GetU64(&r->bits);
}

void PutSessionEntry(Encoder& enc, const SessionEntryWire& e) {
  enc.PutU64(e.session);
  enc.PutU8(static_cast<uint8_t>(e.status));
}

Status GetSessionEntry(Decoder& dec, SessionEntryWire* e) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU64(&e->session));
  uint8_t status = 0;
  MINIRAID_RETURN_IF_ERROR(dec.GetU8(&status));
  if (status > static_cast<uint8_t>(SiteStatus::kTerminating)) {
    return Status::Corruption("bad site status");
  }
  e->status = static_cast<SiteStatus>(status);
  return Status::Ok();
}

void PutItemId(Encoder& enc, ItemId item) { enc.PutU32(item); }

Status GetItemId(Decoder& dec, ItemId* item) { return dec.GetU32(item); }

void PutFailedSite(Encoder& enc, const FailedSiteEntry& e) {
  enc.PutU32(e.site);
  enc.PutU64(e.session);
}

Status GetFailedSite(Decoder& dec, FailedSiteEntry* e) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&e->site));
  return dec.GetU64(&e->session);
}

void PutTxnId(Encoder& enc, TxnId txn) { enc.PutU64(txn); }

Status GetTxnId(Decoder& dec, TxnId* txn) { return dec.GetU64(txn); }

void PutBatchMember(Encoder& enc, const BatchMember& m) {
  enc.PutU64(m.txn);
  enc.PutVector(m.writes, PutItemWrite);
}

Status GetBatchMember(Decoder& dec, BatchMember* m) {
  MINIRAID_RETURN_IF_ERROR(dec.GetU64(&m->txn));
  return dec.GetVector(&m->writes, GetItemWrite);
}

// -- payload encoders --------------------------------------------------------

struct PayloadEncoder {
  Encoder& enc;

  void operator()(const TxnRequestArgs& a) {
    enc.PutU64(a.txn.id);
    enc.PutVector(a.txn.ops, PutOperation);
    enc.PutVector(a.txn.declared_reads, PutItemId);
    enc.PutVector(a.txn.declared_writes, PutItemId);
  }
  void operator()(const TxnResult& a) {
    enc.PutU64(a.txn);
    enc.PutU8(static_cast<uint8_t>(a.outcome));
    enc.PutU32(a.copier_count);
    enc.PutVector(a.reads, PutItemCopy);
  }
  void operator()(const PrepareArgs& a) {
    enc.PutU64(a.txn);
    enc.PutVector(a.writes, PutItemWrite);
    enc.PutVector(a.session_vector, PutSessionEntry);
    enc.PutVector(a.participants, PutItemId);  // SiteId == ItemId == u32
  }
  void operator()(const PrepareAckArgs& a) {
    enc.PutU64(a.txn);
    enc.PutU8(a.accepted ? 1 : 0);
    enc.PutVector(a.session_vector, PutSessionEntry);
  }
  void operator()(const CommitArgs& a) { enc.PutU64(a.txn); }
  void operator()(const CommitAckArgs& a) { enc.PutU64(a.txn); }
  void operator()(const AbortArgs& a) { enc.PutU64(a.txn); }
  void operator()(const CopyRequestArgs& a) {
    enc.PutU64(a.txn);
    enc.PutVector(a.items, PutItemId);
  }
  void operator()(const CopyReplyArgs& a) {
    enc.PutU64(a.txn);
    enc.PutVector(a.copies, PutItemCopy);
  }
  void operator()(const ClearFailLocksArgs& a) {
    enc.PutU64(a.txn);
    enc.PutU32(a.refreshed_site);
    enc.PutVector(a.items, PutItemId);
  }
  void operator()(const ClearFailLocksAckArgs& a) { enc.PutU64(a.txn); }
  void operator()(const RecoveryAnnounceArgs& a) {
    enc.PutU32(a.recovering_site);
    enc.PutU64(a.new_session);
  }
  void operator()(const RecoveryInfoArgs& a) {
    enc.PutVector(a.session_vector, PutSessionEntry);
    enc.PutVector(a.fail_locks, PutFailLockRow);
  }
  void operator()(const FailureAnnounceArgs& a) {
    enc.PutVector(a.failed_sites, PutFailedSite);
  }
  void operator()(const FailureAckArgs&) {}
  void operator()(const CopyCreateArgs& a) {
    enc.PutU32(a.backup_site);
    enc.PutVector(a.copies, PutItemCopy);
  }
  void operator()(const CopyCreateAckArgs&) {}
  void operator()(const FailSiteArgs&) {}
  void operator()(const RecoverSiteArgs&) {}
  void operator()(const ShutdownArgs&) {}
  void operator()(const DecisionQueryArgs& a) { enc.PutU64(a.txn); }
  void operator()(const ChannelAckArgs&) {}
  void operator()(const BatchPrepareArgs& a) {
    enc.PutU64(a.batch);
    enc.PutVector(a.session_vector, PutSessionEntry);
    enc.PutVector(a.participants, PutItemId);  // SiteId == ItemId == u32
    enc.PutVector(a.members, PutBatchMember);
  }
  void operator()(const BatchPrepareAckArgs& a) {
    enc.PutU64(a.batch);
    enc.PutU8(a.accepted ? 1 : 0);
    enc.PutVector(a.session_vector, PutSessionEntry);
    enc.PutVector(a.refused, PutTxnId);
  }
  void operator()(const BatchCommitArgs& a) {
    enc.PutU64(a.batch);
    enc.PutVector(a.commits, PutTxnId);
    enc.PutVector(a.aborts, PutTxnId);
  }
  void operator()(const BatchCommitAckArgs& a) { enc.PutU64(a.batch); }
};

// -- payload decoders --------------------------------------------------------

Status DecodePayload(MsgType type, Decoder& dec, Payload* out) {
  switch (type) {
    case MsgType::kTxnRequest: {
      TxnRequestArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn.id));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.txn.ops, GetOperation));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.txn.declared_reads, GetItemId));
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.txn.declared_writes, GetItemId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kTxnReply: {
      TxnResult a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      uint8_t outcome = 0;
      MINIRAID_RETURN_IF_ERROR(dec.GetU8(&outcome));
      if (outcome > static_cast<uint8_t>(TxnOutcome::kAbortedLockTimeout)) {
        return Status::Corruption("bad txn outcome");
      }
      a.outcome = static_cast<TxnOutcome>(outcome);
      MINIRAID_RETURN_IF_ERROR(dec.GetU32(&a.copier_count));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.reads, GetItemCopy));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kPrepare: {
      PrepareArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.writes, GetItemWrite));
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.session_vector, GetSessionEntry));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.participants, GetItemId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kPrepareAck: {
      PrepareAckArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      uint8_t accepted = 1;
      MINIRAID_RETURN_IF_ERROR(dec.GetU8(&accepted));
      a.accepted = accepted != 0;
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.session_vector, GetSessionEntry));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kCommit: {
      CommitArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kCommitAck: {
      CommitAckArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kAbort: {
      AbortArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kCopyRequest: {
      CopyRequestArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.items, GetItemId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kCopyReply: {
      CopyReplyArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.copies, GetItemCopy));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kClearFailLocks: {
      ClearFailLocksArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      MINIRAID_RETURN_IF_ERROR(dec.GetU32(&a.refreshed_site));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.items, GetItemId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kClearFailLocksAck: {
      ClearFailLocksAckArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kRecoveryAnnounce: {
      RecoveryAnnounceArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU32(&a.recovering_site));
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.new_session));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kRecoveryInfo: {
      RecoveryInfoArgs a;
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.session_vector, GetSessionEntry));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.fail_locks, GetFailLockRow));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kFailureAnnounce: {
      FailureAnnounceArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.failed_sites, GetFailedSite));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kFailureAck:
      *out = FailureAckArgs{};
      return Status::Ok();
    case MsgType::kCopyCreate: {
      CopyCreateArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU32(&a.backup_site));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.copies, GetItemCopy));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kCopyCreateAck:
      *out = CopyCreateAckArgs{};
      return Status::Ok();
    case MsgType::kFailSite:
      *out = FailSiteArgs{};
      return Status::Ok();
    case MsgType::kRecoverSite:
      *out = RecoverSiteArgs{};
      return Status::Ok();
    case MsgType::kShutdown:
      *out = ShutdownArgs{};
      return Status::Ok();
    case MsgType::kDecisionQuery: {
      DecisionQueryArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.txn));
      *out = a;
      return Status::Ok();
    }
    case MsgType::kChannelAck:
      *out = ChannelAckArgs{};
      return Status::Ok();
    case MsgType::kBatchPrepare: {
      BatchPrepareArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.batch));
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.session_vector, GetSessionEntry));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.participants, GetItemId));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.members, GetBatchMember));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kBatchPrepareAck: {
      BatchPrepareAckArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.batch));
      uint8_t accepted = 1;
      MINIRAID_RETURN_IF_ERROR(dec.GetU8(&accepted));
      a.accepted = accepted != 0;
      MINIRAID_RETURN_IF_ERROR(
          dec.GetVector(&a.session_vector, GetSessionEntry));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.refused, GetTxnId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kBatchCommit: {
      BatchCommitArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.batch));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.commits, GetTxnId));
      MINIRAID_RETURN_IF_ERROR(dec.GetVector(&a.aborts, GetTxnId));
      *out = std::move(a);
      return Status::Ok();
    }
    case MsgType::kBatchCommitAck: {
      BatchCommitAckArgs a;
      MINIRAID_RETURN_IF_ERROR(dec.GetU64(&a.batch));
      *out = a;
      return Status::Ok();
    }
  }
  return Status::Corruption("unknown message type");
}

}  // namespace

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kTxnRequest:
      return "TxnRequest";
    case MsgType::kTxnReply:
      return "TxnReply";
    case MsgType::kPrepare:
      return "Prepare";
    case MsgType::kPrepareAck:
      return "PrepareAck";
    case MsgType::kCommit:
      return "Commit";
    case MsgType::kCommitAck:
      return "CommitAck";
    case MsgType::kAbort:
      return "Abort";
    case MsgType::kCopyRequest:
      return "CopyRequest";
    case MsgType::kCopyReply:
      return "CopyReply";
    case MsgType::kClearFailLocks:
      return "ClearFailLocks";
    case MsgType::kClearFailLocksAck:
      return "ClearFailLocksAck";
    case MsgType::kRecoveryAnnounce:
      return "RecoveryAnnounce";
    case MsgType::kRecoveryInfo:
      return "RecoveryInfo";
    case MsgType::kFailureAnnounce:
      return "FailureAnnounce";
    case MsgType::kFailureAck:
      return "FailureAck";
    case MsgType::kCopyCreate:
      return "CopyCreate";
    case MsgType::kCopyCreateAck:
      return "CopyCreateAck";
    case MsgType::kFailSite:
      return "FailSite";
    case MsgType::kRecoverSite:
      return "RecoverSite";
    case MsgType::kShutdown:
      return "Shutdown";
    case MsgType::kDecisionQuery:
      return "DecisionQuery";
    case MsgType::kChannelAck:
      return "ChannelAck";
    case MsgType::kBatchPrepare:
      return "BatchPrepare";
    case MsgType::kBatchPrepareAck:
      return "BatchPrepareAck";
    case MsgType::kBatchCommit:
      return "BatchCommit";
    case MsgType::kBatchCommitAck:
      return "BatchCommitAck";
  }
  return "Unknown";
}

Message MakeMessage(SiteId from, SiteId to, Payload payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  // The Payload alternative order mirrors the MsgType enumerator order, so
  // the variant index is the wire type.
  msg.type = static_cast<MsgType>(payload.index());
  msg.payload = std::move(payload);
  return msg;
}

std::string Message::ToString() const {
  return StrFormat("%s %u->%u", std::string(MsgTypeName(type)).c_str(), from,
                   to);
}

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  Encoder enc;
  EncodeMessageInto(msg, enc);
  return enc.TakeBuffer();
}

void EncodeMessageInto(const Message& msg, Encoder& enc) {
  MR_CHECK(static_cast<size_t>(msg.type) == msg.payload.index())
      << "message type does not match payload alternative";
  enc.Clear();
  // Header: type + from + to + the two varint channel fields. 16 bytes
  // covers the header plus the fixed prefix of every payload, so small
  // messages never grow the buffer twice.
  enc.reserve(16);
  enc.PutU8(static_cast<uint8_t>(msg.type));
  enc.PutU32(msg.from);
  enc.PutU32(msg.to);
  enc.PutVarint(msg.seq);
  enc.PutVarint(msg.ack);
  std::visit(PayloadEncoder{enc}, msg.payload);
}

Result<Message> DecodeMessage(const uint8_t* data, size_t size) {
  Decoder dec(data, size);
  uint8_t type_byte = 0;
  MINIRAID_RETURN_IF_ERROR(dec.GetU8(&type_byte));
  if (type_byte > static_cast<uint8_t>(MsgType::kBatchCommitAck)) {
    return Status::Corruption("unknown message type byte");
  }
  Message msg;
  msg.type = static_cast<MsgType>(type_byte);
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&msg.from));
  MINIRAID_RETURN_IF_ERROR(dec.GetU32(&msg.to));
  MINIRAID_RETURN_IF_ERROR(dec.GetVarint(&msg.seq));
  MINIRAID_RETURN_IF_ERROR(dec.GetVarint(&msg.ack));
  MINIRAID_RETURN_IF_ERROR(DecodePayload(msg.type, dec, &msg.payload));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after message payload");
  }
  return msg;
}

}  // namespace miniraid

#ifndef MINIRAID_MSG_CODEC_H_
#define MINIRAID_MSG_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace miniraid {

/// Append-only binary encoder. Fixed-width integers are little-endian;
/// unsigned varints use LEB128. The format is the same for the in-memory
/// and socket transports so a message round-trips identically everywhere.
class Encoder {
 public:
  Encoder() = default;

  /// Adopts `buf` as the output storage: contents are discarded, capacity
  /// is kept. This is the buffer-reuse entry point — a FramePool hands the
  /// same storage through many encode cycles so steady-state encoding
  /// allocates nothing.
  explicit Encoder(std::vector<uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v);

  /// Length-prefixed byte string.
  void PutString(const std::string& s);

  /// Appends `n` raw bytes (no length prefix).
  void PutBytes(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Pre-sizes the buffer for at least `n` total bytes.
  void reserve(size_t n) { buf_.reserve(n); }

  /// Length-prefixed vector of POD-encodable elements via a callback.
  template <typename T, typename F>
  void PutVector(const std::vector<T>& v, F&& put_element) {
    PutVarint(v.size());
    for (const T& e : v) put_element(*this, e);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    // Stage the little-endian bytes in a local array and append with one
    // memcpy: a single amortized grow instead of sizeof(T) bounds-checked
    // push_backs on the hottest encode path. GCC 12 misdiagnoses the
    // append as out of bounds at -O2 (PR 105523 lineage) and the build is
    // -Werror, so the false positive is suppressed locally for exactly
    // that compiler.
    uint8_t raw[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    const size_t old_size = buf_.size();
    buf_.resize(old_size + sizeof(T));
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
    std::memcpy(buf_.data() + old_size, raw, sizeof(T));
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic pop
#endif
  }

  /// Value type: encoders are stack-local to whichever context is
  /// serializing; the buffer never outlives the encode call chain.
  std::vector<uint8_t> buf_ MR_CONTEXT_CONFINED(any);
};

/// Recycles encode buffers between frames. Acquire() seeds an Encoder with
/// previously released storage (capacity retained, contents cleared);
/// Release() returns the frame's storage once the transport has consumed
/// it. A plain free list, not a synchronized allocator: the owner confines
/// it to one execution context or wraps it in a lock (SharedFramePool in
/// net/transport.h does the latter for the multi-threaded send paths).
class FramePool {
 public:
  Encoder Acquire() {
    if (free_.empty()) return Encoder();
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return Encoder(std::move(buf));
  }

  void Release(std::vector<uint8_t> buf) {
    // Bound both the list length and the retained capacity so one huge
    // frame (a wide batch, a full recovery-info table) does not pin its
    // high-water mark forever.
    if (free_.size() < kMaxFree && buf.capacity() <= kMaxRetainedCapacity) {
      free_.push_back(std::move(buf));
    }
  }

  size_t free_count() const { return free_.size(); }

 private:
  static constexpr size_t kMaxFree = 16;
  static constexpr size_t kMaxRetainedCapacity = 64 * 1024;
  /// Value type like Encoder::buf_: confined to wherever the owning
  /// instance lives (one loop context, or under the owner's lock).
  std::vector<std::vector<uint8_t>> free_ MR_CONTEXT_CONFINED(any);
};

/// Bounds-checked reader over an encoded buffer. Every getter returns a
/// Status so truncated or corrupt input surfaces as StatusCode::kCorruption
/// instead of undefined behaviour.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);

  /// Like GetString but yields a view into the frame instead of a copy.
  /// The view is only valid while the decoded buffer is: callers that keep
  /// it past the decode call chain are flagged by miniraid-analyze's
  /// view-escape pass, which is what makes the zero-copy form safe to
  /// offer at all. Use for decode-then-discard fields (logging, filtering,
  /// comparisons) where GetString's copy is pure waste.
  Status GetStringView(std::string_view* out);

  /// Length-prefixed vector; `get_element` decodes one element.
  template <typename T, typename F>
  Status GetVector(std::vector<T>* out, F&& get_element) {
    uint64_t n = 0;
    MINIRAID_RETURN_IF_ERROR(GetVarint(&n));
    if (n > remaining()) {
      // Each element takes >= 1 byte, so this length is impossible; reject
      // before attempting a huge allocation from corrupt input.
      return Status::Corruption("vector length exceeds remaining bytes");
    }
    out->clear();
    out->reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      T element;
      MINIRAID_RETURN_IF_ERROR(get_element(*this, &element));
      out->push_back(std::move(element));
    }
    return Status::Ok();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("buffer truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  /// Value type: decoders are stack-local to the context draining one
  /// message; the read cursor is never shared.
  size_t pos_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_MSG_CODEC_H_

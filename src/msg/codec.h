#ifndef MINIRAID_MSG_CODEC_H_
#define MINIRAID_MSG_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace miniraid {

/// Append-only binary encoder. Fixed-width integers are little-endian;
/// unsigned varints use LEB128. The format is the same for the in-memory
/// and socket transports so a message round-trips identically everywhere.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v);

  /// Length-prefixed byte string.
  void PutString(const std::string& s);

  /// Length-prefixed vector of POD-encodable elements via a callback.
  template <typename T, typename F>
  void PutVector(const std::vector<T>& v, F&& put_element) {
    PutVarint(v.size());
    for (const T& e : v) put_element(*this, e);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    // Bytes are appended one by one (rather than staged in a local array
    // handed to vector::insert) because GCC 12's -Warray-bounds misfires on
    // the insert path at -O2 and the build is -Werror.
    const size_t old_size = buf_.size();
    buf_.resize(old_size + sizeof(T));
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_[old_size + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  /// Value type: encoders are stack-local to whichever context is
  /// serializing; the buffer never outlives the encode call chain.
  std::vector<uint8_t> buf_ MR_CONTEXT_CONFINED(any);
};

/// Bounds-checked reader over an encoded buffer. Every getter returns a
/// Status so truncated or corrupt input surfaces as StatusCode::kCorruption
/// instead of undefined behaviour.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);

  /// Length-prefixed vector; `get_element` decodes one element.
  template <typename T, typename F>
  Status GetVector(std::vector<T>* out, F&& get_element) {
    uint64_t n = 0;
    MINIRAID_RETURN_IF_ERROR(GetVarint(&n));
    if (n > remaining()) {
      // Each element takes >= 1 byte, so this length is impossible; reject
      // before attempting a huge allocation from corrupt input.
      return Status::Corruption("vector length exceeds remaining bytes");
    }
    out->clear();
    out->reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      T element;
      MINIRAID_RETURN_IF_ERROR(get_element(*this, &element));
      out->push_back(std::move(element));
    }
    return Status::Ok();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("buffer truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  /// Value type: decoders are stack-local to the context draining one
  /// message; the read cursor is never shared.
  size_t pos_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_MSG_CODEC_H_

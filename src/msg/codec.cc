#include "msg/codec.h"

namespace miniraid {

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Status Decoder::GetU8(uint8_t* out) { return GetFixed(out); }
Status Decoder::GetU16(uint16_t* out) { return GetFixed(out); }
Status Decoder::GetU32(uint32_t* out) { return GetFixed(out); }
Status Decoder::GetU64(uint64_t* out) { return GetFixed(out); }

Status Decoder::GetI64(int64_t* out) {
  uint64_t u = 0;
  MINIRAID_RETURN_IF_ERROR(GetFixed(&u));
  *out = static_cast<int64_t>(u);
  return Status::Ok();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("varint truncated");
    if (shift >= 64) return Status::Corruption("varint too long");
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetString(std::string* out) {
  std::string_view view;
  MINIRAID_RETURN_IF_ERROR(GetStringView(&view));
  out->assign(view);
  return Status::Ok();
}

Status Decoder::GetStringView(std::string_view* out) {
  uint64_t n = 0;
  MINIRAID_RETURN_IF_ERROR(GetVarint(&n));
  if (n > remaining()) return Status::Corruption("string truncated");
  *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                          static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return Status::Ok();
}

}  // namespace miniraid

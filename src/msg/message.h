#ifndef MINIRAID_MSG_MESSAGE_H_
#define MINIRAID_MSG_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace miniraid {

class Encoder;

/// Every message kind exchanged in the system. The first group implements
/// the two-phase commit of Appendix A, the second the copier machinery, the
/// third the control transactions of §1.1, and the last the managing site's
/// control plane (§1.2: "a managing site to provide interactive control of
/// system actions ... cause sites to fail and recover and ... initiate a
/// database transaction to a site").
enum class MsgType : uint8_t {
  // Database transaction processing (two-phase commit, Appendix A).
  kTxnRequest = 0,   // managing -> coordinator
  kTxnReply = 1,     // coordinator -> managing
  kPrepare = 2,      // coordinator -> participant: copy updates
  kPrepareAck = 3,   // participant -> coordinator
  kCommit = 4,       // coordinator -> participant
  kCommitAck = 5,    // participant -> coordinator
  kAbort = 6,        // coordinator -> participant

  // Copier transactions (§1.1) and the special fail-lock-clearing
  // transaction (§1.2).
  kCopyRequest = 7,        // recovering coordinator -> up-to-date site
  kCopyReply = 8,          // copies back to the requester
  kClearFailLocks = 9,     // special txn: announce refreshed copies
  kClearFailLocksAck = 10,

  // Control transactions.
  kRecoveryAnnounce = 11,  // type 1: recovering site -> operational sites
  kRecoveryInfo = 12,      // session vector + fail-locks back
  kFailureAnnounce = 13,   // type 2: failure detector -> operational sites
  kFailureAck = 14,
  kCopyCreate = 15,        // type 3 (extension): place copy on backup site
  kCopyCreateAck = 16,

  // Managing-site control plane.
  kFailSite = 17,     // managing -> site: stop participating (simulated
                      // crash; the site ignores everything until recovery)
  kRecoverSite = 18,  // managing -> site: start the type-1 protocol
  kShutdown = 19,     // managing -> site: terminate cleanly

  // Reliable-delivery machinery (lossy-network extension).
  kDecisionQuery = 20,  // in-doubt participant -> coordinator: outcome?
  kChannelAck = 21,     // ReliableChannel ack (value rides in the header)

  // Group commit (batched 2PC extension, docs/PROTOCOL.md "Batched
  // two-phase commit"): one frame carries N member transactions that share
  // a participant set, so the coordination round and the per-participant
  // fail-lock table update are paid once per batch instead of once per
  // transaction.
  kBatchPrepare = 22,     // coordinator -> participant: N members' writes
  kBatchPrepareAck = 23,  // participant -> coordinator
  kBatchCommit = 24,      // coordinator -> participant: commit/abort split
  kBatchCommitAck = 25,   // participant -> coordinator
};

std::string_view MsgTypeName(MsgType type);

/// (item, new value) pair carried by a Prepare.
struct ItemWrite {
  ItemId item = 0;
  Value value = 0;
  friend bool operator==(const ItemWrite&, const ItemWrite&) = default;
};

/// (item, value, version) triple carried by copy replies / type-3 copies.
struct ItemCopy {
  ItemId item = 0;
  Value value = 0;
  Version version = 0;
  friend bool operator==(const ItemCopy&, const ItemCopy&) = default;
};

/// One row of a fail-lock table on the wire: the bitmap of sites whose copy
/// of `item` is out of date. Rows with zero bitmaps are omitted.
struct FailLockRow {
  ItemId item = 0;
  uint64_t bits = 0;
  friend bool operator==(const FailLockRow&, const FailLockRow&) = default;
};

/// One entry of a nominal session vector on the wire.
struct SessionEntryWire {
  SessionNumber session = 0;
  SiteStatus status = SiteStatus::kDown;
  friend bool operator==(const SessionEntryWire&,
                         const SessionEntryWire&) = default;
};

// ---------------------------------------------------------------------------
// Payloads.
// ---------------------------------------------------------------------------

struct TxnRequestArgs {
  TxnSpec txn;
  friend bool operator==(const TxnRequestArgs&,
                         const TxnRequestArgs&) = default;
};

/// Terminal result of a database transaction, carried by kTxnReply from
/// the coordinator to the managing site and handed to client callbacks.
/// The typed abort reason (TxnOutcome) distinguishes deadlock victims,
/// lock-wait timeouts, stale membership views, and failure-driven aborts;
/// retryable() says whether re-submitting unchanged may succeed.
struct TxnResult {
  TxnId txn = 0;
  TxnOutcome outcome = TxnOutcome::kCommitted;
  /// Copier transactions the coordinator ran for this transaction.
  uint32_t copier_count = 0;
  /// Values observed by the read operations (post-copier), for the oracle.
  std::vector<ItemCopy> reads;

  bool committed() const { return outcome == TxnOutcome::kCommitted; }
  bool aborted() const { return outcome != TxnOutcome::kCommitted; }
  /// True for transient scheduling aborts (see IsRetryableAbort).
  bool retryable() const { return IsRetryableAbort(outcome); }

  friend bool operator==(const TxnResult&, const TxnResult&) = default;
};

struct PrepareArgs {
  TxnId txn = 0;
  std::vector<ItemWrite> writes;
  /// The coordinator's nominal session vector, piggybacked so every
  /// participant maintains fail-locks from the same membership knowledge
  /// the participant set was chosen under (and can veto a coordinator
  /// whose knowledge is stale — see PrepareAckArgs::accepted).
  std::vector<SessionEntryWire> session_vector;
  /// The transaction's participant set (coordinator included). Commit-time
  /// fail-lock maintenance sets the bit for exactly the holders outside
  /// this set: those are the copies that miss the write, regardless of
  /// what each participant currently believes about their status.
  std::vector<SiteId> participants;
  friend bool operator==(const PrepareArgs&, const PrepareArgs&) = default;
};

struct PrepareAckArgs {
  TxnId txn = 0;
  /// False = the participant refuses the transaction: a lock conflict
  /// under the wait-die concurrency-control extension, or a session-vector
  /// validation failure (the participant knows a strictly newer session
  /// for some site than the coordinator's piggybacked vector — committing
  /// under the coordinator's stale membership could strand a recovering
  /// site's fail-locks). The coordinator aborts.
  bool accepted = true;
  /// On a session-validation refusal, the participant's vector rides back
  /// so the coordinator can catch up before the client retries. Empty
  /// otherwise.
  std::vector<SessionEntryWire> session_vector;
  friend bool operator==(const PrepareAckArgs&,
                         const PrepareAckArgs&) = default;
};

struct CommitArgs {
  TxnId txn = 0;
  friend bool operator==(const CommitArgs&, const CommitArgs&) = default;
};

struct CommitAckArgs {
  TxnId txn = 0;
  friend bool operator==(const CommitAckArgs&, const CommitAckArgs&) = default;
};

struct AbortArgs {
  TxnId txn = 0;
  friend bool operator==(const AbortArgs&, const AbortArgs&) = default;
};

struct CopyRequestArgs {
  TxnId txn = 0;
  std::vector<ItemId> items;
  friend bool operator==(const CopyRequestArgs&,
                         const CopyRequestArgs&) = default;
};

struct CopyReplyArgs {
  TxnId txn = 0;
  std::vector<ItemCopy> copies;
  friend bool operator==(const CopyReplyArgs&, const CopyReplyArgs&) = default;
};

struct ClearFailLocksArgs {
  TxnId txn = 0;
  /// The site whose copies were refreshed (the recovering coordinator).
  SiteId refreshed_site = 0;
  std::vector<ItemId> items;
  friend bool operator==(const ClearFailLocksArgs&,
                         const ClearFailLocksArgs&) = default;
};

struct ClearFailLocksAckArgs {
  TxnId txn = 0;
  friend bool operator==(const ClearFailLocksAckArgs&,
                         const ClearFailLocksAckArgs&) = default;
};

struct RecoveryAnnounceArgs {
  SiteId recovering_site = 0;
  SessionNumber new_session = 0;
  friend bool operator==(const RecoveryAnnounceArgs&,
                         const RecoveryAnnounceArgs&) = default;
};

struct RecoveryInfoArgs {
  std::vector<SessionEntryWire> session_vector;
  std::vector<FailLockRow> fail_locks;
  friend bool operator==(const RecoveryInfoArgs&,
                         const RecoveryInfoArgs&) = default;
};

/// One site reported failed by a type-2 control transaction. The session
/// number pins the announcement to the epoch the detector observed, so a
/// receiver that already saw the site recover (higher session) ignores it.
struct FailedSiteEntry {
  SiteId site = 0;
  SessionNumber session = 0;
  friend bool operator==(const FailedSiteEntry&,
                         const FailedSiteEntry&) = default;
};

struct FailureAnnounceArgs {
  std::vector<FailedSiteEntry> failed_sites;
  friend bool operator==(const FailureAnnounceArgs&,
                         const FailureAnnounceArgs&) = default;
};

struct FailureAckArgs {
  friend bool operator==(const FailureAckArgs&, const FailureAckArgs&) =
      default;
};

/// Control type 3 (extension): the sender holds the last operational
/// up-to-date copies of `copies` and directs `backup_site` to install
/// them. Broadcast to all operational sites so everyone's holders table
/// learns about the new copies; only `backup_site` installs the data.
struct CopyCreateArgs {
  SiteId backup_site = 0;
  std::vector<ItemCopy> copies;
  friend bool operator==(const CopyCreateArgs&, const CopyCreateArgs&) =
      default;
};

struct CopyCreateAckArgs {
  friend bool operator==(const CopyCreateAckArgs&, const CopyCreateAckArgs&) =
      default;
};

struct FailSiteArgs {
  friend bool operator==(const FailSiteArgs&, const FailSiteArgs&) = default;
};

struct RecoverSiteArgs {
  friend bool operator==(const RecoverSiteArgs&, const RecoverSiteArgs&) =
      default;
};

struct ShutdownArgs {
  friend bool operator==(const ShutdownArgs&, const ShutdownArgs&) = default;
};

/// An in-doubt participant (its patience timer fired while a transaction
/// was still staged) asks the coordinator for the outcome. The coordinator
/// answers with a Commit or Abort; a transaction it has no record of is
/// presumed aborted (see docs/PROTOCOL.md, reliable delivery).
struct DecisionQueryArgs {
  TxnId txn = 0;
  friend bool operator==(const DecisionQueryArgs&, const DecisionQueryArgs&) =
      default;
};

/// Standalone acknowledgement emitted by a ReliableChannel when it has no
/// outbound data message to piggyback the cumulative ack on. The ack value
/// itself rides in the message header (Message::ack); the payload is empty.
struct ChannelAckArgs {
  friend bool operator==(const ChannelAckArgs&, const ChannelAckArgs&) =
      default;
};

/// One member transaction inside a batched prepare: its id and its copy
/// updates. The session vector and participant set ride once at the batch
/// level — sharing them is what makes the batch one table update.
struct BatchMember {
  TxnId txn = 0;
  std::vector<ItemWrite> writes;
  friend bool operator==(const BatchMember&, const BatchMember&) = default;
};

/// Batched prepare: N member transactions that share one participant set
/// and were validated under one coordinator session vector. Semantically
/// equivalent to N kPrepare messages whose session_vector/participants
/// fields are identical; a batch of one is exactly one such kPrepare.
struct BatchPrepareArgs {
  /// Coordinator-local batch id, unique per coordinator (like TxnId).
  uint64_t batch = 0;
  std::vector<SessionEntryWire> session_vector;
  /// Shared participant set (coordinator included), as in PrepareArgs.
  std::vector<SiteId> participants;
  std::vector<BatchMember> members;
  friend bool operator==(const BatchPrepareArgs&,
                         const BatchPrepareArgs&) = default;
};

struct BatchPrepareAckArgs {
  uint64_t batch = 0;
  /// False = whole-batch refusal on session-vector validation (the same
  /// veto as PrepareAckArgs::accepted; the vector rides back below). All
  /// members are then aborted by the coordinator: they were all validated
  /// under the same stale view.
  bool accepted = true;
  std::vector<SessionEntryWire> session_vector;
  /// Member transactions this participant refused individually (lock
  /// conflicts under wait-die). Refusal of one member must not abort its
  /// batch-mates; the coordinator demultiplexes per member.
  std::vector<TxnId> refused;
  friend bool operator==(const BatchPrepareAckArgs&,
                         const BatchPrepareAckArgs&) = default;
};

/// Batched decision: which members commit and which abort, in one frame.
/// Participants apply all commits and then run fail-lock maintenance once
/// over the union of the committed writes (the rows are identical to N
/// separate updates because the participant set is shared).
struct BatchCommitArgs {
  uint64_t batch = 0;
  std::vector<TxnId> commits;
  std::vector<TxnId> aborts;
  friend bool operator==(const BatchCommitArgs&,
                         const BatchCommitArgs&) = default;
};

struct BatchCommitAckArgs {
  uint64_t batch = 0;
  friend bool operator==(const BatchCommitAckArgs&,
                         const BatchCommitAckArgs&) = default;
};

using Payload =
    std::variant<TxnRequestArgs, TxnResult, PrepareArgs, PrepareAckArgs,
                 CommitArgs, CommitAckArgs, AbortArgs, CopyRequestArgs,
                 CopyReplyArgs, ClearFailLocksArgs, ClearFailLocksAckArgs,
                 RecoveryAnnounceArgs, RecoveryInfoArgs, FailureAnnounceArgs,
                 FailureAckArgs, CopyCreateArgs, CopyCreateAckArgs,
                 FailSiteArgs, RecoverSiteArgs, ShutdownArgs,
                 DecisionQueryArgs, ChannelAckArgs, BatchPrepareArgs,
                 BatchPrepareAckArgs, BatchCommitArgs, BatchCommitAckArgs>;

/// One protocol message. `from`/`to` identify sites (the managing site has
/// an id too). The payload variant index always matches `type`.
struct Message {
  MsgType type = MsgType::kTxnRequest;
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  /// Reliable-channel header (see net/reliable_channel.h). `seq` is the
  /// per-(from, to) sequence number the sender's channel assigned, starting
  /// at 1; 0 means the message travels outside any channel (an unreliable
  /// datagram, the pre-channel default). `ack` is cumulative: the highest
  /// seq the sender has delivered in order from `to`. Both encode as
  /// varints, so the legacy common case (0, 0) costs two bytes.
  uint64_t seq = 0;
  uint64_t ack = 0;
  Payload payload;

  /// Convenience typed accessors; precondition: the payload holds T.
  template <typename T>
  const T& As() const {
    return std::get<T>(payload);
  }
  template <typename T>
  T& As() {
    return std::get<T>(payload);
  }

  std::string ToString() const;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Builds a message with `type` derived from the payload alternative.
Message MakeMessage(SiteId from, SiteId to, Payload payload);

/// Serializes `msg` to the wire encoding (without any transport framing).
std::vector<uint8_t> EncodeMessage(const Message& msg);

/// Serializes `msg` into `enc` (cleared first). With an encoder seeded from
/// a FramePool buffer this is the allocation-free encode path: the frame is
/// built in recycled storage instead of a fresh vector per message.
void EncodeMessageInto(const Message& msg, Encoder& enc);

/// Parses a message previously produced by EncodeMessage. Returns
/// kCorruption for malformed input; never crashes on untrusted bytes.
Result<Message> DecodeMessage(const uint8_t* data, size_t size);
inline Result<Message> DecodeMessage(const std::vector<uint8_t>& buf) {
  return DecodeMessage(buf.data(), buf.size());
}

}  // namespace miniraid

#endif  // MINIRAID_MSG_MESSAGE_H_

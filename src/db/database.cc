#include "db/database.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

Database::Database(uint32_t n_items)
    : items_(n_items, ItemState{}), held_count_(n_items) {}

Database::Database(uint32_t n_items, const std::vector<ItemId>& held)
    : items_(n_items, std::nullopt) {
  for (ItemId item : held) {
    MR_CHECK(item < n_items) << "held item " << item << " out of range";
    if (!items_[item].has_value()) {
      items_[item] = ItemState{};
      ++held_count_;
    }
  }
}

Result<ItemState> Database::Read(ItemId item) const {
  if (!Holds(item)) {
    return Status::NotFound(StrFormat("no local copy of item %u", item));
  }
  return *items_[item];
}

Status Database::CommitWrite(ItemId item, Value value, TxnId writer) {
  if (!Holds(item)) {
    return Status::NotFound(StrFormat("no local copy of item %u", item));
  }
  ItemState& state = *items_[item];
  if (writer < state.version) {
    return Status::InvalidArgument(
        StrFormat("write by txn %llu would regress item %u from version %llu",
                  (unsigned long long)writer, item,
                  (unsigned long long)state.version));
  }
  state.value = value;
  state.version = writer;
  return Status::Ok();
}

Status Database::InstallCopy(ItemId item, const ItemState& copy) {
  if (item >= items_.size()) {
    return Status::InvalidArgument(StrFormat("item %u out of range", item));
  }
  if (!items_[item].has_value()) {
    items_[item] = copy;
    ++held_count_;
    return Status::Ok();
  }
  ItemState& state = *items_[item];
  if (copy.version < state.version) {
    return Status::InvalidArgument(StrFormat(
        "incoming copy of item %u (version %llu) older than local (%llu)",
        item, (unsigned long long)copy.version,
        (unsigned long long)state.version));
  }
  state = copy;
  return Status::Ok();
}

Status Database::DropCopy(ItemId item) {
  if (!Holds(item)) {
    return Status::NotFound(StrFormat("no local copy of item %u", item));
  }
  items_[item] = std::nullopt;
  --held_count_;
  return Status::Ok();
}

}  // namespace miniraid

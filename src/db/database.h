#ifndef MINIRAID_DB_DATABASE_H_
#define MINIRAID_DB_DATABASE_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace miniraid {

/// State of one local copy of a data item. `version` is the id of the last
/// committed transaction that wrote the item (0 = initial state). Because
/// transactions execute serially and ids are assigned in submission order,
/// versions are monotone, identical versions imply identical values, and
/// version comparison orders copies by freshness (used by the copier
/// machinery and the quorum baseline).
struct ItemState {
  Value value = 0;
  Version version = 0;

  friend bool operator==(const ItemState&, const ItemState&) = default;
};

/// One site's copy of the database: the frequently-referenced hot set of
/// `n_items` logical items, kept in memory (the paper factored out data
/// I/O; copies lived "within the virtual memory of each process", §1.2).
/// Supports partial replication for the control-transaction-type-3
/// extension: a site may hold copies of only a subset of the items.
class Database {
 public:
  /// Fully replicated database over items [0, n_items).
  explicit Database(uint32_t n_items);

  /// Partially replicated: holds only the items in `held` (ids must be
  /// < n_items).
  Database(uint32_t n_items, const std::vector<ItemId>& held);

  uint32_t n_items() const { return static_cast<uint32_t>(items_.size()); }

  /// True if this site stores a copy of `item`.
  bool Holds(ItemId item) const {
    return item < items_.size() && items_[item].has_value();
  }

  /// Number of items this site holds a copy of.
  uint32_t held_count() const { return held_count_; }

  /// Reads the local copy. kNotFound if this site holds no copy.
  [[nodiscard]] Result<ItemState> Read(ItemId item) const;

  /// Applies a committed write: installs `value` and advances the version
  /// to `writer` (the committing transaction's id). kNotFound if the site
  /// holds no copy; kInvalidArgument if the version would regress.
  [[nodiscard]] Status CommitWrite(ItemId item, Value value, TxnId writer);

  /// Installs a complete copy obtained from another site (copier
  /// transaction / control type 3). Creates the local copy if absent.
  /// Rejects regressions: an incoming copy older than the local one is a
  /// protocol error.
  [[nodiscard]] Status InstallCopy(ItemId item, const ItemState& copy);

  /// Drops the local copy (space reclamation after a type-3 backup copy is
  /// no longer needed). kNotFound if not held.
  [[nodiscard]] Status DropCopy(ItemId item);

  /// Full snapshot (unheld items are nullopt) — used by tests and oracles.
  const std::vector<std::optional<ItemState>>& snapshot() const {
    return items_;
  }

 private:
  /// Value type: each Database is a site's local store and is only touched
  /// from that site's context (loop thread in real mode, the driving thread
  /// in simulation); the class itself carries no synchronization.
  std::vector<std::optional<ItemState>> items_ MR_CONTEXT_CONFINED(any);
  uint32_t held_count_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_DB_DATABASE_H_

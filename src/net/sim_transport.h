#ifndef MINIRAID_NET_SIM_TRANSPORT_H_
#define MINIRAID_NET_SIM_TRANSPORT_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/faults.h"
#include "net/transport.h"
#include "sim/sim_runtime.h"

namespace miniraid {

struct SimTransportOptions {
  /// One-way delivery delay. The paper measured "the average time for a
  /// single communication from one site to another site ... as nine
  /// milliseconds" (§2.1); that figure is the default.
  Duration message_latency = Milliseconds(9);

  /// Fault injection (loss, duplication, duplicate delay) shared with the
  /// inproc and TCP transports. Reliability is the paper's assumption, so
  /// the default injects nothing.
  TransportFaults faults;

  /// Uniform extra delay in [0, latency_jitter] added per message
  /// (deterministic from jitter_seed). Delivery stays FIFO per sender ->
  /// receiver pair — the paper's in-order assumption — by clamping each
  /// arrival to after the pair's previous one.
  Duration latency_jitter = 0;
  uint64_t jitter_seed = 1;

  /// Legacy aliases, merged into `faults` at construction (either spelling
  /// works; `faults` wins if both are set).
  std::function<bool(const Message&)> drop_filter;
  double duplicate_probability = 0.0;
};

/// Transport over the discrete-event runtime: Send schedules OnMessage at
/// the receiver `message_latency` after the (virtual) moment of sending.
/// Delivery is per-pair FIFO and fully deterministic. Also counts messages,
/// which the overhead experiments report.
///
/// Like SimCluster, deliberately unannotated: under the simulator every
/// execution context shares one thread, so MR_RUNS_ON has no true name for
/// these methods. Callers are checked against the Transport base contract.
class SimTransport : public Transport {
 public:
  SimTransport(SimRuntime* sim, const SimTransportOptions& options);

  /// Registers the handler that receives messages addressed to `site`.
  void Register(SiteId site, MessageHandler* handler);

  Status Send(const Message& msg) override;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  /// Resets the message counters (used between measurement windows).
  void ResetCounters();

 private:
  SimRuntime* sim_;
  SimTransportOptions options_;
  FaultInjector injector_;
  // Simulation-only transport: senders and receivers are SimRuntime events,
  // all executed on the driving (client) thread — the loop/managing callers
  // in the call graph never run concurrently with it.
  std::unordered_map<SiteId, MessageHandler*> handlers_
      MR_CONTEXT_CONFINED(client);
  Rng jitter_rng_;
  std::map<std::pair<SiteId, SiteId>, TimePoint> last_arrival_;
  uint64_t messages_sent_ MR_CONTEXT_CONFINED(client) = 0;
  uint64_t messages_dropped_ MR_CONTEXT_CONFINED(client) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_SIM_TRANSPORT_H_

#include "net/event_loop.h"

#include <memory>

#include "common/logging.h"

namespace miniraid {

EventLoop::EventLoop() : thread_([this] { Run(); }) {}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

TimerId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  const auto when =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay);
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return kInvalidTimer;
    id = next_timer_id_++;
    timers_.emplace(when, Timer{id, std::move(fn)});
  }
  cv_.notify_one();
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  if (id == kInvalidTimer) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return;
    }
  }
  // Not found: it may be the timer currently executing; mark it so a
  // re-entrant cancel is still a no-op afterwards.
  cancelled_.insert(id);
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined.
    }
    stopping_ = true;
  }
  cv_.notify_one();
  MR_CHECK(!IsCurrentThread()) << "EventLoop::Stop from the loop thread";
  if (thread_.joinable()) thread_.join();
}

void EventLoop::PostAndWait(std::function<void()> task) {
  MR_CHECK(!IsCurrentThread()) << "PostAndWait from the loop thread";
  // The wait state is shared (not stack-captured) and notified while the
  // lock is held: the caller may time out or wake the instant `done` is
  // observable, after which its frame is gone.
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto state = std::make_shared<WaitState>();
  Post([state, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
    state->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(state->mu);
  // If the loop is stopping the task may never run; bound the wait so a
  // shutdown race cannot hang the caller forever.
  state->cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return state->done; });
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) return;
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (!timers_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      auto first = timers_.begin();
      if (first->first <= now) {
        Timer timer = std::move(first->second);
        timers_.erase(first);
        if (cancelled_.erase(timer.id)) continue;
        lock.unlock();
        timer.fn();
        lock.lock();
        continue;
      }
      cv_.wait_until(lock, first->first);
      continue;
    }
    cv_.wait(lock);
  }
}

void ThreadSiteRuntime::ChargeCpu(Duration amount) {
  if (cpu_scale_ <= 0.0) return;
  const Duration target = static_cast<Duration>(double(amount) * cpu_scale_);
  const TimePoint start = clock_->Now();
  while (clock_->Now() - start < target) {
    // Busy spin: emulates the modelled CPU cost in wall-clock time.
  }
}

}  // namespace miniraid

#include "net/event_loop.h"

#include <memory>

#include "common/logging.h"

namespace miniraid {

EventLoop::EventLoop() : thread_([this] { Run(); }) {}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Post(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

TimerId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  const auto when =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay);
  TimerId id;
  {
    MutexLock lock(mu_);
    if (stopping_) return kInvalidTimer;
    id = next_timer_id_++;
    timers_.emplace(when, Timer{id, std::move(fn)});
  }
  cv_.NotifyOne();
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  if (id == kInvalidTimer) return;
  MutexLock lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return;
    }
  }
  // Not found: it may be the timer currently executing; mark it so a
  // re-entrant cancel is still a no-op afterwards.
  cancelled_.insert(id);
}

void EventLoop::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyOne();
  MR_CHECK(!IsCurrentThread()) << "EventLoop::Stop from the loop thread";
  if (thread_.joinable()) thread_.join();
}

void EventLoop::PostAndWait(std::function<void()> task) {
  MR_CHECK(!IsCurrentThread()) << "PostAndWait from the loop thread";
  // The wait state is shared (not stack-captured): the caller may time out
  // or wake the instant `done` is observable, after which its frame is
  // gone; the shared_ptr keeps the state alive for the notifying side.
  struct WaitState {
    Mutex mu;
    CondVar cv;
    bool done MR_GUARDED_BY(mu) = false;
  };
  auto state = std::make_shared<WaitState>();
  Post([state, task = std::move(task)] {
    task();
    {
      MutexLock lock(state->mu);
      state->done = true;
    }
    state->cv.NotifyOne();
  });
  // If the loop is stopping the task may never run; bound the wait so a
  // shutdown race cannot hang the caller forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  MutexLock lock(state->mu);
  while (!state->done) {
    if (state->cv.WaitUntil(state->mu, deadline)) break;
  }
}

void EventLoop::Run() {
  mu_.Lock();
  while (true) {
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      // Tasks and timers run with mu_ released: it is the innermost lock
      // (see the lock-order annotations on the transport mutexes), so
      // loop-thread code is free to call Transport::Send and the like.
      mu_.Unlock();
      task();
      mu_.Lock();
      continue;
    }
    if (!timers_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      auto first = timers_.begin();
      if (first->first <= now) {
        Timer timer = std::move(first->second);
        timers_.erase(first);
        if (cancelled_.erase(timer.id)) continue;
        mu_.Unlock();
        timer.fn();
        mu_.Lock();
        continue;
      }
      // The loop's own idle wait IS the loop context; there is nothing to
      // block. miniraid-lint: allow(blocking-call)
      cv_.WaitUntil(mu_, first->first);
      continue;
    }
    // Same idle wait, no-timer arm. miniraid-lint: allow(blocking-call)
    cv_.Wait(mu_);
  }
}

void ThreadSiteRuntime::ChargeCpu(Duration amount) {
  if (cpu_scale_ <= 0.0) return;
  const Duration target = static_cast<Duration>(double(amount) * cpu_scale_);
  const TimePoint start = clock_->Now();
  while (clock_->Now() - start < target) {
    // Busy spin: emulates the modelled CPU cost in wall-clock time.
  }
}

}  // namespace miniraid

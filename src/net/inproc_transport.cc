#include "net/inproc_transport.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

InProcTransport::InProcTransport(const InProcTransportOptions& options)
    : options_(options) {}

void InProcTransport::Register(SiteId site, EventLoop* loop,
                               MessageHandler* handler) {
  endpoints_[site] = Endpoint{loop, handler};
}

Status InProcTransport::Send(const Message& msg) {
  auto it = endpoints_.find(msg.to);
  if (it == endpoints_.end()) {
    return Status::InvalidArgument(
        StrFormat("no endpoint registered for site %u", msg.to));
  }
  const Endpoint endpoint = it->second;
  std::function<void()> deliver;
  if (options_.codec_roundtrip) {
    std::vector<uint8_t> wire = EncodeMessage(msg);
    deliver = [endpoint, wire = std::move(wire)] {
      Result<Message> decoded = DecodeMessage(wire);
      MR_CHECK(decoded.ok()) << "in-process codec round-trip failed: "
                             << decoded.status().ToString();
      endpoint.handler->OnMessage(*decoded);
    };
  } else {
    deliver = [endpoint, msg] { endpoint.handler->OnMessage(msg); };
  }
  if (options_.message_latency > 0) {
    endpoint.loop->ScheduleAfter(options_.message_latency, std::move(deliver));
  } else {
    endpoint.loop->Post(std::move(deliver));
  }
  messages_sent_.fetch_add(1);
  return Status::Ok();
}

}  // namespace miniraid

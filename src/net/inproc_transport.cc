#include "net/inproc_transport.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

InProcTransport::InProcTransport(const InProcTransportOptions& options)
    : options_(options), injector_(options.faults) {}

void InProcTransport::Register(SiteId site, EventLoop* loop,
                               MessageHandler* handler) {
  endpoints_[site] = Endpoint{loop, handler};
}

Status InProcTransport::Send(const Message& msg) {
  auto it = endpoints_.find(msg.to);
  if (it == endpoints_.end()) {
    return Status::InvalidArgument(
        StrFormat("no endpoint registered for site %u", msg.to));
  }
  const Endpoint endpoint = it->second;
  bool duplicate = false;
  {
    // Draw fault decisions under the lock, deliver outside it.
    MutexLock lock(faults_mu_);
    if (injector_.ShouldDrop(msg)) {
      messages_dropped_.fetch_add(1);
      return Status::Ok();
    }
    duplicate = injector_.ShouldDuplicate();
  }
  std::function<void()> deliver;
  if (options_.codec_roundtrip) {
    // Encode into pooled storage; the destination loop returns the buffer
    // to the pool right after decoding, so the frame's heap allocation is
    // amortized across messages instead of paid per Send.
    Encoder enc = pool_->Acquire();
    EncodeMessageInto(msg, enc);
    deliver = [endpoint, pool = pool_, wire = enc.TakeBuffer()]() mutable {
      Result<Message> decoded = DecodeMessage(wire);
      MR_CHECK(decoded.ok()) << "in-process codec round-trip failed: "
                             << decoded.status().ToString();
      pool->Release(std::move(wire));
      endpoint.handler->OnMessage(*decoded);
    };
  } else {
    deliver = [endpoint, msg] { endpoint.handler->OnMessage(msg); };
  }
  std::function<void()> deliver_copy;
  if (duplicate) deliver_copy = deliver;
  if (options_.message_latency > 0) {
    endpoint.loop->ScheduleAfter(options_.message_latency, std::move(deliver));
  } else {
    endpoint.loop->Post(std::move(deliver));
  }
  if (duplicate) {
    // Enqueued after the original so the copy never arrives first.
    Duration dup_latency =
        options_.message_latency + options_.faults.duplicate_delay;
    if (dup_latency > 0) {
      endpoint.loop->ScheduleAfter(dup_latency, std::move(deliver_copy));
    } else {
      endpoint.loop->Post(std::move(deliver_copy));
    }
  }
  messages_sent_.fetch_add(1);
  return Status::Ok();
}

}  // namespace miniraid

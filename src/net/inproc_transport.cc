#include "net/inproc_transport.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

InProcTransport::InProcTransport(const InProcTransportOptions& options)
    : options_(options) {}

void InProcTransport::Register(SiteId site, EventLoop* loop,
                               MessageHandler* handler) {
  endpoints_[site] = Endpoint{loop, handler};
}

Status InProcTransport::Send(const Message& msg) {
  auto it = endpoints_.find(msg.to);
  if (it == endpoints_.end()) {
    return Status::InvalidArgument(
        StrFormat("no endpoint registered for site %u", msg.to));
  }
  const Endpoint endpoint = it->second;
  if (options_.codec_roundtrip) {
    std::vector<uint8_t> wire = EncodeMessage(msg);
    endpoint.loop->Post([endpoint, wire = std::move(wire)] {
      Result<Message> decoded = DecodeMessage(wire);
      MR_CHECK(decoded.ok()) << "in-process codec round-trip failed: "
                             << decoded.status().ToString();
      endpoint.handler->OnMessage(*decoded);
    });
  } else {
    endpoint.loop->Post([endpoint, msg] { endpoint.handler->OnMessage(msg); });
  }
  return Status::Ok();
}

}  // namespace miniraid

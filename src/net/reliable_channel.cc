#include "net/reliable_channel.h"

#include <algorithm>
#include <utility>

namespace miniraid {

ReliableChannel::ReliableChannel(SiteId self, Transport* inner,
                                 SiteRuntime* runtime, MessageHandler* upper,
                                 const ReliableChannelOptions& options)
    : self_(self),
      inner_(inner),
      runtime_(runtime),
      upper_(upper),
      options_(options),
      jitter_rng_(options.seed) {}

ReliableChannel::~ReliableChannel() {
  for (auto& [peer, state] : peers_) {
    (void)peer;
    if (state.send.timer != kInvalidTimer) {
      runtime_->CancelTimer(state.send.timer);
    }
  }
}

Status ReliableChannel::Send(const Message& msg) {
  if (!options_.enabled) return inner_->Send(msg);
  PeerState& peer = Peer(msg.to);
  Message stamped = msg;
  stamped.seq = peer.send.next_seq++;
  ++counters_.data_sent;
  SendState::Pending pending;
  pending.msg = stamped;
  pending.due = runtime_->Now() + RtoFor(0);
  peer.send.unacked.emplace(stamped.seq, std::move(pending));
  SendRaw(msg.to, std::move(stamped));
  ArmTimer(msg.to);
  return Status::Ok();
}

void ReliableChannel::OnMessage(const Message& msg) {
  if (!options_.enabled) {
    upper_->OnMessage(msg);
    return;
  }
  HandleAck(msg.from, msg.ack);
  if (msg.type == MsgType::kChannelAck) return;  // header-only, never data
  if (msg.seq == 0) {
    // Unreliable datagram from a channel-less sender; pass straight up.
    upper_->OnMessage(msg);
    return;
  }
  PeerState& peer = Peer(msg.from);
  uint64_t& frontier = peer.send.deliver_frontier;
  if (msg.seq <= frontier || peer.recv.buffered.count(msg.seq) != 0) {
    // Retransmission or transport-level duplicate: our ack was lost or is
    // in flight. Suppress, but re-ack so the sender can stop.
    ++counters_.dup_suppressed;
    SendStandaloneAck(msg.from);
    return;
  }
  if (msg.seq != frontier + 1) {
    // Ahead of the gap left by a dropped message; hold it so the upper
    // layer keeps seeing per-pair FIFO order.
    ++counters_.out_of_order_buffered;
    peer.recv.buffered.emplace(msg.seq, msg);
    SendStandaloneAck(msg.from);
    return;
  }
  // In-sequence: deliver it and everything it unblocks, then ack the new
  // frontier once.
  frontier = msg.seq;
  ++counters_.delivered;
  upper_->OnMessage(msg);
  auto it = peer.recv.buffered.begin();
  while (it != peer.recv.buffered.end() && it->first == frontier + 1) {
    frontier = it->first;
    Message next = std::move(it->second);
    it = peer.recv.buffered.erase(it);
    ++counters_.delivered;
    upper_->OnMessage(next);
  }
  SendStandaloneAck(msg.from);
}

void ReliableChannel::SendRaw(SiteId peer_id, Message msg) {
  msg.ack = Peer(peer_id).send.deliver_frontier;
  (void)inner_->Send(msg);
}

void ReliableChannel::HandleAck(SiteId peer_id, uint64_t ack) {
  if (ack == 0) return;
  PeerState& peer = Peer(peer_id);
  auto& unacked = peer.send.unacked;
  bool advanced = false;
  while (!unacked.empty() && unacked.begin()->first <= ack) {
    unacked.erase(unacked.begin());
    ++counters_.acked;
    advanced = true;
  }
  if (advanced) ArmTimer(peer_id);
}

void ReliableChannel::ArmTimer(SiteId peer_id) {
  SendState& send = Peer(peer_id).send;
  if (send.timer != kInvalidTimer) {
    runtime_->CancelTimer(send.timer);
    send.timer = kInvalidTimer;
  }
  if (send.unacked.empty()) return;
  TimePoint earliest = send.unacked.begin()->second.due;
  for (const auto& [seq, pending] : send.unacked) {
    (void)seq;
    earliest = std::min(earliest, pending.due);
  }
  Duration delay = std::max<Duration>(0, earliest - runtime_->Now());
  send.timer = runtime_->ScheduleAfter(
      delay, [this, peer_id] { OnRetransmitTimer(peer_id); });
}

void ReliableChannel::OnRetransmitTimer(SiteId peer_id) {
  SendState& send = Peer(peer_id).send;
  send.timer = kInvalidTimer;
  const TimePoint now = runtime_->Now();
  auto it = send.unacked.begin();
  while (it != send.unacked.end()) {
    SendState::Pending& pending = it->second;
    if (pending.due > now) {
      ++it;
      continue;
    }
    if (pending.attempts >= options_.max_retransmits) {
      // Give up; the protocol layer's own timeouts take over from here.
      ++counters_.abandoned;
      it = send.unacked.erase(it);
      continue;
    }
    ++pending.attempts;
    ++counters_.retransmits;
    pending.due = now + RtoFor(pending.attempts);
    SendRaw(peer_id, pending.msg);
    ++it;
  }
  ArmTimer(peer_id);
}

void ReliableChannel::SendStandaloneAck(SiteId peer_id) {
  ++counters_.acks_sent;
  Message ack = MakeMessage(self_, peer_id, ChannelAckArgs{});
  SendRaw(peer_id, std::move(ack));  // seq stays 0: acks are not acked
}

Duration ReliableChannel::RtoFor(uint32_t attempts) {
  double rto = double(options_.initial_rto);
  for (uint32_t i = 0; i < attempts; ++i) {
    rto *= options_.backoff;
    if (rto >= double(options_.max_rto)) break;
  }
  Duration base = std::min<Duration>(Duration(rto), options_.max_rto);
  Duration jitter =
      options_.rto_jitter > 0
          ? Duration(jitter_rng_.NextBounded(uint64_t(options_.rto_jitter) + 1))
          : 0;
  return base + jitter;
}

}  // namespace miniraid

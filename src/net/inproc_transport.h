#ifndef MINIRAID_NET_INPROC_TRANSPORT_H_
#define MINIRAID_NET_INPROC_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/faults.h"
#include "net/transport.h"

namespace miniraid {

struct InProcTransportOptions {
  /// When true, every message is encoded and decoded through the wire codec
  /// even though delivery stays in-process — messages are "passed by value"
  /// exactly as over a socket, and the codec is exercised on every run.
  bool codec_roundtrip = true;

  /// One-way delivery delay, emulating the inter-site link latency the
  /// simulator models (SimTransportOptions::message_latency; the paper
  /// measured 9 ms per message). 0 = deliver as soon as the destination
  /// loop gets to it. Timer-based: no thread ever blocks, and per-pair
  /// FIFO is preserved (equal deadlines fire in insertion order).
  Duration message_latency = 0;

  /// Fault injection (loss, duplication, duplicate delay) shared with the
  /// sim and TCP transports; defaults inject nothing. The decision streams
  /// are deterministic per seed, but which Send draws which decision
  /// depends on thread interleaving on this backend.
  TransportFaults faults;
};

/// Real message passing between sites running as threads in one process —
/// the closest analogue of the paper's "database sites ... implemented as
/// Unix processes (on one processor with one process per site)". Delivery
/// posts to the destination site's EventLoop; per-pair FIFO follows from
/// the sender running on one thread and Post being order-preserving.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(
      const InProcTransportOptions& options = InProcTransportOptions{});

  /// Registers `site`'s loop and handler. Not thread-safe against Send;
  /// register all sites before starting traffic.
  MR_RUNS_ON(client)
  void Register(SiteId site, EventLoop* loop, MessageHandler* handler);

  MR_RUNS_ON(any) Status Send(const Message& msg) override;

  /// Messages accepted for delivery so far. Safe from any thread.
  MR_RUNS_ON(any) uint64_t messages_sent() const {
    return messages_sent_.load();
  }

  /// Messages dropped by fault injection so far. Safe from any thread.
  MR_RUNS_ON(any) uint64_t messages_dropped() const {
    return messages_dropped_.load();
  }

 private:
  struct Endpoint {
    EventLoop* loop;
    MessageHandler* handler;
  };

  InProcTransportOptions options_;
  /// Populated by Register() during cluster wiring, before any site thread
  /// starts; steady-state Send() from loop/managing threads only reads it.
  /// The phases cannot overlap, so no lock is needed on the map itself.
  std::unordered_map<SiteId, Endpoint> endpoints_ MR_CONTEXT_CONFINED(client);
  /// Send runs on every site's loop thread, so fault decisions (which
  /// mutate RNG state) are drawn under a short lock; delivery itself never
  /// happens while the lock is held.
  Mutex faults_mu_;
  FaultInjector injector_ MR_GUARDED_BY(faults_mu_);
  /// Frame buffers for the codec-roundtrip path cycle sender -> receiver ->
  /// pool: the destination loop returns each buffer after decoding. Held by
  /// shared_ptr because in-flight deliver closures may outlive the
  /// transport during teardown.
  std::shared_ptr<SharedFramePool> pool_ =
      std::make_shared<SharedFramePool>();
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> messages_dropped_{0};
};

}  // namespace miniraid

#endif  // MINIRAID_NET_INPROC_TRANSPORT_H_

#ifndef MINIRAID_NET_INPROC_TRANSPORT_H_
#define MINIRAID_NET_INPROC_TRANSPORT_H_

#include <mutex>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/transport.h"

namespace miniraid {

struct InProcTransportOptions {
  /// When true, every message is encoded and decoded through the wire codec
  /// even though delivery stays in-process — messages are "passed by value"
  /// exactly as over a socket, and the codec is exercised on every run.
  bool codec_roundtrip = true;
};

/// Real message passing between sites running as threads in one process —
/// the closest analogue of the paper's "database sites ... implemented as
/// Unix processes (on one processor with one process per site)". Delivery
/// posts to the destination site's EventLoop; per-pair FIFO follows from
/// the sender running on one thread and Post being order-preserving.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(
      const InProcTransportOptions& options = InProcTransportOptions{});

  /// Registers `site`'s loop and handler. Not thread-safe against Send;
  /// register all sites before starting traffic.
  void Register(SiteId site, EventLoop* loop, MessageHandler* handler);

  Status Send(const Message& msg) override;

 private:
  struct Endpoint {
    EventLoop* loop;
    MessageHandler* handler;
  };

  InProcTransportOptions options_;
  std::unordered_map<SiteId, Endpoint> endpoints_;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_INPROC_TRANSPORT_H_

#ifndef MINIRAID_NET_RELIABLE_CHANNEL_H_
#define MINIRAID_NET_RELIABLE_CHANNEL_H_

#include <map>

#include "common/rng.h"
#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "metrics/channel_stats.h"
#include "net/transport.h"

namespace miniraid {

struct ReliableChannelOptions {
  /// Master switch. Off by default: the stack then behaves exactly as
  /// before this layer existed (messages travel with seq = 0 and no acks),
  /// which is what the paper's reliable-network experiments assume.
  bool enabled = false;

  /// Retransmission timeout for the first re-send, then multiplied by
  /// `backoff` per attempt up to `max_rto`. A uniform jitter in
  /// [0, rto_jitter] is added to every deadline so synchronized senders
  /// decorrelate instead of retransmitting in lockstep.
  Duration initial_rto = Milliseconds(100);
  Duration max_rto = Seconds(2);
  double backoff = 2.0;
  Duration rto_jitter = Milliseconds(20);

  /// Retransmissions per message before the channel gives up and drops it
  /// (at-least-once, not exactly-always: a partitioned peer must not pin
  /// memory and timers forever). The protocol's own timeouts — coordinator
  /// phase timeouts, participant patience, the client timeout — own the
  /// failure from there.
  uint32_t max_retransmits = 8;

  /// Seed for the retransmission jitter stream.
  uint64_t seed = 1;
};

/// At-least-once delivery with receiver-side dedup over any Transport —
/// the repo's answer to dropping the paper's "no messages were lost"
/// assumption (see docs/PROTOCOL.md, reliable delivery).
///
/// One channel instance fronts one endpoint (site or managing site): it is
/// the Transport the endpoint sends through, and the MessageHandler the
/// inner transport delivers to. Per destination it assigns sequence
/// numbers (from 1), buffers unacknowledged sends, and retransmits with
/// exponential backoff + jitter until the peer's cumulative ack covers
/// them or max_retransmits is exhausted. Per source it delivers in
/// sequence order exactly once — duplicates (retransmissions or
/// transport-injected copies) are suppressed and re-acked, gaps are
/// buffered — so the upper layer keeps the per-pair FIFO ordering the
/// protocol was built on (paper assumption 1), now also under loss.
///
/// Acks are cumulative and piggyback on every outbound data message; a
/// standalone kChannelAck is emitted when data arrives and nothing is
/// going the other way. Acks themselves travel with seq = 0 and are never
/// acked or retransmitted (the next data arrival re-triggers one).
///
/// Retransmissions re-enter the inner transport's Send per attempt; the
/// transports encode through a recycled FramePool buffer (see
/// SharedFramePool in transport.h), so a retry storm re-sends frames
/// without allocating one buffer per attempt.
///
/// The channel is modelled below the protocol engine (kernel/NIC level):
/// a simulated Site crash does not reset channel state, so sequence
/// numbers stay continuous across failure and recovery, and messages to a
/// down site are still acked at the channel and then ignored by the site —
/// exactly how a dead process behind a live kernel behaves.
///
/// Threading: all calls (Send, OnMessage, timers) must run in the owning
/// endpoint's execution context, like every other per-site object. Like
/// SiteRuntime this is per-instance confinement, which MR_RUNS_ON cannot
/// name — the methods carry MR_RUNS_ON(any), recording only that they are
/// confinement- and blocking-clean wherever the instance lives.
class ReliableChannel : public Transport, public MessageHandler {
 public:
  ReliableChannel(SiteId self, Transport* inner, SiteRuntime* runtime,
                  MessageHandler* upper, const ReliableChannelOptions& options);
  ~ReliableChannel() override;

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Late wiring for construction cycles (channel before site); must be
  /// set before any message flows.
  MR_RUNS_ON(any) void set_upper(MessageHandler* upper) { upper_ = upper; }

  /// Outbound path: stamps seq/ack, records the message for retransmission,
  /// and forwards to the inner transport.
  MR_RUNS_ON(any) Status Send(const Message& msg) override;

  /// Inbound path: ack processing, dedup/reorder, in-order delivery to the
  /// upper handler.
  MR_RUNS_ON(any) void OnMessage(const Message& msg) override;

  MR_RUNS_ON(any) const ChannelCounters& counters() const {
    return counters_;
  }

 private:
  /// Sender-side state for one destination.
  struct SendState {
    uint64_t next_seq = 1;
    /// Highest in-order seq delivered FROM this peer (the value we ack).
    uint64_t deliver_frontier = 0;
    /// Unacknowledged sends, keyed by seq, with per-message attempt count.
    struct Pending {
      Message msg;
      uint32_t attempts = 0;  // retransmissions so far
      TimePoint due = 0;
    };
    std::map<uint64_t, Pending> unacked;
    TimerId timer = kInvalidTimer;
  };

  /// Receiver-side state for one source (held inside the same per-peer
  /// record; a peer is both a source and a destination).
  struct RecvState {
    /// Out-of-order arrivals waiting for the gap to fill.
    std::map<uint64_t, Message> buffered;
  };

  struct PeerState {
    SendState send;
    RecvState recv;
  };

  PeerState& Peer(SiteId peer) { return peers_[peer]; }

  /// Forwards to the inner transport with the current cumulative ack
  /// stamped (retransmissions refresh it too).
  void SendRaw(SiteId peer, Message msg);

  /// Processes the cumulative ack carried by any inbound message.
  void HandleAck(SiteId peer, uint64_t ack);

  /// (Re)arms the per-destination retransmit timer for the earliest due
  /// pending message; cancels it when nothing is pending.
  void ArmTimer(SiteId peer);
  void OnRetransmitTimer(SiteId peer);

  /// Emits a standalone ack to `peer` for its current frontier.
  void SendStandaloneAck(SiteId peer);

  Duration RtoFor(uint32_t attempts);

  const SiteId self_;
  Transport* const inner_;
  SiteRuntime* const runtime_;
  /// Channel state lives in its endpoint's loop context (see cluster.h):
  /// OnMessage, timers, and Send all run on that loop thread. upper_ is
  /// additionally written once by set_upper() during wiring, before the loop
  /// starts delivering — the phases cannot overlap.
  MessageHandler* upper_ MR_CONTEXT_CONFINED(loop);
  const ReliableChannelOptions options_;
  Rng jitter_rng_;
  std::map<SiteId, PeerState> peers_;
  ChannelCounters counters_ MR_CONTEXT_CONFINED(loop);
};

}  // namespace miniraid

#endif  // MINIRAID_NET_RELIABLE_CHANNEL_H_

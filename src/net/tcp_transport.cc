#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

/// Writes exactly `size` bytes; retries on partial writes and EINTR.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // Deliberate exception: the TCP backend writes frames inline on the
    // sender's thread (including loop threads). Localhost writes fit the
    // socket buffer, so this "blocks" only under extreme backpressure —
    // accepted in exchange for not running a writer thread per peer.
    // miniraid-lint: allow(blocking-call)
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `size` bytes; returns NotFound on orderly EOF at a frame
/// boundary start, IoError otherwise.
Status ReadAll(int fd, uint8_t* data, size_t size) {
  size_t read = 0;
  while (read < size) {
    const ssize_t n = ::recv(fd, data + read, size - read, 0);
    if (n == 0) {
      return read == 0 ? Status::NotFound("connection closed")
                       : Status::IoError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("recv: %s", std::strerror(errno)));
    }
    read += static_cast<size_t>(n);
  }
  return Status::Ok();
}

constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB sanity bound

}  // namespace

TcpTransport::TcpTransport(SiteId self, std::map<SiteId, uint16_t> peers,
                           EventLoop* loop, MessageHandler* handler,
                           const TcpTransportOptions& options)
    : self_(self),
      peers_(std::move(peers)),
      loop_(loop),
      handler_(handler),
      options_(options),
      injector_(options.faults) {}

TcpTransport::~TcpTransport() { Stop(); }

Status TcpTransport::Start() {
  if (handler_ == nullptr) {
    return Status::FailedPrecondition("TcpTransport started without handler");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peers_.at(self_));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(StrFormat("bind port %u: %s", peers_.at(self_),
                                     std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpTransport::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the accept thread with shutdown(), but only close the fd after
  // joining it: closing first would let the kernel reuse the descriptor
  // number while AcceptLoop may still be entering accept() on it.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  {
    MutexLock lock(conn_mu_);
    for (auto& [peer, fd] : out_fds_) ::close(fd);
    out_fds_.clear();
  }
  std::vector<std::thread> readers;
  {
    MutexLock lock(readers_mu_);
    for (int fd : in_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(reader_threads_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  {
    MutexLock lock(readers_mu_);
    for (int fd : in_fds_) ::close(fd);
    in_fds_.clear();
  }
}

void TcpTransport::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed (Stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(readers_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    in_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { ReadLoop(fd); });
  }
}

void TcpTransport::ReadLoop(int fd) {
  while (!stopping_.load()) {
    uint8_t header[4];
    Status status = ReadAll(fd, header, sizeof(header));
    if (!status.ok()) return;
    const uint32_t length = uint32_t{header[0]} | (uint32_t{header[1]} << 8) |
                            (uint32_t{header[2]} << 16) |
                            (uint32_t{header[3]} << 24);
    if (length > kMaxFrameBytes) {
      MR_LOG(kError) << "site " << self_ << ": oversized frame (" << length
                     << " bytes); closing connection";
      return;
    }
    std::vector<uint8_t> body(length);
    status = ReadAll(fd, body.data(), body.size());
    if (!status.ok()) return;
    Result<Message> decoded = DecodeMessage(body);
    if (!decoded.ok()) {
      MR_LOG(kError) << "site " << self_ << ": undecodable frame: "
                     << decoded.status().ToString();
      return;
    }
    messages_received_.fetch_add(1);
    MessageHandler* handler = handler_;
    loop_->Post(
        [handler, msg = std::move(*decoded)] { handler->OnMessage(msg); });
  }
}

Status TcpTransport::ConnectTo(SiteId peer, int* fd_out) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return Status::InvalidArgument(StrFormat("unknown peer site %u", peer));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second);
  ::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr);
  // Same deliberate exception as WriteAll: the lazy localhost connect on
  // first send is accepted inline. miniraid-lint: allow(blocking-call)
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(StrFormat("connect to site %u port %u: %s", peer,
                                     it->second, std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *fd_out = fd;
  return Status::Ok();
}

Status TcpTransport::SendFrame(SiteId to, const std::vector<uint8_t>& body) {
  if (stopping_.load()) return Status::FailedPrecondition("transport stopped");
  const uint32_t length = static_cast<uint32_t>(body.size());
  uint8_t header[4] = {
      static_cast<uint8_t>(length), static_cast<uint8_t>(length >> 8),
      static_cast<uint8_t>(length >> 16), static_cast<uint8_t>(length >> 24)};

  MutexLock lock(conn_mu_);
  auto it = out_fds_.find(to);
  if (it == out_fds_.end()) {
    int fd = -1;
    MINIRAID_RETURN_IF_ERROR(ConnectTo(to, &fd));
    it = out_fds_.emplace(to, fd).first;
  }
  Status status = WriteAll(it->second, header, sizeof(header));
  if (status.ok()) status = WriteAll(it->second, body.data(), body.size());
  if (!status.ok()) {
    // Drop the broken connection; the next Send retries with a fresh one.
    ::close(it->second);
    out_fds_.erase(it);
    return status;
  }
  messages_sent_.fetch_add(1);
  return Status::Ok();
}

Status TcpTransport::Send(const Message& msg) {
  if (stopping_.load()) return Status::FailedPrecondition("transport stopped");
  bool duplicate = false;
  {
    MutexLock lock(faults_mu_);
    if (injector_.ShouldDrop(msg)) {
      messages_dropped_.fetch_add(1);
      return Status::Ok();
    }
    duplicate = injector_.ShouldDuplicate();
  }
  // Encode into pooled storage: the frame buffer cycles back to the pool
  // once the socket write consumed it, so repeated sends (and channel
  // retransmissions) reuse capacity instead of allocating per message.
  Encoder enc = pool_.Acquire();
  EncodeMessageInto(msg, enc);
  std::vector<uint8_t> body = enc.TakeBuffer();
  Status status = SendFrame(msg.to, body);
  if (!status.ok()) {
    pool_.Release(std::move(body));
    return status;
  }
  if (duplicate) {
    const Duration delay = options_.faults.duplicate_delay;
    if (delay > 0) {
      // The delayed copy owns the buffer; it returns it after the write.
      loop_->ScheduleAfter(
          delay, [this, to = msg.to, b = std::move(body)]() mutable {
            (void)SendFrame(to, b);  // stopping_ is re-checked inside
            pool_.Release(std::move(b));
          });
      return Status::Ok();
    }
    (void)SendFrame(msg.to, body);
  }
  pool_.Release(std::move(body));
  return Status::Ok();
}

uint16_t PickEphemeralBasePort() {
  // The pid keeps concurrently running test binaries apart; the counter
  // keeps multiple clusters within one process apart (each cluster uses a
  // contiguous run of ports, so stride by more than any plausible cluster
  // size).
  static std::atomic<uint32_t> next_cluster{0};
  const uint32_t slot = next_cluster.fetch_add(1);
  return static_cast<uint16_t>(
      20000 + (uint32_t(::getpid()) * 37 + slot * 128) % 20000);
}

}  // namespace miniraid

#ifndef MINIRAID_NET_FAULTS_H_
#define MINIRAID_NET_FAULTS_H_

#include <functional>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "msg/message.h"

namespace miniraid {

/// Fault model shared by every transport (sim, inproc, TCP): the same
/// struct injects loss, duplication, and duplicate delay on all three
/// backends, so a lossy-network experiment configured once runs anywhere.
/// The paper assumes a reliable network ("no messages were lost"); these
/// knobs deliberately break that assumption to exercise the reliable
/// channel and the protocol's retry machinery.
struct TransportFaults {
  /// Probability that a message is silently dropped.
  double drop_probability = 0.0;

  /// Probability that a message is delivered twice. The copy is scheduled
  /// `duplicate_delay` after the original (0 = immediately after), from an
  /// RNG stream separate from the latency jitter's, so enabling
  /// duplication never perturbs a same-seed run's original arrivals.
  double duplicate_probability = 0.0;
  Duration duplicate_delay = 0;

  /// Seed for the drop/duplicate decision streams (deterministic under the
  /// simulator; on the real backends determinism additionally depends on
  /// thread scheduling).
  uint64_t seed = 1;

  /// Optional targeted drop: return true to drop this message. Evaluated
  /// in addition to drop_probability (either one drops). Lets tests kill a
  /// specific protocol message while the probabilistic knobs stay off.
  std::function<bool(const Message&)> drop_filter;

  bool Any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           drop_filter != nullptr;
  }
};

/// Stateful fault decision maker: owns the deterministic RNG streams
/// behind a TransportFaults config. Not thread-safe — callers on
/// multi-threaded transports serialize access (a short lock around the
/// decision only, never around delivery).
class FaultInjector {
 public:
  explicit FaultInjector(const TransportFaults& faults)
      : faults_(faults),
        // Distinct SplitMix64-scrambled seeds give uncorrelated streams:
        // drop decisions never perturb duplicate decisions and vice versa.
        drop_rng_(faults.seed),
        duplicate_rng_(~faults.seed) {}

  /// True if this message should be dropped (filter first, then coin).
  bool ShouldDrop(const Message& msg) {
    if (faults_.drop_filter && faults_.drop_filter(msg)) {
      ++dropped_;
      return true;
    }
    if (faults_.drop_probability > 0.0 &&
        drop_rng_.NextBool(faults_.drop_probability)) {
      ++dropped_;
      return true;
    }
    return false;
  }

  /// True if a second copy of this message should be delivered.
  bool ShouldDuplicate() {
    if (faults_.duplicate_probability <= 0.0) return false;
    if (!duplicate_rng_.NextBool(faults_.duplicate_probability)) return false;
    ++duplicated_;
    return true;
  }

  const TransportFaults& faults() const { return faults_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }

 private:
  TransportFaults faults_;
  Rng drop_rng_;
  Rng duplicate_rng_;
  /// Value type: synchronization is the owning transport's job —
  /// SimTransport is single-threaded, InProcTransport declares its
  /// injector MR_GUARDED_BY(faults_mu_); the counters inherit that regime.
  uint64_t dropped_ MR_CONTEXT_CONFINED(any) = 0;
  uint64_t duplicated_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_FAULTS_H_

#ifndef MINIRAID_NET_EVENT_LOOP_H_
#define MINIRAID_NET_EVENT_LOOP_H_

#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <unordered_set>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/runtime.h"

namespace miniraid {

/// A single-threaded executor with timers: the real-time analogue of one
/// site's execution context. Tasks posted from any thread run in FIFO order
/// on the loop thread; timers fire on the loop thread too, so code running
/// inside the loop never needs locks (mirroring the simulator's contract).
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueues `task` to run on the loop thread. Safe from any thread.
  /// Tasks posted after Stop() are dropped.
  MR_RUNS_ON(any) void Post(std::function<void()> task);

  /// Runs `fn` on the loop thread after `delay`. Safe from any thread.
  MR_RUNS_ON(any) TimerId ScheduleAfter(Duration delay, std::function<void()> fn);

  /// Cancels a pending timer (no-op if it already fired). Safe from any
  /// thread, including the loop thread.
  MR_RUNS_ON(any) void CancelTimer(TimerId id);

  /// Stops the loop and joins the thread. Pending tasks/timers are dropped.
  /// Idempotent. Must not be called from the loop thread.
  MR_RUNS_ON(client) void Stop();

  MR_RUNS_ON(any) bool IsCurrentThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  /// Posts `task` and blocks until it has run (deadlocks if called from the
  /// loop thread; asserted).
  MR_RUNS_ON(client) void PostAndWait(std::function<void()> task);

  /// The queue mutex, public only so that other layers can name it in
  /// lock-order annotations (see TcpTransport: transport mutexes are
  /// MR_ACQUIRED_BEFORE this one, making it the innermost lock — tasks and
  /// timers always run with it released, so loop-thread code may take
  /// transport locks, never the reverse). Do not lock it outside EventLoop.
  Mutex mu_;

 private:
  struct Timer {
    TimerId id;
    std::function<void()> fn;
  };

  MR_RUNS_ON(loop) void Run();

  CondVar cv_;
  std::deque<std::function<void()>> tasks_ MR_GUARDED_BY(mu_);
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_
      MR_GUARDED_BY(mu_);
  std::unordered_set<TimerId> cancelled_ MR_GUARDED_BY(mu_);
  TimerId next_timer_id_ MR_GUARDED_BY(mu_) = 1;
  bool stopping_ MR_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// SiteRuntime over an EventLoop and a shared SteadyClock. ChargeCpu can
/// optionally busy-spin (scaled) to emulate modelled work in real time; by
/// default it is a no-op because real work has real cost.
class ThreadSiteRuntime : public SiteRuntime {
 public:
  /// `clock` must outlive this runtime. `cpu_scale` multiplies ChargeCpu
  /// durations into actual spinning (0 disables).
  ThreadSiteRuntime(EventLoop* loop, const Clock* clock,
                    double cpu_scale = 0.0)
      : loop_(loop), clock_(clock), cpu_scale_(cpu_scale) {}

  MR_RUNS_ON(any) TimePoint Now() const override { return clock_->Now(); }

  MR_RUNS_ON(any)
  TimerId ScheduleAfter(Duration delay, std::function<void()> fn) override {
    return loop_->ScheduleAfter(delay, std::move(fn));
  }

  MR_RUNS_ON(any) void CancelTimer(TimerId id) override { loop_->CancelTimer(id); }

  MR_RUNS_ON(any) void ChargeCpu(Duration amount) override;

  MR_RUNS_ON(any) EventLoop* loop() { return loop_; }

 private:
  EventLoop* loop_;
  const Clock* clock_;
  double cpu_scale_;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_EVENT_LOOP_H_

#ifndef MINIRAID_NET_PARTITION_H_
#define MINIRAID_NET_PARTITION_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "msg/message.h"

namespace miniraid {

/// Network partition injection for the simulator: messages between sites in
/// different groups are silently dropped, exactly how a partition looks to
/// the protocol (the paper's fail-locks "represent the fact that a copy ...
/// is being updated while some other copies are unavailable due to site
/// failure or network partitioning", §1.1 — but the ROWAA protocol itself
/// assumes partitions do not happen; see bench_partition_split_brain for
/// what goes wrong when they do).
///
/// Sites not assigned to any group (e.g. the managing site's control plane)
/// can talk to everyone.
class PartitionController {
 public:
  /// Splits the network into the given groups. Replaces any previous split.
  void Split(const std::vector<std::vector<SiteId>>& groups) {
    group_of_.clear();
    int group_id = 0;
    for (const std::vector<SiteId>& group : groups) {
      for (SiteId site : group) group_of_[site] = group_id;
      ++group_id;
    }
  }

  /// Removes the partition; everyone can talk again.
  void Heal() { group_of_.clear(); }

  bool Partitioned() const { return !group_of_.empty(); }

  /// True if a message from `a` to `b` would be dropped.
  bool Crosses(SiteId a, SiteId b) const {
    auto ga = group_of_.find(a);
    auto gb = group_of_.find(b);
    if (ga == group_of_.end() || gb == group_of_.end()) return false;
    return ga->second != gb->second;
  }

  /// Adapter for SimTransportOptions::drop_filter. The controller must
  /// outlive the transport.
  std::function<bool(const Message&)> Filter() {
    return [this](const Message& msg) { return Crosses(msg.from, msg.to); };
  }

 private:
  std::unordered_map<SiteId, int> group_of_;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_PARTITION_H_

#ifndef MINIRAID_NET_TCP_TRANSPORT_H_
#define MINIRAID_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/faults.h"
#include "net/transport.h"

namespace miniraid {

struct TcpTransportOptions {
  /// Address every peer binds on. Experiments run on localhost, like the
  /// paper's single-machine testbed; any IPv4 address works.
  std::string bind_address = "127.0.0.1";

  /// Fault injection (loss, duplication, duplicate delay) shared with the
  /// sim and inproc transports; defaults inject nothing. TCP itself never
  /// loses or duplicates, so faults are applied above the socket: a
  /// dropped message is never framed, a duplicated one is framed twice
  /// (the copy after `duplicate_delay`).
  TransportFaults faults;
};

/// Message passing over real TCP sockets, one transport instance per site.
/// One outbound connection per destination gives per-pair FIFO delivery
/// (the paper's reliable ordered channel); inbound frames are decoded and
/// posted to the site's EventLoop, preserving the single-threaded protocol
/// contract.
///
/// Wire format: u32 little-endian frame length, then EncodeMessage bytes.
class TcpTransport : public Transport {
 public:
  /// `peers` maps every site id (including `self`) to its TCP port.
  /// `handler` may be null at construction (to break the transport<->site
  /// dependency cycle) but must be set via set_handler before Start().
  TcpTransport(SiteId self, std::map<SiteId, uint16_t> peers, EventLoop* loop,
               MessageHandler* handler,
               const TcpTransportOptions& options = TcpTransportOptions{});

  /// Sets the inbound message consumer. Must happen before Start().
  MR_RUNS_ON(client) void set_handler(MessageHandler* handler) {
    handler_ = handler;
  }
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds, listens, and starts the accept thread.
  MR_RUNS_ON(client) Status Start();

  /// Closes all sockets and joins helper threads. Idempotent.
  MR_RUNS_ON(client) void Stop();

  /// Thread-safe; lazily connects to the destination on first use. Writes
  /// the frame to the socket inline — a deliberate blocking exception on
  /// loop threads (see the allow(blocking-call) notes in tcp_transport.cc).
  MR_RUNS_ON(any) Status Send(const Message& msg) override;

  MR_RUNS_ON(any) uint64_t messages_sent() const {
    return messages_sent_.load();
  }
  MR_RUNS_ON(any) uint64_t messages_received() const {
    return messages_received_.load();
  }
  MR_RUNS_ON(any) uint64_t messages_dropped() const {
    return messages_dropped_.load();
  }

 private:
  /// Dedicated IO threads: blocking socket calls are their whole job.
  MR_RUNS_ON(client) void AcceptLoop();
  MR_RUNS_ON(client) void ReadLoop(int fd);
  /// Opens the lazy outbound connection; called on the Send path with the
  /// connection table locked (the map insert must be atomic with connect).
  Status ConnectTo(SiteId peer, int* fd_out) MR_REQUIRES(conn_mu_);
  /// Frames and writes one already-encoded message; the fault-free inner
  /// send, also used for delayed duplicate copies (which must not re-draw
  /// fault decisions).
  Status SendFrame(SiteId to, const std::vector<uint8_t>& body);

  SiteId self_;
  std::map<SiteId, uint16_t> peers_;
  EventLoop* loop_;
  MessageHandler* handler_;
  TcpTransportOptions options_;

  std::atomic<bool> stopping_{false};
  // Atomic: written by Stop() (any thread) while AcceptLoop() reads it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;

  // Lock order (statically declared): each transport mutex comes before
  // the destination EventLoop's queue mutex — a thread may post to a loop
  // while holding a transport lock, but loop internals never call into the
  // transport with their queue lock held (tasks run with it released).
  // This forbids at compile time the loop<->transport deadlock class TSan
  // can only observe on an unlucky interleaving.
  Mutex conn_mu_ MR_ACQUIRED_BEFORE(loop_->mu_);
  std::map<SiteId, int> out_fds_ MR_GUARDED_BY(conn_mu_);

  Mutex readers_mu_ MR_ACQUIRED_BEFORE(loop_->mu_);
  std::vector<std::thread> reader_threads_ MR_GUARDED_BY(readers_mu_);
  std::vector<int> in_fds_ MR_GUARDED_BY(readers_mu_);

  // Fault decisions mutate RNG state and Send runs on many threads; held
  // only around the decision, never around a write or a loop post.
  Mutex faults_mu_ MR_ACQUIRED_BEFORE(loop_->mu_);
  FaultInjector injector_ MR_GUARDED_BY(faults_mu_);

  /// Recycles frame buffers across Send calls (including ReliableChannel
  /// retransmissions, which re-enter Send per attempt), so steady-state
  /// encoding does not allocate per message.
  SharedFramePool pool_;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> messages_received_{0};
  std::atomic<uint64_t> messages_dropped_{0};
};

/// Returns a base port unlikely to collide between concurrently running
/// test binaries (derived from the process id) or between multiple TCP
/// clusters in one process (an atomic per-process counter advances the
/// range on every call).
uint16_t PickEphemeralBasePort();

}  // namespace miniraid

#endif  // MINIRAID_NET_TCP_TRANSPORT_H_

#ifndef MINIRAID_NET_TRANSPORT_H_
#define MINIRAID_NET_TRANSPORT_H_

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "msg/codec.h"
#include "msg/message.h"

namespace miniraid {

/// A FramePool behind a mutex, for transport send paths that run on many
/// threads (every site's loop plus the client). The lock is held only
/// around acquire/release of the buffer free list; encoding and socket
/// writes happen outside it.
class SharedFramePool {
 public:
  MR_RUNS_ON(any) Encoder Acquire() {
    MutexLock lock(mu_);
    return pool_.Acquire();
  }
  MR_RUNS_ON(any) void Release(std::vector<uint8_t> buf) {
    MutexLock lock(mu_);
    pool_.Release(std::move(buf));
  }

 private:
  Mutex mu_;
  FramePool pool_ MR_GUARDED_BY(mu_);
};

/// Consumer of incoming messages. Each site implements this; the transport
/// invokes it in the site's execution context (see SiteRuntime's threading
/// contract).
///
/// OnMessage is MR_RUNS_ON(any) as a *delivery contract*: each transport
/// guarantees by construction that it invokes the handler in the receiving
/// endpoint's own execution context (posting to its EventLoop or scheduling
/// on the simulator), so callers of the virtual boundary are context-clean
/// wherever they run. miniraid-analyze re-anchors its call-graph walk at
/// this annotation; the concrete overrides (Site: loop, ManagingSite:
/// managing) carry their real confinement.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  MR_RUNS_ON(any) virtual void OnMessage(const Message& msg) = 0;
};

/// Asynchronous, per-pair-FIFO message channel. Delivery is AT MOST ONCE
/// per accepted copy but not guaranteed: every transport can be configured
/// to lose, duplicate, and delay messages (TransportFaults in net/faults.h),
/// and the real backends can lose them on connection failure. The paper's
/// assumption 1 ("no messages were lost; messages arrived and were
/// processed in the order that they were sent") therefore does NOT hold at
/// this layer. It is restored for the protocol engine by stacking a
/// ReliableChannel (net/reliable_channel.h) on top, which turns the lossy
/// substrate into AT-LEAST-ONCE delivery via retransmission with
/// exponential backoff, and then into exactly-once in-order delivery via
/// receiver-side sequence-number dedup and reorder buffering. Code sending
/// directly through a raw transport must tolerate silent loss; code
/// receiving behind a ReliableChannel may assume per-pair FIFO and no
/// duplicates, but must still tolerate duplicates at the PROTOCOL level
/// (a retried Prepare or re-announced recovery is a fresh message with a
/// fresh sequence number — dedup below cannot see protocol retries).
///
/// What stays true on every backend, faults or not: messages that are
/// delivered arrive in the order sent per (from, to) pair — a duplicate's
/// delayed copy is the one exception — and Send never blocks on the
/// receiver.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `msg` for delivery to `msg.to`. Fire-and-forget: an OK return
  /// means the transport accepted the message — not that it was delivered
  /// (fault injection may still drop it) nor that it was processed.
  /// MR_RUNS_ON(any): Send never blocks on the receiver and every backend
  /// accepts it from any execution context.
  MR_RUNS_ON(any) virtual Status Send(const Message& msg) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_TRANSPORT_H_

#ifndef MINIRAID_NET_TRANSPORT_H_
#define MINIRAID_NET_TRANSPORT_H_

#include "common/status.h"
#include "msg/message.h"

namespace miniraid {

/// Consumer of incoming messages. Each site implements this; the transport
/// invokes it in the site's execution context (see SiteRuntime's threading
/// contract).
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void OnMessage(const Message& msg) = 0;
};

/// Asynchronous, reliable, per-pair-FIFO message channel — the paper's
/// assumption 1 ("no messages were lost; messages arrived and were
/// processed in the order that they were sent"). Send never blocks on the
/// receiver; delivery failures beyond the reliability contract (e.g. an
/// unknown destination) surface as a Status.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `msg` for delivery to `msg.to`. Fire-and-forget: an OK return
  /// means the transport accepted the message, not that it was processed.
  virtual Status Send(const Message& msg) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_NET_TRANSPORT_H_

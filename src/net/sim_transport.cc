#include "net/sim_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

namespace {

// Folds the legacy per-field fault knobs into the shared TransportFaults
// struct so both spellings configure the same injector.
TransportFaults MergedFaults(const SimTransportOptions& options) {
  TransportFaults faults = options.faults;
  if (!faults.drop_filter && options.drop_filter) {
    faults.drop_filter = options.drop_filter;
  }
  if (faults.duplicate_probability == 0.0) {
    faults.duplicate_probability = options.duplicate_probability;
  }
  return faults;
}

}  // namespace

SimTransport::SimTransport(SimRuntime* sim, const SimTransportOptions& options)
    : sim_(sim),
      options_(options),
      injector_(MergedFaults(options)),
      jitter_rng_(options.jitter_seed) {}

void SimTransport::Register(SiteId site, MessageHandler* handler) {
  handlers_[site] = handler;
}

Status SimTransport::Send(const Message& msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) {
    return Status::InvalidArgument(
        StrFormat("no handler registered for site %u", msg.to));
  }
  if (injector_.ShouldDrop(msg)) {
    ++messages_dropped_;
    return Status::Ok();
  }
  ++messages_sent_;
  MessageHandler* handler = it->second;
  TimePoint arrival = sim_->CurrentTime() + options_.message_latency;
  if (options_.latency_jitter > 0) {
    arrival += static_cast<Duration>(jitter_rng_.NextBounded(
        static_cast<uint64_t>(options_.latency_jitter) + 1));
    // Clamp to preserve per-pair FIFO (the paper's in-order channel).
    TimePoint& last = last_arrival_[{msg.from, msg.to}];
    arrival = std::max(arrival, last + 1);
    last = arrival;
  }
  sim_->ScheduleSiteEvent(arrival, msg.to,
                          [handler, msg]() { handler->OnMessage(msg); });
  // Duplicate decisions come from the injector's own RNG stream, never the
  // latency jitter's, so a same-seed run's original arrivals are identical
  // with duplication on or off.
  if (injector_.ShouldDuplicate()) {
    TimePoint dup_arrival = arrival + injector_.faults().duplicate_delay;
    sim_->ScheduleSiteEvent(dup_arrival, msg.to,
                            [handler, msg]() { handler->OnMessage(msg); });
  }
  return Status::Ok();
}

void SimTransport::ResetCounters() {
  messages_sent_ = 0;
  messages_dropped_ = 0;
}

}  // namespace miniraid

#include "net/sim_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

SimTransport::SimTransport(SimRuntime* sim, const SimTransportOptions& options)
    : sim_(sim), options_(options), jitter_rng_(options.jitter_seed) {}

void SimTransport::Register(SiteId site, MessageHandler* handler) {
  handlers_[site] = handler;
}

Status SimTransport::Send(const Message& msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) {
    return Status::InvalidArgument(
        StrFormat("no handler registered for site %u", msg.to));
  }
  if (options_.drop_filter && options_.drop_filter(msg)) {
    ++messages_dropped_;
    return Status::Ok();
  }
  ++messages_sent_;
  MessageHandler* handler = it->second;
  TimePoint arrival = sim_->CurrentTime() + options_.message_latency;
  if (options_.latency_jitter > 0) {
    arrival += static_cast<Duration>(jitter_rng_.NextBounded(
        static_cast<uint64_t>(options_.latency_jitter) + 1));
    // Clamp to preserve per-pair FIFO (the paper's in-order channel).
    TimePoint& last = last_arrival_[{msg.from, msg.to}];
    arrival = std::max(arrival, last + 1);
    last = arrival;
  }
  sim_->ScheduleSiteEvent(arrival, msg.to,
                          [handler, msg]() { handler->OnMessage(msg); });
  if (options_.duplicate_probability > 0.0 &&
      jitter_rng_.NextBool(options_.duplicate_probability)) {
    sim_->ScheduleSiteEvent(arrival, msg.to,
                            [handler, msg]() { handler->OnMessage(msg); });
  }
  return Status::Ok();
}

void SimTransport::ResetCounters() {
  messages_sent_ = 0;
  messages_dropped_ = 0;
}

}  // namespace miniraid

#ifndef MINIRAID_BASELINES_ROWA_SITE_H_
#define MINIRAID_BASELINES_ROWA_SITE_H_

#include <optional>
#include <set>
#include <vector>

#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "db/database.h"
#include "net/transport.h"
#include "replication/counters.h"

namespace miniraid {

struct BaselineSiteOptions {
  uint32_t n_sites = 2;
  uint32_t db_size = 50;
  SiteId managing_site = kInvalidSite;
  Duration ack_timeout = Milliseconds(1000);
};

/// Strict read-one/write-ALL baseline: the protocol ROWAA improves on.
/// Writes must reach every site; a single down site therefore blocks all
/// update transactions (they abort on the ack timeout) until it recovers.
/// Recovery copies the entire database from an operational peer before the
/// site serves transactions again — there are no fail-locks to tell fresh
/// copies from stale ones, so everything must be refreshed.
///
/// Shares the mini-RAID wire protocol (Prepare/Commit/CopyRequest/...) so
/// it runs over the same transports and drivers.
class RowaSite : public MessageHandler {
 public:
  RowaSite(SiteId id, const BaselineSiteOptions& options,
           Transport* transport, SiteRuntime* runtime);

  void OnMessage(const Message& msg) override;

  SiteId id() const { return id_; }
  bool is_up() const { return up_; }
  const Database& db() const { return db_; }
  const SiteCounters& counters() const { return counters_; }

 private:
  struct Coordination {
    TxnSpec txn;
    SiteId client = kInvalidSite;
    std::set<SiteId> awaiting;
    std::vector<ItemWrite> writes;
    std::vector<ItemCopy> reads;
    bool committing = false;
    TimerId timer = kInvalidTimer;
  };

  struct Participation {
    TxnId txn = 0;
    SiteId coordinator = kInvalidSite;
    std::vector<ItemWrite> staged;
    TimerId timer = kInvalidTimer;
  };

  void HandleTxnRequest(const Message& msg);
  void HandlePrepareAck(const Message& msg);
  void HandleCommitAck(const Message& msg);
  void Timeout();
  void FinishCommit();
  void Reply(TxnOutcome outcome);

  void HandlePrepare(const Message& msg);
  void HandleCommit(const Message& msg);
  void HandleAbort(const Message& msg);

  void StartRecovery();
  void HandleCopyReply(const Message& msg);
  void HandleCopyRequest(const Message& msg);

  const SiteId id_;
  const BaselineSiteOptions options_;
  Transport* const transport_;
  SiteRuntime* const runtime_;

  // Baseline sites exist only inside BaselineCluster's single-threaded
  // SimRuntime: message handlers, timers, and the driver all execute on the
  // simulation's driving (client) thread, so no two contexts ever overlap.
  bool up_ MR_CONTEXT_CONFINED(client) = true;
  bool recovering_ MR_CONTEXT_CONFINED(client) = false;
  Database db_;
  SiteCounters counters_ MR_CONTEXT_CONFINED(client);
  std::optional<Coordination> coord_ MR_CONTEXT_CONFINED(client);
  std::optional<Participation> part_ MR_CONTEXT_CONFINED(client);
};

}  // namespace miniraid

#endif  // MINIRAID_BASELINES_ROWA_SITE_H_

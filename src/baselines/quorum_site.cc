#include "baselines/quorum_site.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {

QuorumSite::QuorumSite(SiteId id, const BaselineSiteOptions& options,
                       Transport* transport, SiteRuntime* runtime)
    : id_(id),
      options_(options),
      transport_(transport),
      runtime_(runtime),
      db_(options.db_size) {}

void QuorumSite::OnMessage(const Message& msg) {
  if (!up_ && msg.type != MsgType::kRecoverSite) return;
  switch (msg.type) {
    case MsgType::kTxnRequest:
      HandleTxnRequest(msg);
      break;
    case MsgType::kCopyRequest:
      HandleCopyRequest(msg);
      break;
    case MsgType::kCopyReply:
      HandleCopyReply(msg);
      break;
    case MsgType::kPrepare:
      HandlePrepare(msg);
      break;
    case MsgType::kPrepareAck:
      HandlePrepareAck(msg);
      break;
    case MsgType::kCommit:
      HandleCommit(msg);
      break;
    case MsgType::kCommitAck:
      HandleCommitAck(msg);
      break;
    case MsgType::kAbort:
      HandleAbort(msg);
      break;
    case MsgType::kFailSite:
      up_ = false;
      if (coord_) {
        runtime_->CancelTimer(coord_->timer);
        coord_.reset();
      }
      if (part_) {
        runtime_->CancelTimer(part_->timer);
        part_.reset();
      }
      break;
    case MsgType::kRecoverSite:
      // No recovery protocol: quorum intersection masks staleness.
      up_ = true;
      ++counters_.control1_initiated;
      break;
    default:
      break;
  }
}

void QuorumSite::HandleTxnRequest(const Message& msg) {
  if (coord_) return;
  ++counters_.txns_coordinated;
  coord_.emplace();
  coord_->txn = msg.As<TxnRequestArgs>().txn;
  coord_->client = msg.from;

  const std::vector<ItemId> read_set = coord_->txn.ReadSet();
  // Seed the quorum with the local copy.
  for (ItemId item : read_set) {
    coord_->freshest[item] = *db_.Read(item);
  }
  if (read_set.empty() || QuorumSize() == 1) {
    StartWritePhase();
    return;
  }
  coord_->phase = Coordination::Phase::kReadQuorum;
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    (void)transport_->Send(
        MakeMessage(id_, t, CopyRequestArgs{coord_->txn.id, read_set}));
  }
  coord_->timer =
      runtime_->ScheduleAfter(options_.ack_timeout, [this] { Timeout(); });
}

void QuorumSite::HandleCopyReply(const Message& msg) {
  if (!coord_ || coord_->phase != Coordination::Phase::kReadQuorum) return;
  const auto& args = msg.As<CopyReplyArgs>();
  if (args.txn != coord_->txn.id) return;
  for (const ItemCopy& copy : args.copies) {
    ItemState& best = coord_->freshest[copy.item];
    if (copy.version > best.version) {
      best = ItemState{copy.value, copy.version};
    }
  }
  if (++coord_->replies < QuorumSize()) return;
  runtime_->CancelTimer(coord_->timer);
  coord_->timer = kInvalidTimer;
  StartWritePhase();
}

void QuorumSite::StartWritePhase() {
  Coordination& c = *coord_;
  for (const Operation& op : c.txn.ops) {
    if (op.is_read()) {
      const ItemState& state = c.freshest[op.item];
      c.reads.push_back(ItemCopy{op.item, state.value, state.version});
    } else {
      auto it = std::find_if(
          c.writes.begin(), c.writes.end(),
          [&op](const ItemWrite& w) { return w.item == op.item; });
      if (it == c.writes.end()) {
        c.writes.push_back(ItemWrite{op.item, op.value});
      } else {
        it->value = op.value;
      }
    }
  }
  if (c.writes.empty() || QuorumSize() == 1) {
    FinishCommit();
    return;
  }
  c.phase = Coordination::Phase::kWriteQuorum;
  c.replies = 1;  // self
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    (void)transport_->Send(
        MakeMessage(id_, t, PrepareArgs{c.txn.id, c.writes, {}, {}}));
  }
  c.timer =
      runtime_->ScheduleAfter(options_.ack_timeout, [this] { Timeout(); });
}

void QuorumSite::HandlePrepareAck(const Message& msg) {
  if (!coord_ || coord_->phase != Coordination::Phase::kWriteQuorum) return;
  if (msg.As<PrepareAckArgs>().txn != coord_->txn.id) return;
  coord_->acked.insert(msg.from);
  if (++coord_->replies < QuorumSize()) return;
  runtime_->CancelTimer(coord_->timer);
  // Write quorum assembled: the transaction commits. Tell everyone who
  // staged it (laggards simply stay stale; reads route around them).
  coord_->phase = Coordination::Phase::kCommitWait;
  coord_->replies = 1;
  for (SiteId t : coord_->acked) {
    (void)transport_->Send(MakeMessage(id_, t, CommitArgs{coord_->txn.id}));
  }
  coord_->timer =
      runtime_->ScheduleAfter(options_.ack_timeout, [this] { Timeout(); });
}

void QuorumSite::HandleCommitAck(const Message& msg) {
  if (!coord_ || coord_->phase != Coordination::Phase::kCommitWait) return;
  if (msg.As<CommitAckArgs>().txn != coord_->txn.id) return;
  if (++coord_->replies < QuorumSize()) return;
  runtime_->CancelTimer(coord_->timer);
  FinishCommit();
}

void QuorumSite::Timeout() {
  if (!coord_) return;
  switch (coord_->phase) {
    case Coordination::Phase::kReadQuorum:
    case Coordination::Phase::kWriteQuorum:
      // Quorum unavailable: too many silent sites.
      for (SiteId t : coord_->acked) {
        (void)transport_->Send(MakeMessage(id_, t, AbortArgs{coord_->txn.id}));
      }
      ++counters_.txns_aborted_participant;
      Reply(TxnOutcome::kAbortedParticipantFailed);
      break;
    case Coordination::Phase::kCommitWait:
      // Commit was already decided at write-quorum time.
      FinishCommit();
      break;
  }
}

void QuorumSite::FinishCommit() {
  for (const ItemWrite& write : coord_->writes) {
    (void)db_.CommitWrite(write.item, write.value, coord_->txn.id);
  }
  ++counters_.txns_committed;
  Reply(TxnOutcome::kCommitted);
}

void QuorumSite::Reply(TxnOutcome outcome) {
  if (coord_->timer != kInvalidTimer) runtime_->CancelTimer(coord_->timer);
  (void)transport_->Send(MakeMessage(
      id_, coord_->client,
      TxnResult{coord_->txn.id, outcome, 0, coord_->reads}));
  coord_.reset();
}

void QuorumSite::HandleCopyRequest(const Message& msg) {
  const auto& args = msg.As<CopyRequestArgs>();
  ++counters_.copy_requests_served;
  CopyReplyArgs reply;
  reply.txn = args.txn;
  for (ItemId item : args.items) {
    if (item >= options_.db_size) continue;
    const ItemState state = *db_.Read(item);
    // Quorum reads always answer — even a stale copy contributes its
    // version to the vote.
    reply.copies.push_back(ItemCopy{item, state.value, state.version});
  }
  (void)transport_->Send(MakeMessage(id_, msg.from, std::move(reply)));
}

void QuorumSite::HandlePrepare(const Message& msg) {
  const auto& args = msg.As<PrepareArgs>();
  if (part_) {
    runtime_->CancelTimer(part_->timer);
    part_.reset();
  }
  ++counters_.prepares_handled;
  part_.emplace();
  part_->txn = args.txn;
  part_->coordinator = msg.from;
  part_->staged = args.writes;
  (void)transport_->Send(MakeMessage(id_, msg.from, PrepareAckArgs{args.txn, true, {}}));
  part_->timer = runtime_->ScheduleAfter(3 * options_.ack_timeout, [this] {
    if (part_) part_.reset();
  });
}

void QuorumSite::HandleCommit(const Message& msg) {
  if (!part_ || part_->txn != msg.As<CommitArgs>().txn) return;
  runtime_->CancelTimer(part_->timer);
  for (const ItemWrite& write : part_->staged) {
    (void)db_.CommitWrite(write.item, write.value, part_->txn);
  }
  (void)transport_->Send(
      MakeMessage(id_, part_->coordinator, CommitAckArgs{part_->txn}));
  ++counters_.commits_handled;
  part_.reset();
}

void QuorumSite::HandleAbort(const Message& msg) {
  if (!part_ || part_->txn != msg.As<AbortArgs>().txn) return;
  runtime_->CancelTimer(part_->timer);
  ++counters_.aborts_handled;
  part_.reset();
}

}  // namespace miniraid

#ifndef MINIRAID_BASELINES_BASELINE_CLUSTER_H_
#define MINIRAID_BASELINES_BASELINE_CLUSTER_H_

#include <memory>
#include <vector>

#include "baselines/quorum_site.h"
#include "baselines/rowa_site.h"
#include "core/managing_site.h"
#include "net/sim_transport.h"
#include "sim/sim_runtime.h"

namespace miniraid {

/// Which comparison protocol a BaselineCluster runs.
enum class BaselineKind {
  kRowaStrict,  // read-one / write-ALL
  kQuorum,      // majority-quorum consensus
};

struct BaselineClusterOptions {
  uint32_t n_sites = 4;
  uint32_t db_size = 50;
  BaselineKind kind = BaselineKind::kRowaStrict;
  BaselineSiteOptions site;
  SimOptions sim;
  SimTransportOptions transport;
  ManagingSite::Options managing;
};

/// Simulator-backed cluster running one of the baseline protocols, with the
/// same driver surface as SimCluster so the availability benches can sweep
/// ROWAA / strict ROWA / quorum over identical failure schedules.
class BaselineCluster {
 public:
  explicit BaselineCluster(const BaselineClusterOptions& options);
  ~BaselineCluster();

  BaselineCluster(const BaselineCluster&) = delete;
  BaselineCluster& operator=(const BaselineCluster&) = delete;

  TxnResult RunTxn(const TxnSpec& txn, SiteId coordinator);
  void Fail(SiteId site);
  void Recover(SiteId site);

  std::vector<SiteId> UpSites() const;
  uint64_t messages_sent() const { return transport_->messages_sent(); }
  const SiteCounters& site_counters(SiteId site) const;

  SiteId managing_id() const { return options_.n_sites; }
  uint32_t n_sites() const { return options_.n_sites; }

 private:
  BaselineClusterOptions options_;
  SimRuntime sim_;
  std::unique_ptr<SimTransport> transport_;
  std::vector<std::unique_ptr<RowaSite>> rowa_;
  std::vector<std::unique_ptr<QuorumSite>> quorum_;
  std::unique_ptr<ManagingSite> managing_;
};

}  // namespace miniraid

#endif  // MINIRAID_BASELINES_BASELINE_CLUSTER_H_

#include "baselines/baseline_cluster.h"

#include "common/logging.h"

namespace miniraid {

BaselineCluster::BaselineCluster(const BaselineClusterOptions& options)
    : options_(options), sim_(options.sim) {
  options_.site.n_sites = options_.n_sites;
  options_.site.db_size = options_.db_size;
  options_.site.managing_site = managing_id();
  transport_ = std::make_unique<SimTransport>(&sim_, options_.transport);
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    MessageHandler* handler = nullptr;
    if (options_.kind == BaselineKind::kRowaStrict) {
      rowa_.push_back(std::make_unique<RowaSite>(
          id, options_.site, transport_.get(), sim_.RuntimeFor(id)));
      handler = rowa_.back().get();
    } else {
      quorum_.push_back(std::make_unique<QuorumSite>(
          id, options_.site, transport_.get(), sim_.RuntimeFor(id)));
      handler = quorum_.back().get();
    }
    transport_->Register(id, handler);
  }
  managing_ = std::make_unique<ManagingSite>(
      managing_id(), transport_.get(), sim_.RuntimeFor(managing_id()),
      options_.managing);
  transport_->Register(managing_id(), managing_.get());
}

BaselineCluster::~BaselineCluster() = default;

TxnResult BaselineCluster::RunTxn(const TxnSpec& txn, SiteId coordinator) {
  std::optional<TxnResult> result;
  managing_->Submit(txn, coordinator,
                    [&result](const TxnResult& reply) { result = reply; });
  sim_.RunUntilIdle();
  MR_CHECK(result.has_value()) << "simulation drained without a reply";
  return *result;
}

void BaselineCluster::Fail(SiteId site) {
  managing_->FailSite(site);
  sim_.RunUntilIdle();
}

void BaselineCluster::Recover(SiteId site) {
  managing_->RecoverSite(site);
  sim_.RunUntilIdle();
}

std::vector<SiteId> BaselineCluster::UpSites() const {
  std::vector<SiteId> up;
  for (SiteId id = 0; id < options_.n_sites; ++id) {
    const bool is_up = options_.kind == BaselineKind::kRowaStrict
                           ? rowa_[id]->is_up()
                           : quorum_[id]->is_up();
    if (is_up) up.push_back(id);
  }
  return up;
}

const SiteCounters& BaselineCluster::site_counters(SiteId site) const {
  return options_.kind == BaselineKind::kRowaStrict
             ? rowa_.at(site)->counters()
             : quorum_.at(site)->counters();
}

}  // namespace miniraid

#ifndef MINIRAID_BASELINES_QUORUM_SITE_H_
#define MINIRAID_BASELINES_QUORUM_SITE_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "baselines/rowa_site.h"
#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "db/database.h"
#include "net/transport.h"
#include "replication/counters.h"

namespace miniraid {

/// Majority-quorum consensus baseline ([Bern84]-style voting with version
/// numbers): every read collects versions from a majority of sites and
/// takes the freshest; every write installs at a majority. Tolerates any
/// minority of failed sites with no recovery protocol at all (a recovered
/// site simply rejoins; quorum intersection masks its staleness), but pays
/// quorum messages on every read — the classic trade against ROWAA, which
/// reads locally and pays at recovery time instead.
class QuorumSite : public MessageHandler {
 public:
  QuorumSite(SiteId id, const BaselineSiteOptions& options,
             Transport* transport, SiteRuntime* runtime);

  void OnMessage(const Message& msg) override;

  SiteId id() const { return id_; }
  bool is_up() const { return up_; }
  const Database& db() const { return db_; }
  const SiteCounters& counters() const { return counters_; }

  /// Majority size for this cluster: floor(n/2) + 1.
  uint32_t QuorumSize() const { return options_.n_sites / 2 + 1; }

 private:
  struct Coordination {
    TxnSpec txn;
    SiteId client = kInvalidSite;

    enum class Phase { kReadQuorum, kWriteQuorum, kCommitWait };
    Phase phase = Phase::kReadQuorum;

    uint32_t replies = 1;  // self counts toward both quorums
    std::map<ItemId, ItemState> freshest;
    std::set<SiteId> acked;
    std::vector<ItemWrite> writes;
    std::vector<ItemCopy> reads;
    TimerId timer = kInvalidTimer;
  };

  struct Participation {
    TxnId txn = 0;
    SiteId coordinator = kInvalidSite;
    std::vector<ItemWrite> staged;
    TimerId timer = kInvalidTimer;
  };

  void HandleTxnRequest(const Message& msg);
  void HandleCopyReply(const Message& msg);
  void StartWritePhase();
  void HandlePrepareAck(const Message& msg);
  void HandleCommitAck(const Message& msg);
  void Timeout();
  void FinishCommit();
  void Reply(TxnOutcome outcome);

  void HandleCopyRequest(const Message& msg);
  void HandlePrepare(const Message& msg);
  void HandleCommit(const Message& msg);
  void HandleAbort(const Message& msg);

  const SiteId id_;
  const BaselineSiteOptions options_;
  Transport* const transport_;
  SiteRuntime* const runtime_;

  // Baseline sites exist only inside BaselineCluster's single-threaded
  // SimRuntime: message handlers, timers, and the driver all execute on the
  // simulation's driving (client) thread, so no two contexts ever overlap.
  bool up_ MR_CONTEXT_CONFINED(client) = true;
  Database db_;
  SiteCounters counters_ MR_CONTEXT_CONFINED(client);
  std::optional<Coordination> coord_ MR_CONTEXT_CONFINED(client);
  std::optional<Participation> part_ MR_CONTEXT_CONFINED(client);
};

}  // namespace miniraid

#endif  // MINIRAID_BASELINES_QUORUM_SITE_H_

#include "baselines/rowa_site.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {

RowaSite::RowaSite(SiteId id, const BaselineSiteOptions& options,
                   Transport* transport, SiteRuntime* runtime)
    : id_(id),
      options_(options),
      transport_(transport),
      runtime_(runtime),
      db_(options.db_size) {}

void RowaSite::OnMessage(const Message& msg) {
  if (!up_ && msg.type != MsgType::kRecoverSite) return;
  switch (msg.type) {
    case MsgType::kTxnRequest:
      HandleTxnRequest(msg);
      break;
    case MsgType::kPrepare:
      HandlePrepare(msg);
      break;
    case MsgType::kPrepareAck:
      HandlePrepareAck(msg);
      break;
    case MsgType::kCommit:
      HandleCommit(msg);
      break;
    case MsgType::kCommitAck:
      HandleCommitAck(msg);
      break;
    case MsgType::kAbort:
      HandleAbort(msg);
      break;
    case MsgType::kCopyRequest:
      HandleCopyRequest(msg);
      break;
    case MsgType::kCopyReply:
      HandleCopyReply(msg);
      break;
    case MsgType::kFailSite:
      up_ = false;
      recovering_ = false;
      if (coord_) {
        runtime_->CancelTimer(coord_->timer);
        coord_.reset();
      }
      if (part_) {
        runtime_->CancelTimer(part_->timer);
        part_.reset();
      }
      break;
    case MsgType::kRecoverSite:
      StartRecovery();
      break;
    default:
      break;
  }
}

void RowaSite::HandleTxnRequest(const Message& msg) {
  if (recovering_ || coord_) return;  // client times out
  ++counters_.txns_coordinated;
  coord_.emplace();
  coord_->txn = msg.As<TxnRequestArgs>().txn;
  coord_->client = msg.from;

  for (const Operation& op : coord_->txn.ops) {
    if (op.is_read()) {
      const ItemState state = *db_.Read(op.item);
      coord_->reads.push_back(ItemCopy{op.item, state.value, state.version});
    } else {
      auto it = std::find_if(
          coord_->writes.begin(), coord_->writes.end(),
          [&op](const ItemWrite& w) { return w.item == op.item; });
      if (it == coord_->writes.end()) {
        coord_->writes.push_back(ItemWrite{op.item, op.value});
      } else {
        it->value = op.value;
      }
    }
  }

  // Read-one: a read-only transaction is served entirely from the local
  // copy; only updates must reach every site.
  if (coord_->writes.empty()) {
    FinishCommit();
    return;
  }

  // Write-ALL: every other site must acknowledge, up or not.
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    coord_->awaiting.insert(t);
    (void)transport_->Send(
        MakeMessage(id_, t, PrepareArgs{coord_->txn.id, coord_->writes, {}, {}}));
  }
  if (coord_->awaiting.empty()) {
    FinishCommit();
    return;
  }
  coord_->timer =
      runtime_->ScheduleAfter(options_.ack_timeout, [this] { Timeout(); });
}

void RowaSite::HandlePrepareAck(const Message& msg) {
  if (!coord_ || coord_->committing) return;
  if (msg.As<PrepareAckArgs>().txn != coord_->txn.id) return;
  coord_->awaiting.erase(msg.from);
  if (!coord_->awaiting.empty()) return;
  runtime_->CancelTimer(coord_->timer);
  coord_->committing = true;
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    coord_->awaiting.insert(t);
    (void)transport_->Send(MakeMessage(id_, t, CommitArgs{coord_->txn.id}));
  }
  coord_->timer =
      runtime_->ScheduleAfter(options_.ack_timeout, [this] { Timeout(); });
}

void RowaSite::HandleCommitAck(const Message& msg) {
  if (!coord_ || !coord_->committing) return;
  if (msg.As<CommitAckArgs>().txn != coord_->txn.id) return;
  coord_->awaiting.erase(msg.from);
  if (!coord_->awaiting.empty()) return;
  runtime_->CancelTimer(coord_->timer);
  FinishCommit();
}

void RowaSite::Timeout() {
  if (!coord_) return;
  if (coord_->committing) {
    // Commit already decided; complete locally (the silent site must copy
    // the whole database at recovery anyway).
    FinishCommit();
    return;
  }
  // Strict ROWA: any unreachable site blocks updates — abort.
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_ || coord_->awaiting.count(t)) continue;
    (void)transport_->Send(MakeMessage(id_, t, AbortArgs{coord_->txn.id}));
  }
  ++counters_.txns_aborted_participant;
  Reply(TxnOutcome::kAbortedParticipantFailed);
}

void RowaSite::FinishCommit() {
  for (const ItemWrite& write : coord_->writes) {
    (void)db_.CommitWrite(write.item, write.value, coord_->txn.id);
  }
  ++counters_.txns_committed;
  Reply(TxnOutcome::kCommitted);
}

void RowaSite::Reply(TxnOutcome outcome) {
  if (coord_->timer != kInvalidTimer) runtime_->CancelTimer(coord_->timer);
  (void)transport_->Send(MakeMessage(
      id_, coord_->client,
      TxnResult{coord_->txn.id, outcome, 0, coord_->reads}));
  coord_.reset();
}

void RowaSite::HandlePrepare(const Message& msg) {
  if (recovering_) return;  // not serving until refreshed
  const auto& args = msg.As<PrepareArgs>();
  if (part_) {
    runtime_->CancelTimer(part_->timer);
    part_.reset();
  }
  ++counters_.prepares_handled;
  part_.emplace();
  part_->txn = args.txn;
  part_->coordinator = msg.from;
  part_->staged = args.writes;
  (void)transport_->Send(
      MakeMessage(id_, msg.from, PrepareAckArgs{args.txn, true, {}}));
  part_->timer = runtime_->ScheduleAfter(3 * options_.ack_timeout, [this] {
    if (part_) part_.reset();  // coordinator gone; discard
  });
}

void RowaSite::HandleCommit(const Message& msg) {
  if (!part_ || part_->txn != msg.As<CommitArgs>().txn) return;
  runtime_->CancelTimer(part_->timer);
  for (const ItemWrite& write : part_->staged) {
    (void)db_.CommitWrite(write.item, write.value, part_->txn);
  }
  (void)transport_->Send(
      MakeMessage(id_, part_->coordinator, CommitAckArgs{part_->txn}));
  ++counters_.commits_handled;
  part_.reset();
}

void RowaSite::HandleAbort(const Message& msg) {
  if (!part_ || part_->txn != msg.As<AbortArgs>().txn) return;
  runtime_->CancelTimer(part_->timer);
  ++counters_.aborts_handled;
  part_.reset();
}

void RowaSite::StartRecovery() {
  if (up_) return;
  up_ = true;
  recovering_ = true;
  ++counters_.control1_initiated;
  // No fail-locks: the whole database must be refreshed before serving.
  std::vector<ItemId> all(options_.db_size);
  for (ItemId item = 0; item < options_.db_size; ++item) all[item] = item;
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    (void)transport_->Send(MakeMessage(id_, t, CopyRequestArgs{0, all}));
  }
}

void RowaSite::HandleCopyReply(const Message& msg) {
  if (!recovering_) return;
  const auto& args = msg.As<CopyReplyArgs>();
  if (args.copies.size() < options_.db_size) return;  // partial: ignore
  for (const ItemCopy& copy : args.copies) {
    (void)db_.InstallCopy(copy.item, ItemState{copy.value, copy.version});
  }
  recovering_ = false;
}

void RowaSite::HandleCopyRequest(const Message& msg) {
  if (recovering_) return;
  const auto& args = msg.As<CopyRequestArgs>();
  ++counters_.copy_requests_served;
  CopyReplyArgs reply;
  reply.txn = args.txn;
  for (ItemId item : args.items) {
    const ItemState state = *db_.Read(item);
    reply.copies.push_back(ItemCopy{item, state.value, state.version});
  }
  (void)transport_->Send(MakeMessage(id_, msg.from, std::move(reply)));
}

}  // namespace miniraid

#include "txn/transaction.h"

#include <algorithm>

#include "common/strings.h"

namespace miniraid {
namespace {

std::vector<ItemId> DistinctItems(const std::vector<Operation>& ops,
                                  Operation::Kind kind) {
  std::vector<ItemId> out;
  for (const Operation& op : ops) {
    if (op.kind != kind) continue;
    if (std::find(out.begin(), out.end(), op.item) == out.end()) {
      out.push_back(op.item);
    }
  }
  return out;
}

}  // namespace

std::vector<ItemId> TxnSpec::ReadSet() const {
  if (!declared_reads.empty()) return declared_reads;
  return DistinctItems(ops, Operation::Kind::kRead);
}

std::vector<ItemId> TxnSpec::WriteSet() const {
  if (!declared_writes.empty()) return declared_writes;
  return DistinctItems(ops, Operation::Kind::kWrite);
}

bool TxnSpec::Touches(ItemId item) const {
  return std::any_of(ops.begin(), ops.end(),
                     [item](const Operation& op) { return op.item == item; });
}

std::string TxnSpec::ToString() const {
  std::string out = StrFormat("txn %llu {", (unsigned long long)id);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i) out += ", ";
    const Operation& op = ops[i];
    if (op.is_read()) {
      out += StrFormat("R(%u)", op.item);
    } else {
      out += StrFormat("W(%u=%lld)", op.item, (long long)op.value);
    }
  }
  out += "}";
  return out;
}

std::string_view TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "Committed";
    case TxnOutcome::kAbortedCopierFailed:
      return "AbortedCopierFailed";
    case TxnOutcome::kAbortedParticipantFailed:
      return "AbortedParticipantFailed";
    case TxnOutcome::kAbortedCoordinatorDown:
      return "AbortedCoordinatorDown";
    case TxnOutcome::kCoordinatorUnreachable:
      return "CoordinatorUnreachable";
    case TxnOutcome::kRejectedInvalid:
      return "RejectedInvalid";
    case TxnOutcome::kAbortedLockConflict:
      return "AbortedLockConflict";
    case TxnOutcome::kAbortedStaleView:
      return "AbortedStaleView";
    case TxnOutcome::kAbortedDeadlock:
      return "AbortedDeadlock";
    case TxnOutcome::kAbortedLockTimeout:
      return "AbortedLockTimeout";
  }
  return "Unknown";
}

bool IsRetryableAbort(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kAbortedLockConflict:
    case TxnOutcome::kAbortedStaleView:
    case TxnOutcome::kAbortedDeadlock:
    case TxnOutcome::kAbortedLockTimeout:
      return true;
    default:
      return false;
  }
}

Value WriteValueFor(TxnId txn, ItemId item) {
  // SplitMix64-style mix of (txn, item); any fixed injective-ish function
  // works, the tests only require determinism.
  uint64_t z = txn * 0x9e3779b97f4a7c15ULL + item;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<Value>(z & 0x7fffffffffffffffULL);
}

}  // namespace miniraid

#ifndef MINIRAID_TXN_TRANSACTION_H_
#define MINIRAID_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace miniraid {

/// One read or write of a single data item (the paper's definition of an
/// operation: "a read or write of a database data item").
struct Operation {
  enum class Kind : uint8_t { kRead = 0, kWrite = 1 };

  Kind kind = Kind::kRead;
  ItemId item = 0;
  /// For writes: the value the transaction installs. Generated
  /// deterministically from (txn id, item) by the workloads so that replica
  /// agreement is checkable bit-for-bit.
  Value value = 0;

  static Operation Read(ItemId item) {
    return Operation{Kind::kRead, item, 0};
  }
  static Operation Write(ItemId item, Value value) {
    return Operation{Kind::kWrite, item, value};
  }

  bool is_read() const { return kind == Kind::kRead; }
  bool is_write() const { return kind == Kind::kWrite; }

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.kind == b.kind && a.item == b.item && a.value == b.value;
  }
};

/// A database transaction as submitted by the managing site: an identifier
/// plus an ordered list of operations. Transactions execute serially
/// (paper assumption 2), so no isolation metadata is needed.
struct TxnSpec {
  TxnId id = 0;
  std::vector<Operation> ops;

  /// Distinct items read by the transaction, in first-occurrence order.
  std::vector<ItemId> ReadSet() const;
  /// Distinct items written by the transaction, in first-occurrence order.
  std::vector<ItemId> WriteSet() const;

  /// True if any operation touches `item`.
  bool Touches(ItemId item) const;

  std::string ToString() const;

  friend bool operator==(const TxnSpec& a, const TxnSpec& b) {
    return a.id == b.id && a.ops == b.ops;
  }
};

/// Terminal outcome of a database transaction, reported back to the
/// managing site.
enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  /// Aborted because a copier transaction could not obtain an up-to-date
  /// copy (no operational site holds one) — the paper's Experiment 3
  /// scenario-1 abort cause.
  kAbortedCopierFailed = 1,
  /// Aborted because a participant failed during phase one of 2PC.
  kAbortedParticipantFailed = 2,
  /// Aborted because the coordinator considered itself non-operational.
  kAbortedCoordinatorDown = 3,
  /// The managing site timed out waiting for the coordinator (coordinator
  /// crashed mid-transaction).
  kCoordinatorUnreachable = 4,
  /// Rejected before execution: the transaction referenced items outside
  /// the database.
  kRejectedInvalid = 5,
  /// Aborted by wait-die (the concurrency-control extension): a younger
  /// transaction conflicted with an older one's locks. Safe to retry.
  kAbortedLockConflict = 6,
  /// Aborted by commit-time session-vector validation: a participant knew
  /// a strictly newer session for some site than the coordinator, so the
  /// participant set was chosen under stale membership. The coordinator
  /// has merged the participant's vector; safe to retry.
  kAbortedStaleView = 7,
};

std::string_view TxnOutcomeName(TxnOutcome outcome);

/// Deterministic value a workload writes for (txn, item); also used by the
/// test oracles to predict the final database state.
Value WriteValueFor(TxnId txn, ItemId item);

}  // namespace miniraid

#endif  // MINIRAID_TXN_TRANSACTION_H_

#ifndef MINIRAID_TXN_TRANSACTION_H_
#define MINIRAID_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace miniraid {

/// One read or write of a single data item (the paper's definition of an
/// operation: "a read or write of a database data item").
struct Operation {
  enum class Kind : uint8_t { kRead = 0, kWrite = 1 };

  Kind kind = Kind::kRead;
  ItemId item = 0;
  /// For writes: the value the transaction installs. Generated
  /// deterministically from (txn id, item) by the workloads so that replica
  /// agreement is checkable bit-for-bit.
  Value value = 0;

  static Operation Read(ItemId item) {
    return Operation{Kind::kRead, item, 0};
  }
  static Operation Write(ItemId item, Value value) {
    return Operation{Kind::kWrite, item, value};
  }

  bool is_read() const { return kind == Kind::kRead; }
  bool is_write() const { return kind == Kind::kWrite; }

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.kind == b.kind && a.item == b.item && a.value == b.value;
  }
};

/// A database transaction as submitted by the managing site: an identifier
/// plus an ordered list of operations. Under the default serial execution
/// (paper assumption 2) no isolation metadata is needed; under two-phase
/// locking the coordinator acquires locks up front from the declared
/// read/write sets (explicit if given, otherwise derived from `ops`).
struct TxnSpec {
  TxnId id = 0;
  std::vector<Operation> ops;

  /// Optional declared access sets for lock acquisition. Empty = derive
  /// from `ops`. A declaration may be a superset of what `ops` touches
  /// (conservative locking) but must not be a subset: the engine locks
  /// exactly what is declared, so an undeclared access would run unlocked.
  std::vector<ItemId> declared_reads;
  std::vector<ItemId> declared_writes;

  /// Distinct items read by the transaction, in first-occurrence order
  /// (`declared_reads` when non-empty, otherwise derived from `ops`).
  std::vector<ItemId> ReadSet() const;
  /// Distinct items written by the transaction, in first-occurrence order
  /// (`declared_writes` when non-empty, otherwise derived from `ops`).
  std::vector<ItemId> WriteSet() const;

  /// True if any operation touches `item`.
  bool Touches(ItemId item) const;

  std::string ToString() const;

  friend bool operator==(const TxnSpec& a, const TxnSpec& b) {
    return a.id == b.id && a.ops == b.ops &&
           a.declared_reads == b.declared_reads &&
           a.declared_writes == b.declared_writes;
  }
};

/// Terminal outcome of a database transaction, reported back to the
/// managing site.
enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  /// Aborted because a copier transaction could not obtain an up-to-date
  /// copy (no operational site holds one) — the paper's Experiment 3
  /// scenario-1 abort cause.
  kAbortedCopierFailed = 1,
  /// Aborted because a participant failed during phase one of 2PC.
  kAbortedParticipantFailed = 2,
  /// Aborted because the coordinator considered itself non-operational.
  kAbortedCoordinatorDown = 3,
  /// The managing site timed out waiting for the coordinator (coordinator
  /// crashed mid-transaction).
  kCoordinatorUnreachable = 4,
  /// Rejected before execution: the transaction referenced items outside
  /// the database.
  kRejectedInvalid = 5,
  /// Aborted by wait-die (the concurrency-control extension): a younger
  /// transaction conflicted with an older one's locks. Safe to retry.
  kAbortedLockConflict = 6,
  /// Aborted by commit-time session-vector validation: a participant knew
  /// a strictly newer session for some site than the coordinator, so the
  /// participant set was chosen under stale membership. The coordinator
  /// has merged the participant's vector; safe to retry.
  kAbortedStaleView = 7,
  /// Aborted by wound-wait deadlock avoidance: an older transaction
  /// conflicted with this (younger) transaction's locks and wounded it.
  /// Safe to retry.
  kAbortedDeadlock = 8,
  /// Aborted because a lock request waited longer than
  /// ConcurrencyOptions::lock_wait_timeout (timeout deadlock policy).
  /// Safe to retry.
  kAbortedLockTimeout = 9,
};

std::string_view TxnOutcomeName(TxnOutcome outcome);

/// True for aborts caused by transient scheduling conflicts (lock
/// conflicts, deadlock victims, lock-wait timeouts, stale membership
/// views): re-submitting the same transaction unchanged may succeed.
/// False for kCommitted and for aborts that need operator/system action.
bool IsRetryableAbort(TxnOutcome outcome);

/// Deterministic value a workload writes for (txn, item); also used by the
/// test oracles to predict the final database state.
Value WriteValueFor(TxnId txn, ItemId item);

}  // namespace miniraid

#endif  // MINIRAID_TXN_TRANSACTION_H_

#include "txn/parse.h"

#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace miniraid {

Result<TxnSpec> ParseTxnOps(TxnId id, const std::string& ops_text,
                            uint32_t db_size) {
  TxnSpec txn;
  txn.id = id;
  std::istringstream in(ops_text);
  std::string token;
  while (in >> token) {
    if (token.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("bad operation '%s' (want rN or wN[=V])", token.c_str()));
    }
    const char kind = token[0];
    if (kind != 'r' && kind != 'w') {
      return Status::InvalidArgument(
          StrFormat("bad operation kind in '%s'", token.c_str()));
    }
    const std::string rest = token.substr(1);
    const size_t eq = rest.find('=');
    const std::string item_text = eq == std::string::npos
                                      ? rest
                                      : rest.substr(0, eq);
    char* end = nullptr;
    const long item = std::strtol(item_text.c_str(), &end, 10);
    if (end == item_text.c_str() || *end != '\0' || item < 0 ||
        static_cast<unsigned long>(item) >= db_size) {
      return Status::InvalidArgument(
          StrFormat("bad item in '%s' (0 <= item < %u)", token.c_str(),
                    db_size));
    }
    const ItemId item_id = static_cast<ItemId>(item);
    if (kind == 'r') {
      if (eq != std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("reads take no value: '%s'", token.c_str()));
      }
      txn.ops.push_back(Operation::Read(item_id));
      continue;
    }
    Value value = WriteValueFor(id, item_id);
    if (eq != std::string::npos) {
      const std::string value_text = rest.substr(eq + 1);
      char* value_end = nullptr;
      value = static_cast<Value>(
          std::strtoll(value_text.c_str(), &value_end, 10));
      if (value_end == value_text.c_str() || *value_end != '\0') {
        return Status::InvalidArgument(
            StrFormat("bad value in '%s'", token.c_str()));
      }
    }
    txn.ops.push_back(Operation::Write(item_id, value));
  }
  if (txn.ops.empty()) {
    return Status::InvalidArgument("transaction needs at least one operation");
  }
  return txn;
}

std::string FormatTxnOps(const TxnSpec& txn) {
  std::vector<std::string> parts;
  for (const Operation& op : txn.ops) {
    if (op.is_read()) {
      parts.push_back(StrFormat("r%u", op.item));
    } else {
      parts.push_back(StrFormat("w%u=%lld", op.item, (long long)op.value));
    }
  }
  return StrJoin(parts, " ");
}

}  // namespace miniraid

#ifndef MINIRAID_TXN_PARSE_H_
#define MINIRAID_TXN_PARSE_H_

#include <string>

#include "common/result.h"
#include "txn/transaction.h"

namespace miniraid {

/// Parses a whitespace-separated operation list like "r4 w7 r0" into a
/// transaction: `rN` reads item N, `wN` writes item N with the canonical
/// value WriteValueFor(id, N), and `wN=V` writes the explicit value V.
/// Items must be < `db_size`. Used by the interactive managing site.
Result<TxnSpec> ParseTxnOps(TxnId id, const std::string& ops_text,
                            uint32_t db_size);

/// Renders a transaction back into the parsable form ("r4 w7=42").
std::string FormatTxnOps(const TxnSpec& txn);

}  // namespace miniraid

#endif  // MINIRAID_TXN_PARSE_H_

#ifndef MINIRAID_TXN_WORKLOAD_H_
#define MINIRAID_TXN_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace miniraid {

/// Produces the stream of database transactions the managing site submits.
/// Implementations must be deterministic given the seed in their options.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// The next transaction. Ids are assigned 1, 2, 3, ... ("Transactions
  /// were sequentially numbered from 1", paper §3.1).
  virtual TxnSpec Next() = 0;

  /// Number of distinct data items the workload can touch.
  virtual uint32_t db_size() const = 0;

  virtual std::string name() const = 0;
};

/// The paper's workload: each transaction has a uniform random number of
/// operations in [1, max_txn_size]; each operation is independently a read
/// or a write with probability `write_fraction` (0.5 in the paper, §1.2);
/// each operation targets an item chosen from the hot set — uniformly when
/// zipf_theta == 0 (the paper's equal-probability assumption), Zipf-skewed
/// otherwise (the §5 extension).
struct UniformWorkloadOptions {
  uint32_t db_size = 50;        // paper: 50 frequently referenced items
  uint32_t max_txn_size = 10;   // paper experiment 1: 10; experiments 2-3: 5
  double write_fraction = 0.5;  // paper: reads and writes equally likely
  double zipf_theta = 0.0;      // 0 = uniform (the paper's assumption)
  uint64_t seed = 1;
};

class UniformWorkload : public WorkloadGenerator {
 public:
  explicit UniformWorkload(const UniformWorkloadOptions& options);

  TxnSpec Next() override;
  uint32_t db_size() const override { return options_.db_size; }
  std::string name() const override;

 private:
  UniformWorkloadOptions options_;
  Rng rng_;
  ZipfGenerator zipf_;
  TxnId next_id_ = 1;
};

/// An ET1/DebitCredit-shaped workload (the Tandem benchmark the paper
/// planned to adopt, [Anon85]): each transaction reads and updates one
/// account, one teller, and one branch record, and appends to a history
/// slot. Records are mapped onto the item space as
/// [accounts | tellers | branches | history ring].
struct Et1WorkloadOptions {
  uint32_t accounts = 40;
  uint32_t tellers = 5;
  uint32_t branches = 2;
  uint32_t history_slots = 3;  // history writes cycle through these items
  uint64_t seed = 1;
};

class Et1Workload : public WorkloadGenerator {
 public:
  explicit Et1Workload(const Et1WorkloadOptions& options);

  TxnSpec Next() override;
  uint32_t db_size() const override;
  std::string name() const override { return "et1"; }

  /// Item-id layout accessors (also used by tests).
  ItemId AccountItem(uint32_t i) const { return i; }
  ItemId TellerItem(uint32_t i) const { return options_.accounts + i; }
  ItemId BranchItem(uint32_t i) const {
    return options_.accounts + options_.tellers + i;
  }
  ItemId HistoryItem(uint32_t i) const {
    return options_.accounts + options_.tellers + options_.branches + i;
  }

 private:
  Et1WorkloadOptions options_;
  Rng rng_;
  TxnId next_id_ = 1;
  uint32_t history_cursor_ = 0;
};

/// A Wisconsin-benchmark-shaped workload ([Bitt83]): a mix of selection
/// scans (a run of reads over a contiguous key range) and point updates,
/// approximating the benchmark's selection/update queries on the hot set.
struct WisconsinWorkloadOptions {
  uint32_t db_size = 50;
  uint32_t scan_length = 5;    // items read by a selection query
  double scan_fraction = 0.5;  // probability a transaction is a scan
  uint64_t seed = 1;
};

class WisconsinWorkload : public WorkloadGenerator {
 public:
  explicit WisconsinWorkload(const WisconsinWorkloadOptions& options);

  TxnSpec Next() override;
  uint32_t db_size() const override { return options_.db_size; }
  std::string name() const override { return "wisconsin"; }

 private:
  WisconsinWorkloadOptions options_;
  Rng rng_;
  TxnId next_id_ = 1;
};

}  // namespace miniraid

#endif  // MINIRAID_TXN_WORKLOAD_H_

#ifndef MINIRAID_TXN_DRIVER_H_
#define MINIRAID_TXN_DRIVER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "core/cluster_api.h"
#include "metrics/stats.h"
#include "txn/transaction.h"
#include "txn/workload.h"

namespace miniraid {

/// How a Driver offers load to a cluster.
///
/// Closed loop (arrival_per_sec == 0): a fixed population of `concurrency`
/// outstanding transactions; a new one is submitted the moment a reply
/// arrives. This measures peak pipelined throughput.
///
/// Open loop (arrival_per_sec > 0): transactions arrive on a fixed or
/// Poisson schedule regardless of completions, the way production traffic
/// does; latency then includes any queueing behind the cluster's
/// submission window.
struct DriverOptions {
  /// Closed-loop population. 1 reproduces the paper's serial submission.
  uint32_t concurrency = 1;

  /// Open-loop arrival rate in transactions per second of cluster time
  /// (virtual under sim). 0 = closed loop.
  double arrival_per_sec = 0.0;
  /// Open loop only: exponential (Poisson) inter-arrival gaps instead of
  /// fixed spacing.
  bool poisson_arrivals = false;

  /// Transactions submitted before measurement starts (not recorded).
  uint32_t warmup_txns = 0;
  /// Transactions submitted and recorded in the measure phase.
  uint32_t measure_txns = 100;

  /// Seed for arrival-gap randomness (Poisson mode).
  uint64_t seed = 1;

  /// Coordinator for the i-th submission (0-based, warmup included).
  /// Default: round-robin over all sites.
  std::function<SiteId(uint64_t)> coordinator_for;

  /// Record each measured transaction's outcome in completion order
  /// (DriverReport::outcomes) — the determinism tests compare these.
  bool record_outcomes = false;

  /// Real backends only: give up if the run has not completed by then.
  Duration timeout = Seconds(120);
};

/// What a Driver::Run measured. Counters cover the measure phase only.
struct DriverReport {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t unreachable = 0;

  /// Submit-to-reply latency of every measured transaction.
  DurationStats latency;

  /// First measured submission to last measured reply.
  Duration elapsed = 0;

  /// False if the run timed out with replies still outstanding (real
  /// backends only; the counters then cover what completed in time).
  bool completed = false;

  /// Measured outcomes in completion order (record_outcomes mode).
  std::vector<TxnOutcome> outcomes;

  double CommittedPerSec() const;
  /// "txns=400 committed=398 ... thrpt=1234.5/s p50=1.2ms p95=3.4ms"
  std::string Summary() const;
  /// One JSON object with the numbers above, labelled `label`.
  std::string ToJson(std::string_view label) const;
};

/// Closed-/open-loop workload driver over the unified Cluster interface:
/// submits `warmup_txns + measure_txns` transactions from `workload`
/// through Cluster::SubmitTxn and aggregates outcome counts and latency
/// histograms for the measure phase. Runs unchanged against the simulator
/// (deterministic, virtual-time) and the real backends (wall-clock).
///
/// The driver's bookkeeping lives in the managing execution context, so a
/// single Driver must not run concurrently with another on the same
/// cluster; sequential phases (e.g. healthy / failed / recovering) may
/// share one cluster and one workload generator — transaction ids keep
/// incrementing across runs.
class Driver {
 public:
  /// `cluster` and `workload` must outlive the driver and are not owned.
  Driver(Cluster* cluster, WorkloadGenerator* workload,
         const DriverOptions& options);

  /// Runs one load phase to completion (blocking) and returns the report.
  DriverReport Run();

 private:
  Cluster* const cluster_;
  WorkloadGenerator* const workload_;
  DriverOptions options_;
};

}  // namespace miniraid

#endif  // MINIRAID_TXN_DRIVER_H_

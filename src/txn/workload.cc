#include "txn/workload.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

UniformWorkload::UniformWorkload(const UniformWorkloadOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.db_size, options.zipf_theta, &rng_) {
  MR_CHECK(options_.db_size > 0) << "workload needs at least one item";
  MR_CHECK(options_.max_txn_size > 0) << "max transaction size must be >= 1";
}

TxnSpec UniformWorkload::Next() {
  TxnSpec txn;
  txn.id = next_id_++;
  const uint32_t n_ops = static_cast<uint32_t>(
      1 + rng_.NextBounded(options_.max_txn_size));
  txn.ops.reserve(n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    const ItemId item = static_cast<ItemId>(zipf_.Next());
    if (rng_.NextBool(options_.write_fraction)) {
      txn.ops.push_back(Operation::Write(item, WriteValueFor(txn.id, item)));
    } else {
      txn.ops.push_back(Operation::Read(item));
    }
  }
  return txn;
}

std::string UniformWorkload::name() const {
  if (options_.zipf_theta == 0.0) return "uniform";
  return StrFormat("zipf(%.2f)", options_.zipf_theta);
}

Et1Workload::Et1Workload(const Et1WorkloadOptions& options)
    : options_(options), rng_(options.seed) {
  MR_CHECK(options_.accounts > 0 && options_.tellers > 0 &&
           options_.branches > 0 && options_.history_slots > 0)
      << "ET1 workload needs at least one record of each kind";
}

uint32_t Et1Workload::db_size() const {
  return options_.accounts + options_.tellers + options_.branches +
         options_.history_slots;
}

TxnSpec Et1Workload::Next() {
  TxnSpec txn;
  txn.id = next_id_++;
  const ItemId account = AccountItem(
      static_cast<uint32_t>(rng_.NextBounded(options_.accounts)));
  const ItemId teller =
      TellerItem(static_cast<uint32_t>(rng_.NextBounded(options_.tellers)));
  const ItemId branch =
      BranchItem(static_cast<uint32_t>(rng_.NextBounded(options_.branches)));
  const ItemId history = HistoryItem(history_cursor_);
  history_cursor_ = (history_cursor_ + 1) % options_.history_slots;

  // DebitCredit: read-modify-write account, teller, branch; insert history.
  txn.ops.push_back(Operation::Read(account));
  txn.ops.push_back(Operation::Write(account, WriteValueFor(txn.id, account)));
  txn.ops.push_back(Operation::Read(teller));
  txn.ops.push_back(Operation::Write(teller, WriteValueFor(txn.id, teller)));
  txn.ops.push_back(Operation::Read(branch));
  txn.ops.push_back(Operation::Write(branch, WriteValueFor(txn.id, branch)));
  txn.ops.push_back(Operation::Write(history, WriteValueFor(txn.id, history)));
  return txn;
}

WisconsinWorkload::WisconsinWorkload(const WisconsinWorkloadOptions& options)
    : options_(options), rng_(options.seed) {
  MR_CHECK(options_.db_size > 0) << "workload needs at least one item";
  MR_CHECK(options_.scan_length > 0) << "scan length must be >= 1";
}

TxnSpec WisconsinWorkload::Next() {
  TxnSpec txn;
  txn.id = next_id_++;
  if (rng_.NextBool(options_.scan_fraction)) {
    // Selection query: read a contiguous range (wrapping at db_size).
    const uint32_t len = std::min(options_.scan_length, options_.db_size);
    const uint32_t start =
        static_cast<uint32_t>(rng_.NextBounded(options_.db_size));
    for (uint32_t i = 0; i < len; ++i) {
      txn.ops.push_back(
          Operation::Read((start + i) % options_.db_size));
    }
  } else {
    // Point update: read-modify-write a single random item.
    const ItemId item =
        static_cast<ItemId>(rng_.NextBounded(options_.db_size));
    txn.ops.push_back(Operation::Read(item));
    txn.ops.push_back(Operation::Write(item, WriteValueFor(txn.id, item)));
  }
  return txn;
}

}  // namespace miniraid

#include "txn/driver.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace miniraid {

double DriverReport::CommittedPerSec() const {
  if (elapsed <= 0) return 0.0;
  return double(committed) / (double(elapsed) / double(Seconds(1)));
}

std::string DriverReport::Summary() const {
  std::string out = StrFormat(
      "txns=%llu committed=%llu aborted=%llu unreachable=%llu "
      "elapsed=%.1fms thrpt=%.1f/s",
      (unsigned long long)submitted, (unsigned long long)committed,
      (unsigned long long)aborted, (unsigned long long)unreachable,
      ToMillis(elapsed), CommittedPerSec());
  if (!latency.empty()) {
    out += StrFormat(" p50=%.2fms p95=%.2fms max=%.2fms",
                     ToMillis(latency.Percentile(0.5)),
                     ToMillis(latency.Percentile(0.95)),
                     ToMillis(latency.Max()));
  }
  if (!completed) out += " [TIMED OUT]";
  return out;
}

std::string DriverReport::ToJson(std::string_view label) const {
  return StrFormat(
      "{\"label\": \"%.*s\", \"submitted\": %llu, \"committed\": %llu, "
      "\"aborted\": %llu, \"unreachable\": %llu, \"elapsed_ms\": %.3f, "
      "\"committed_per_sec\": %.1f, \"latency_p50_ms\": %.3f, "
      "\"latency_p95_ms\": %.3f, \"latency_max_ms\": %.3f, "
      "\"completed\": %s}",
      int(label.size()), label.data(), (unsigned long long)submitted,
      (unsigned long long)committed, (unsigned long long)aborted,
      (unsigned long long)unreachable, ToMillis(elapsed), CommittedPerSec(),
      latency.empty() ? 0.0 : ToMillis(latency.Percentile(0.5)),
      latency.empty() ? 0.0 : ToMillis(latency.Percentile(0.95)),
      latency.empty() ? 0.0 : ToMillis(latency.Max()),
      completed ? "true" : "false");
}

namespace {

/// Per-run state; every field is touched only in the managing execution
/// context (submission closures and completion callbacks), so no locking.
/// Held by shared_ptr from every closure so a timed-out run can never leave
/// a callback with a dangling pointer.
struct RunCtx : std::enable_shared_from_this<RunCtx> {
  Cluster* cluster = nullptr;
  WorkloadGenerator* workload = nullptr;
  DriverOptions opts;
  uint64_t total = 0;
  std::function<SiteId(uint64_t)> coordinator_for;
  Rng rng{1};

  uint64_t issued = 0;
  uint64_t finished = 0;
  uint32_t inflight = 0;
  bool done = false;
  bool measure_started = false;
  TimePoint measure_start = 0;
  TimePoint last_reply = 0;
  DriverReport report;

  void Pump() {
    while (!done && inflight < opts.concurrency && issued < total) {
      IssueOne();
    }
  }

  void IssueOne() {
    if (done || issued >= total) return;
    const uint64_t index = issued++;
    const bool measured = index >= opts.warmup_txns;
    const TxnSpec txn = workload->Next();
    const SiteId coordinator = coordinator_for(index);
    const TimePoint t0 = cluster->Now();
    if (measured) {
      ++report.submitted;
      if (!measure_started) {
        measure_started = true;
        measure_start = t0;
      }
    }
    ++inflight;
    auto self = shared_from_this();
    cluster->SubmitTxn(txn, coordinator,
                       [self, measured, t0](const TxnResult& reply) {
                         self->OnReply(reply, measured, t0);
                       });
  }

  void OnReply(const TxnResult& reply, bool measured, TimePoint t0) {
    --inflight;
    ++finished;
    if (measured) {
      switch (reply.outcome) {
        case TxnOutcome::kCommitted:
          ++report.committed;
          break;
        case TxnOutcome::kCoordinatorUnreachable:
          ++report.unreachable;
          break;
        default:
          ++report.aborted;
          break;
      }
      const TimePoint now = cluster->Now();
      report.latency.Add(now - t0);
      last_reply = now;
      if (opts.record_outcomes) report.outcomes.push_back(reply.outcome);
    }
    if (finished == total) {
      done = true;
      return;
    }
    if (opts.arrival_per_sec <= 0) Pump();
  }

  void ScheduleNextArrival() {
    if (done || issued >= total) return;
    const double rate = opts.arrival_per_sec;
    double gap_sec = 1.0 / rate;
    if (opts.poisson_arrivals) {
      // Inverse-CDF exponential gap; 1 - U keeps the argument off zero.
      gap_sec = -std::log(1.0 - rng.NextDouble()) / rate;
    }
    auto self = shared_from_this();
    cluster->ScheduleAfter(Duration(gap_sec * 1e9), [self] {
      self->IssueOne();
      self->ScheduleNextArrival();
    });
  }
};

}  // namespace

Driver::Driver(Cluster* cluster, WorkloadGenerator* workload,
               const DriverOptions& options)
    : cluster_(cluster), workload_(workload), options_(options) {}

DriverReport Driver::Run() {
  auto ctx = std::make_shared<RunCtx>();
  ctx->cluster = cluster_;
  ctx->workload = workload_;
  ctx->opts = options_;
  ctx->total = uint64_t(options_.warmup_txns) + options_.measure_txns;
  ctx->rng = Rng(options_.seed);
  if (options_.coordinator_for) {
    ctx->coordinator_for = options_.coordinator_for;
  } else {
    const uint32_t n_sites = cluster_->n_sites();
    ctx->coordinator_for = [n_sites](uint64_t index) {
      return static_cast<SiteId>(index % n_sites);
    };
  }
  if (ctx->total == 0) {
    ctx->report.completed = true;
    return ctx->report;
  }

  cluster_->Post([ctx] {
    if (ctx->opts.arrival_per_sec > 0) {
      ctx->IssueOne();
      ctx->ScheduleNextArrival();
    } else {
      ctx->Pump();
    }
  });
  const bool finished =
      cluster_->Drive([ctx] { return ctx->done; }, options_.timeout);

  // Read the report in the managing context so a timed-out run cannot race
  // callbacks that are still arriving; setting `done` also stops any
  // not-yet-fired arrival timers from issuing more work.
  DriverReport report;
  bool extracted = false;
  // The by-ref captures cannot outlive this frame: the Drive() call below
  // blocks until `extracted` is set by this very lambda (with a CHECK on
  // the timeout path), so the posted task always completes before return.
  // miniraid-lint: allow(view-escape)
  cluster_->Post([&report, &extracted, ctx, finished] {
    ctx->done = true;
    ctx->report.completed = finished;
    ctx->report.elapsed =
        ctx->measure_started ? ctx->last_reply - ctx->measure_start : 0;
    report = ctx->report;
    extracted = true;
  });
  const bool read_back =
      cluster_->Drive([&extracted] { return extracted; }, Seconds(10));
  MR_CHECK(read_back) << "driver could not read back its report";
  return report;
}

}  // namespace miniraid

#ifndef MINIRAID_REPLICATION_FAIL_LOCKS_H_
#define MINIRAID_REPLICATION_FAIL_LOCKS_H_

#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "msg/message.h"

namespace miniraid {

/// The fail-lock table: one bit per (item, site). Bit s set on item x means
/// site s's copy of x missed at least one committed update while s was down
/// — the copy is out of date (paper §1.1). Implemented, as in the paper,
/// as "a bit map for each data item" so set/clear/test are O(1); per-site
/// counts are maintained incrementally so the recovery experiments can
/// sample them per transaction at no cost.
class FailLockTable {
 public:
  FailLockTable(uint32_t n_items, uint32_t n_sites);

  uint32_t n_items() const { return static_cast<uint32_t>(rows_.size()); }
  uint32_t n_sites() const { return n_sites_; }

  [[nodiscard]] bool IsSet(ItemId item, SiteId site) const;

  /// Sets the fail-lock; returns true if the bit transitioned 0 -> 1.
  bool Set(ItemId item, SiteId site);

  /// Clears the fail-lock; returns true if the bit transitioned 1 -> 0.
  bool Clear(ItemId item, SiteId site);

  /// The bitmap of sites whose copy of `item` is out of date.
  [[nodiscard]] Bitmap64 Row(ItemId item) const;

  /// Number of items currently fail-locked for `site`.
  [[nodiscard]] uint32_t CountForSite(SiteId site) const;

  /// Fraction of the database fail-locked for `site`, in [0, 1] (the
  /// two-step recovery threshold input, paper §3.2).
  [[nodiscard]] double FractionLockedFor(SiteId site) const;

  /// Items fail-locked for `site`, ascending. `limit` = 0 means all.
  [[nodiscard]] std::vector<ItemId> ItemsLockedFor(SiteId site, uint32_t limit = 0) const;

  /// Total number of set bits in the table.
  [[nodiscard]] uint64_t TotalSet() const { return total_set_; }

  /// Nonzero rows, for the wire (control transaction type 1).
  [[nodiscard]] std::vector<FailLockRow> ToWire() const;

  /// Unions remote rows into this table (a recovering site merges the
  /// fail-locks collected from each operational site).
  [[nodiscard]] Status MergeFrom(const std::vector<FailLockRow>& remote);

  std::string ToString() const;

 private:
  uint32_t n_sites_;
  /// Value type: every operational site keeps its own table and mutates it
  /// only from its own context (Site on its loop thread, baselines on the
  /// simulation's driving thread); tables cross contexts only as wire
  /// copies (ToWire / MergeFrom), never by reference.
  std::vector<Bitmap64> rows_ MR_CONTEXT_CONFINED(any);
  std::vector<uint32_t> per_site_count_ MR_CONTEXT_CONFINED(any);
  uint64_t total_set_ MR_CONTEXT_CONFINED(any) = 0;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_FAIL_LOCKS_H_

#include "replication/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {

LockManager::Outcome LockManager::Acquire(ItemId item, TxnId txn, Mode mode,
                                          std::function<void()> on_grant) {
  ItemLocks& locks = locks_[item];

  if (locks.holders.empty()) {
    locks.mode = mode;
    locks.holders.insert(txn);
    return Outcome::kGranted;
  }

  if (locks.holders.count(txn)) {
    // Re-entrant acquisition. Shared -> exclusive upgrades succeed only
    // for a sole holder; otherwise treat like any conflicting request.
    if (mode == Mode::kShared || locks.mode == Mode::kExclusive) {
      return Outcome::kGranted;
    }
    if (locks.holders.size() == 1) {
      locks.mode = Mode::kExclusive;
      return Outcome::kGranted;
    }
    // Fall through: upgrade conflicts with the other shared holders.
  }

  const bool compatible = mode == Mode::kShared &&
                          locks.mode == Mode::kShared &&
                          locks.queue.empty();  // no writer starvation
  if (compatible) {
    locks.holders.insert(txn);
    return Outcome::kGranted;
  }

  switch (options_.deadlock_policy) {
    case DeadlockPolicy::kWaitDie:
      // Wait only if older (smaller id) than every conflicting holder; a
      // younger requester dies so no cycle can form.
      for (const TxnId holder : locks.holders) {
        if (holder == txn) continue;
        if (txn > holder) return Outcome::kRejected;
      }
      break;
    case DeadlockPolicy::kWoundWait:
      // Wound every younger conflicting holder (deferred: the site aborts
      // them, and their ReleaseAll grants this queued request). Pinned
      // holders are skipped — the requester waits for them instead.
      for (const TxnId holder : locks.holders) {
        if (holder == txn) continue;
        if (holder > txn) Wound(holder);
      }
      break;
    case DeadlockPolicy::kTimeout:
      // Always queue; the site's lock-wait timer breaks cycles.
      break;
  }
  MR_CHECK(on_grant != nullptr) << "queued lock request needs a callback";
  locks.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
  return Outcome::kQueued;
}

void LockManager::Wound(TxnId victim) {
  if (pinned_.count(victim) || wounded_.count(victim)) return;
  wounded_.insert(victim);
  pending_wounds_.push_back(victim);
}

std::vector<TxnId> LockManager::TakePendingWounds() {
  std::vector<TxnId> out;
  out.swap(pending_wounds_);
  return out;
}

void LockManager::Pin(TxnId txn) { pinned_.insert(txn); }

void LockManager::GrantFromQueue(ItemId item) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  ItemLocks& locks = it->second;
  // Grant while compatible: one exclusive waiter alone, or a run of shared
  // waiters. Wound-wait grants oldest-first so every wait edge points
  // young -> old (see header); the other policies grant FIFO.
  const bool oldest_first =
      options_.deadlock_policy == DeadlockPolicy::kWoundWait;
  std::vector<std::function<void()>> callbacks;
  while (!locks.queue.empty()) {
    size_t pick = 0;
    if (oldest_first) {
      for (size_t i = 1; i < locks.queue.size(); ++i) {
        if (locks.queue[i].txn < locks.queue[pick].txn) pick = i;
      }
    }
    Waiter& next = locks.queue[pick];
    const bool sole_holder_upgrade =
        locks.holders.size() == 1 && locks.holders.count(next.txn) > 0;
    const bool can_grant =
        locks.holders.empty() || sole_holder_upgrade ||
        (next.mode == Mode::kShared && locks.mode == Mode::kShared);
    if (!can_grant) break;
    locks.mode = (locks.holders.empty() || sole_holder_upgrade)
                     ? next.mode
                     : locks.mode;
    locks.holders.insert(next.txn);
    callbacks.push_back(std::move(next.on_grant));
    locks.queue.erase(locks.queue.begin() + pick);
    if (locks.mode == Mode::kExclusive) break;
  }
  if (locks.holders.empty() && locks.queue.empty()) {
    locks_.erase(it);
  }
  for (auto& callback : callbacks) callback();
}

void LockManager::ReleaseAll(TxnId txn) {
  pinned_.erase(txn);
  wounded_.erase(txn);
  pending_wounds_.erase(
      std::remove(pending_wounds_.begin(), pending_wounds_.end(), txn),
      pending_wounds_.end());
  // Collect affected items first: grant callbacks may re-enter Acquire.
  std::vector<ItemId> affected;
  for (auto& [item, locks] : locks_) {
    const bool held = locks.holders.erase(txn) > 0;
    const auto queued = std::remove_if(
        locks.queue.begin(), locks.queue.end(),
        [txn](const Waiter& waiter) { return waiter.txn == txn; });
    const bool dequeued = queued != locks.queue.end();
    locks.queue.erase(queued, locks.queue.end());
    if (held || dequeued) affected.push_back(item);
  }
  for (const ItemId item : affected) GrantFromQueue(item);
  // Drop empty entries that GrantFromQueue did not visit/erase.
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.holders.empty() && it->second.queue.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockManager::CancelWaits(TxnId txn) {
  // Dropping a queued waiter can unblock the requests behind it (a shared
  // run dammed up behind a canceled exclusive), so re-run the grant loop.
  std::vector<ItemId> affected;
  for (auto& [item, locks] : locks_) {
    const auto queued = std::remove_if(
        locks.queue.begin(), locks.queue.end(),
        [txn](const Waiter& waiter) { return waiter.txn == txn; });
    if (queued != locks.queue.end()) {
      locks.queue.erase(queued, locks.queue.end());
      affected.push_back(item);
    }
  }
  for (const ItemId item : affected) GrantFromQueue(item);
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.holders.empty() && it->second.queue.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::Holds(ItemId item, TxnId txn) const {
  auto it = locks_.find(item);
  return it != locks_.end() && it->second.holders.count(txn) > 0;
}

size_t LockManager::HolderCount(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.holders.size();
}

size_t LockManager::QueueLength(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

size_t LockManager::TotalHeld() const {
  size_t total = 0;
  for (const auto& [item, locks] : locks_) total += locks.holders.size();
  return total;
}

}  // namespace miniraid

#ifndef MINIRAID_REPLICATION_PLACEMENT_H_
#define MINIRAID_REPLICATION_PLACEMENT_H_

#include <vector>

#include "common/bitmap.h"
#include "common/types.h"

namespace miniraid {

/// Which sites hold a copy of each item. For the paper's main experiments
/// the database is fully replicated (assumption 4) and every bit is set;
/// the partial-replication / control-transaction-type-3 extension (§3.2)
/// mutates it as backup copies are created and dropped.
class HoldersTable {
 public:
  /// Fully replicated: every site holds every item.
  HoldersTable(uint32_t n_items, uint32_t n_sites);

  /// Partial placement: `per_site[s]` lists the items site s holds.
  static HoldersTable FromPlacement(
      uint32_t n_items, uint32_t n_sites,
      const std::vector<std::vector<ItemId>>& per_site);

  uint32_t n_items() const { return static_cast<uint32_t>(rows_.size()); }
  uint32_t n_sites() const { return n_sites_; }

  [[nodiscard]] bool Holds(ItemId item, SiteId site) const;
  void Add(ItemId item, SiteId site);
  void Remove(ItemId item, SiteId site);

  [[nodiscard]] Bitmap64 Row(ItemId item) const;
  [[nodiscard]] std::vector<SiteId> HoldersOf(ItemId item) const;

  /// Items site `site` holds, ascending.
  [[nodiscard]] std::vector<ItemId> ItemsHeldBy(SiteId site) const;

 private:
  uint32_t n_sites_;
  std::vector<Bitmap64> rows_;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_PLACEMENT_H_

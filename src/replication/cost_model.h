#ifndef MINIRAID_REPLICATION_COST_MODEL_H_
#define MINIRAID_REPLICATION_COST_MODEL_H_

#include "common/clock.h"

namespace miniraid {

/// CPU costs the protocol engine charges to its SiteRuntime at the points
/// where the paper's implementation did work. Under the simulator these
/// durations advance virtual time (the paper's testbed serialized all sites
/// on one processor, which SimOptions::shared_cpu reproduces); under the
/// real thread/socket runtimes they are ignored and real work costs real
/// time.
///
/// `PaperCalibrated()` is fitted so that the compositions the paper reports
/// in Experiment 1 (transaction times with/without fail-lock maintenance,
/// control-transaction times, copier-transaction times) come out close to
/// the published numbers for the paper's configuration (4 sites, 50 items,
/// max transaction size 10, 9 ms per inter-site message). The absolute
/// values are *not* claims about modern hardware — they reconstruct the
/// 1987 testbed so the relative overheads can be validated.
struct CostModel {
  // -- database transaction processing ---------------------------------
  Duration txn_setup = 0;            // receive/parse one transaction request
  Duration per_read_op = 0;          // execute one read operation
  Duration per_write_op = 0;         // execute one write operation (stage)
  Duration prepare_send_per_site = 0;  // format one phase-1 copy update
  Duration participant_stage_per_item = 0;  // stage one item at a participant
  Duration commit_install_per_item = 0;     // install one committed item
  Duration faillock_maint_per_item = 0;     // set/clear bits for one item
  Duration ack_format = 0;           // format one small message (ack/commit)
  Duration reply_format = 0;         // format the reply to the managing site

  // -- control transaction type 1 ---------------------------------------
  Duration announce_format = 0;       // recovering site formats one announce
  Duration recovery_format_base = 0;  // operational site: vector+locks msg
  Duration recovery_format_per_item = 0;  // ... per nonzero fail-lock row
  Duration recovery_install = 0;      // recovering site installs one reply

  // -- control transaction type 2 ---------------------------------------
  Duration failure_detect = 0;        // initiator updates its vector
  Duration failure_update = 0;        // receiver updates its vector

  // -- copier transactions and the special clear-fail-locks txn ---------
  Duration copier_setup = 0;          // coordinator decides + formats request
  Duration copy_serve_base = 0;       // serving site: lookup + format reply
  Duration copy_serve_per_item = 0;
  Duration copy_install_per_item = 0;  // install one fetched copy
  Duration clear_locks_format = 0;     // format one clear-fail-locks msg
  Duration clear_locks_apply_base = 0;   // receiver: process the special txn
  Duration clear_locks_apply_per_item = 0;

  /// All-zero model: protocol logic only (unit tests, count-based
  /// experiments, real-time runs).
  static CostModel Zero() { return CostModel{}; }

  /// Fitted to the paper's Experiment-1 measurements (see EXPERIMENTS.md
  /// for the calibration table).
  static CostModel PaperCalibrated();
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_COST_MODEL_H_

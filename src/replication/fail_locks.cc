#include "replication/fail_locks.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {

FailLockTable::FailLockTable(uint32_t n_items, uint32_t n_sites)
    : n_sites_(n_sites),
      rows_(n_items),
      per_site_count_(n_sites, 0) {
  MR_CHECK(n_sites >= 1 && n_sites <= kMaxSites)
      << "site count " << n_sites << " out of range";
}

bool FailLockTable::IsSet(ItemId item, SiteId site) const {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "fail-lock index out of range";
  return rows_[item].Test(site);
}

bool FailLockTable::Set(ItemId item, SiteId site) {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "fail-lock index out of range";
  if (rows_[item].Test(site)) return false;
  rows_[item].Set(site);
  ++per_site_count_[site];
  ++total_set_;
  return true;
}

bool FailLockTable::Clear(ItemId item, SiteId site) {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "fail-lock index out of range";
  if (!rows_[item].Test(site)) return false;
  rows_[item].Clear(site);
  --per_site_count_[site];
  --total_set_;
  return true;
}

Bitmap64 FailLockTable::Row(ItemId item) const {
  MR_CHECK(item < rows_.size()) << "item out of range";
  return rows_[item];
}

uint32_t FailLockTable::CountForSite(SiteId site) const {
  MR_CHECK(site < n_sites_) << "site out of range";
  return per_site_count_[site];
}

double FailLockTable::FractionLockedFor(SiteId site) const {
  if (rows_.empty()) return 0.0;
  return double(CountForSite(site)) / double(rows_.size());
}

std::vector<ItemId> FailLockTable::ItemsLockedFor(SiteId site,
                                                  uint32_t limit) const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < rows_.size(); ++item) {
    if (rows_[item].Test(site)) {
      out.push_back(item);
      if (limit != 0 && out.size() >= limit) break;
    }
  }
  return out;
}

std::vector<FailLockRow> FailLockTable::ToWire() const {
  std::vector<FailLockRow> out;
  for (ItemId item = 0; item < rows_.size(); ++item) {
    if (rows_[item].Any()) {
      out.push_back(FailLockRow{item, rows_[item].bits()});
    }
  }
  return out;
}

Status FailLockTable::MergeFrom(const std::vector<FailLockRow>& remote) {
  for (const FailLockRow& row : remote) {
    if (row.item >= rows_.size()) {
      return Status::InvalidArgument(
          StrFormat("fail-lock row for unknown item %u", row.item));
    }
    const Bitmap64 incoming(row.bits);
    for (SiteId site = 0; site < n_sites_; ++site) {
      if (incoming.Test(site)) Set(row.item, site);
    }
  }
  return Status::Ok();
}

std::string FailLockTable::ToString() const {
  std::string out;
  for (ItemId item = 0; item < rows_.size(); ++item) {
    if (!rows_[item].Any()) continue;
    if (!out.empty()) out += " ";
    out += StrFormat("%u:%llx", item, (unsigned long long)rows_[item].bits());
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace miniraid

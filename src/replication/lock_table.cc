#include "replication/lock_table.h"

#include <algorithm>

#include "common/logging.h"

namespace miniraid {

LockTable::Outcome LockTable::Acquire(ItemId item, TxnId txn, Mode mode,
                                      std::function<void()> on_grant) {
  ItemLocks& locks = locks_[item];

  if (locks.holders.empty()) {
    locks.mode = mode;
    locks.holders.insert(txn);
    return Outcome::kGranted;
  }

  if (locks.holders.count(txn)) {
    // Re-entrant acquisition. Shared -> exclusive upgrades succeed only
    // for a sole holder; otherwise treat like any conflicting request.
    if (mode == Mode::kShared || locks.mode == Mode::kExclusive) {
      return Outcome::kGranted;
    }
    if (locks.holders.size() == 1) {
      locks.mode = Mode::kExclusive;
      return Outcome::kGranted;
    }
    // Fall through: upgrade conflicts with the other shared holders.
  }

  const bool compatible = mode == Mode::kShared &&
                          locks.mode == Mode::kShared &&
                          locks.queue.empty();  // no writer starvation
  if (compatible) {
    locks.holders.insert(txn);
    return Outcome::kGranted;
  }

  // WAIT-DIE: wait only if older (smaller id) than every conflicting
  // holder; a younger requester dies so no cycle can form.
  for (const TxnId holder : locks.holders) {
    if (holder == txn) continue;
    if (txn > holder) return Outcome::kRejected;
  }
  MR_CHECK(on_grant != nullptr) << "queued lock request needs a callback";
  locks.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
  return Outcome::kQueued;
}

void LockTable::GrantFromQueue(ItemId item) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  ItemLocks& locks = it->second;
  // Grant in FIFO order while compatible: one exclusive waiter alone, or a
  // run of shared waiters.
  std::vector<std::function<void()>> callbacks;
  while (!locks.queue.empty()) {
    const Waiter& next = locks.queue.front();
    const bool can_grant =
        locks.holders.empty() ||
        (next.mode == Mode::kShared && locks.mode == Mode::kShared);
    if (!can_grant) break;
    locks.mode = locks.holders.empty() ? next.mode : locks.mode;
    locks.holders.insert(next.txn);
    callbacks.push_back(std::move(locks.queue.front().on_grant));
    locks.queue.erase(locks.queue.begin());
    if (locks.mode == Mode::kExclusive) break;
  }
  if (locks.holders.empty() && locks.queue.empty()) {
    locks_.erase(it);
  }
  for (auto& callback : callbacks) callback();
}

void LockTable::ReleaseAll(TxnId txn) {
  // Collect affected items first: grant callbacks may re-enter Acquire.
  std::vector<ItemId> affected;
  for (auto& [item, locks] : locks_) {
    const bool held = locks.holders.erase(txn) > 0;
    const auto queued = std::remove_if(
        locks.queue.begin(), locks.queue.end(),
        [txn](const Waiter& waiter) { return waiter.txn == txn; });
    const bool dequeued = queued != locks.queue.end();
    locks.queue.erase(queued, locks.queue.end());
    if (held || dequeued) affected.push_back(item);
  }
  for (const ItemId item : affected) GrantFromQueue(item);
  // Drop empty entries that GrantFromQueue did not visit/erase.
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.holders.empty() && it->second.queue.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockTable::Holds(ItemId item, TxnId txn) const {
  auto it = locks_.find(item);
  return it != locks_.end() && it->second.holders.count(txn) > 0;
}

size_t LockTable::HolderCount(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.holders.size();
}

size_t LockTable::QueueLength(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

size_t LockTable::TotalHeld() const {
  size_t total = 0;
  for (const auto& [item, locks] : locks_) total += locks.holders.size();
  return total;
}

}  // namespace miniraid

#ifndef MINIRAID_REPLICATION_OPTIONS_H_
#define MINIRAID_REPLICATION_OPTIONS_H_

#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "metrics/trace.h"
#include "replication/cost_model.h"

namespace miniraid {

/// How a site schedules the transactions it coordinates.
enum class ConcurrencyMode : uint8_t {
  /// One coordination at a time per site (the paper's assumption 2);
  /// incoming requests queue behind the active one. The default — the
  /// paper experiments reproduce unchanged.
  kSerial = 0,
  /// Strict per-item two-phase locking: up to `max_executors` concurrent
  /// coordinations per site, each holding shared locks on its read set and
  /// exclusive locks on its write set from acquisition through commit.
  kTwoPhaseLocking = 1,
};

/// How lock-wait cycles are broken under kTwoPhaseLocking.
enum class DeadlockPolicy : uint8_t {
  /// WAIT-DIE on transaction ids: an older requester (smaller id) waits,
  /// a younger one is rejected immediately (kAbortedLockConflict).
  kWaitDie = 0,
  /// WOUND-WAIT on transaction ids: an older requester wounds younger
  /// conflicting holders (they abort with kAbortedDeadlock), a younger
  /// requester waits. Locks are granted from the queue oldest-first.
  kWoundWait = 1,
  /// Always queue on conflict; a request that waits longer than
  /// `lock_wait_timeout` aborts its transaction (kAbortedLockTimeout).
  kTimeout = 2,
};

/// Intra-site concurrency control, grouped in one sub-struct (mirroring
/// the TransportFaults pattern) so call sites configure scheduling as a
/// unit: `options.concurrency = {.mode = ..., .max_executors = ...}`.
struct ConcurrencyOptions {
  ConcurrencyMode mode = ConcurrencyMode::kSerial;

  /// Upper bound on concurrent coordinations per site under
  /// kTwoPhaseLocking (ignored — effectively 1 — under kSerial). All
  /// executors share the site's one execution context; concurrency means
  /// logically interleaved 2PC coordinations, not threads.
  uint32_t max_executors = 8;

  DeadlockPolicy deadlock_policy = DeadlockPolicy::kWaitDie;

  /// kTimeout policy only: how long a lock request may sit queued before
  /// its transaction aborts.
  Duration lock_wait_timeout = Milliseconds(500);

  bool locking() const { return mode == ConcurrencyMode::kTwoPhaseLocking; }

  /// Coordination slots the site engine actually uses.
  uint32_t EffectiveExecutors() const {
    return locking() ? (max_executors > 0 ? max_executors : 1) : 1;
  }
};

/// Group commit (batched 2PC). Concurrent coordinations at one site whose
/// participant sets are identical — under full replication (assumption 4)
/// that is every concurrent transaction — drain into one BatchPrepare /
/// BatchCommit round instead of N independent 2PC rounds, and the
/// participants' fail-lock maintenance for the whole batch collapses into
/// a single table update. Requires kTwoPhaseLocking (a serial site never
/// has two coordinations in flight, so there is nothing to batch).
struct BatchingOptions {
  /// Largest number of member transactions per batch. <= 1 disables
  /// batching entirely — the default, and the paper's measured behavior
  /// (one 2PC round per transaction).
  uint32_t max_batch = 1;

  /// How long the first member of a forming batch waits for company
  /// before the batch is flushed anyway. 0 flushes at the end of the
  /// current scheduling step (members only coalesce when they become
  /// ready back-to-back, e.g. drained together from the request queue).
  Duration batch_linger = 0;

  bool enabled() const { return max_batch > 1; }
};

/// Static configuration shared by every site in a cluster.
struct SiteOptions {
  /// Number of database sites (the managing site is extra, see
  /// `managing_site`).
  uint32_t n_sites = 2;

  /// Size of the frequently-referenced hot set (paper: 50).
  uint32_t db_size = 50;

  /// Id of the managing site (by convention n_sites; it holds no replica
  /// and is never counted operational for ROWAA purposes).
  SiteId managing_site = kInvalidSite;

  /// Per-site item placement; empty means full replication (the paper's
  /// assumption 4). Used by the partial-replication / type-3 extension.
  std::vector<std::vector<ItemId>> placement;

  /// Toggle for Experiment 1: when false, the fail-lock maintenance code in
  /// the commit step is skipped entirely (work and CPU charge), matching
  /// the paper's "fail-locks maintenance code removed from the software".
  bool maintain_fail_locks = true;

  /// Modelled CPU costs (Zero for pure-logic runs).
  CostModel costs = CostModel::Zero();

  /// How long a site waits for acknowledgements (2PC acks, copy replies,
  /// recovery info) before declaring the silent party failed.
  Duration ack_timeout = Milliseconds(1000);

  /// Lossy-network retry budget. With retry_limit = 0 (the default, and
  /// the paper's reliable-network behavior) the first expired ack_timeout
  /// declares the silent party failed. With retry_limit = N, a timeout
  /// first retries up to N times — a coordinator re-sends the current
  /// phase's message (copy request / Prepare / CommitDecision) to the
  /// still-silent sites only, a prepared participant queries the
  /// coordinator for the decision instead of unilaterally discarding, and
  /// a recovering site re-announces the same session — each wait stretched
  /// by retry_backoff per attempt. Only after the budget is exhausted does
  /// the legacy failure handling run.
  uint32_t retry_limit = 0;
  double retry_backoff = 1.5;

  /// Two-step recovery (paper §3.2 proposal). When the fraction of this
  /// site's copies that are fail-locked drops to or below this threshold,
  /// the site enters step two and proactively issues batch copier
  /// transactions instead of waiting for reads to demand them. 0 disables
  /// step two (the paper's measured implementation); 1.0 makes recovery
  /// fully proactive.
  double batch_copier_threshold = 0.0;

  /// Items refreshed per batch copier transaction.
  uint32_t batch_copier_chunk = 10;

  /// Control transaction type 3 (paper §3.2 proposal): when this site
  /// detects it holds the last operational up-to-date copy of an item, it
  /// creates a backup copy on a site that lacks one.
  bool enable_type3 = false;

  /// Crash semantics. The paper simulates failure by making the site
  /// inactive with its memory intact (false). With true, a crash wipes the
  /// database and fail-lock table (a cold restart); at recovery the site
  /// conservatively fail-locks every copy it holds, so the whole database
  /// is refreshed through copier transactions and writes before any of it
  /// is served. The session counter survives either way (a persistent boot
  /// counter — session numbers must never repeat for the type-2
  /// stale-announcement guard to work).
  bool lose_state_on_crash = false;

  /// Opt-in concurrency-control extension (the paper's deferred "complete
  /// RAID" integration): strict two-phase item locking with a configurable
  /// deadlock policy and executor bound. Defaults to serial execution —
  /// the paper's experiments run without concurrency control
  /// (assumption 2). See ConcurrencyOptions.
  ConcurrencyOptions concurrency;

  /// Group commit (batched 2PC): coalesces concurrent coordinations that
  /// share a participant set into one BatchPrepare/BatchCommit round with
  /// a single fail-lock table update per participant. Only effective under
  /// kTwoPhaseLocking; defaults off (max_batch = 1). See BatchingOptions.
  BatchingOptions batching;

  /// Optional shared protocol trace (not owned; must outlive the sites).
  /// Only enable under the simulator — TraceLog is not thread-safe.
  TraceLog* trace = nullptr;

  /// Durability hook: invoked from the site's execution context after every
  /// local application of a committed write or installed copy, with the
  /// item's new (value, version). Drivers mirror these into a
  /// DurableDatabase (src/storage) and feed the image back through
  /// Site::RestoreImage after a process restart.
  std::function<void(ItemId, Value, Version)> on_apply;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_OPTIONS_H_

#ifndef MINIRAID_REPLICATION_OPTIONS_H_
#define MINIRAID_REPLICATION_OPTIONS_H_

#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "metrics/trace.h"
#include "replication/cost_model.h"

namespace miniraid {

/// Static configuration shared by every site in a cluster.
struct SiteOptions {
  /// Number of database sites (the managing site is extra, see
  /// `managing_site`).
  uint32_t n_sites = 2;

  /// Size of the frequently-referenced hot set (paper: 50).
  uint32_t db_size = 50;

  /// Id of the managing site (by convention n_sites; it holds no replica
  /// and is never counted operational for ROWAA purposes).
  SiteId managing_site = kInvalidSite;

  /// Per-site item placement; empty means full replication (the paper's
  /// assumption 4). Used by the partial-replication / type-3 extension.
  std::vector<std::vector<ItemId>> placement;

  /// Toggle for Experiment 1: when false, the fail-lock maintenance code in
  /// the commit step is skipped entirely (work and CPU charge), matching
  /// the paper's "fail-locks maintenance code removed from the software".
  bool maintain_fail_locks = true;

  /// Modelled CPU costs (Zero for pure-logic runs).
  CostModel costs = CostModel::Zero();

  /// How long a site waits for acknowledgements (2PC acks, copy replies,
  /// recovery info) before declaring the silent party failed.
  Duration ack_timeout = Milliseconds(1000);

  /// Lossy-network retry budget. With retry_limit = 0 (the default, and
  /// the paper's reliable-network behavior) the first expired ack_timeout
  /// declares the silent party failed. With retry_limit = N, a timeout
  /// first retries up to N times — a coordinator re-sends the current
  /// phase's message (copy request / Prepare / CommitDecision) to the
  /// still-silent sites only, a prepared participant queries the
  /// coordinator for the decision instead of unilaterally discarding, and
  /// a recovering site re-announces the same session — each wait stretched
  /// by retry_backoff per attempt. Only after the budget is exhausted does
  /// the legacy failure handling run.
  uint32_t retry_limit = 0;
  double retry_backoff = 1.5;

  /// Two-step recovery (paper §3.2 proposal). When the fraction of this
  /// site's copies that are fail-locked drops to or below this threshold,
  /// the site enters step two and proactively issues batch copier
  /// transactions instead of waiting for reads to demand them. 0 disables
  /// step two (the paper's measured implementation); 1.0 makes recovery
  /// fully proactive.
  double batch_copier_threshold = 0.0;

  /// Items refreshed per batch copier transaction.
  uint32_t batch_copier_chunk = 10;

  /// Control transaction type 3 (paper §3.2 proposal): when this site
  /// detects it holds the last operational up-to-date copy of an item, it
  /// creates a backup copy on a site that lacks one.
  bool enable_type3 = false;

  /// Crash semantics. The paper simulates failure by making the site
  /// inactive with its memory intact (false). With true, a crash wipes the
  /// database and fail-lock table (a cold restart); at recovery the site
  /// conservatively fail-locks every copy it holds, so the whole database
  /// is refreshed through copier transactions and writes before any of it
  /// is served. The session counter survives either way (a persistent boot
  /// counter — session numbers must never repeat for the type-2
  /// stale-announcement guard to work).
  bool lose_state_on_crash = false;

  /// Opt-in concurrency-control extension (the paper's deferred "complete
  /// RAID" integration): strict two-phase item locking — shared locks for
  /// the coordinator's local reads, exclusive locks acquired at every site
  /// through phase one for writes — with WAIT-DIE deadlock avoidance
  /// (younger conflicting transactions abort with kAbortedLockConflict and
  /// can be retried). Off by default: the paper's experiments run without
  /// concurrency control (assumption 2).
  bool enable_locking = false;

  /// Optional shared protocol trace (not owned; must outlive the sites).
  /// Only enable under the simulator — TraceLog is not thread-safe.
  TraceLog* trace = nullptr;

  /// Durability hook: invoked from the site's execution context after every
  /// local application of a committed write or installed copy, with the
  /// item's new (value, version). Drivers mirror these into a
  /// DurableDatabase (src/storage) and feed the image back through
  /// Site::RestoreImage after a process restart.
  std::function<void(ItemId, Value, Version)> on_apply;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_OPTIONS_H_

#include "replication/cost_model.h"

namespace miniraid {

CostModel CostModel::PaperCalibrated() {
  CostModel m;
  // Database transactions. With 4 sites, 50 items, max size 10 and 9 ms
  // messages these compose to ~176 ms coordinator / ~90 ms participant
  // without fail-lock maintenance, ~186/​97 ms with it (paper §2.2.1).
  m.txn_setup = Milliseconds(4);
  m.per_read_op = Microseconds(1700);
  m.per_write_op = Microseconds(1700);
  m.prepare_send_per_site = Milliseconds(3);
  m.participant_stage_per_item = Microseconds(7500);
  m.commit_install_per_item = Microseconds(4500);
  m.faillock_maint_per_item = Microseconds(950);
  m.ack_format = Milliseconds(2);
  m.reply_format = Milliseconds(2);

  // Control transaction type 1 (paper: 190 ms at the recovering site,
  // 50 ms at an operational site; the operational-site figure is dominated
  // by formatting the session vector + fail-locks message).
  m.announce_format = Milliseconds(4);
  m.recovery_format_base = Milliseconds(24);
  m.recovery_format_per_item = Microseconds(500);
  m.recovery_install = Milliseconds(18);

  // Control transaction type 2 (paper: 68 ms, "the sending of the failure
  // announcement to a particular site and the updating of the session
  // vector at that site").
  m.failure_detect = Milliseconds(25);
  m.failure_update = Milliseconds(59);

  // Copier transactions (paper: 25 ms to serve a copy request, 20 ms for a
  // clear-fail-locks transaction, 270 ms for a database transaction that
  // generated one copier transaction).
  m.copier_setup = Milliseconds(25);
  m.copy_serve_base = Milliseconds(10);
  m.copy_serve_per_item = Milliseconds(3);
  m.copy_install_per_item = Milliseconds(4);
  m.clear_locks_format = Milliseconds(2);
  m.clear_locks_apply_base = Milliseconds(9);
  m.clear_locks_apply_per_item = Microseconds(500);
  return m;
}

}  // namespace miniraid

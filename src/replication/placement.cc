#include "replication/placement.h"

#include "common/logging.h"

namespace miniraid {

HoldersTable::HoldersTable(uint32_t n_items, uint32_t n_sites)
    : n_sites_(n_sites), rows_(n_items) {
  MR_CHECK(n_sites >= 1 && n_sites <= kMaxSites)
      << "site count " << n_sites << " out of range";
  for (Bitmap64& row : rows_) row.SetAll(n_sites);
}

HoldersTable HoldersTable::FromPlacement(
    uint32_t n_items, uint32_t n_sites,
    const std::vector<std::vector<ItemId>>& per_site) {
  HoldersTable table(n_items, n_sites);
  for (Bitmap64& row : table.rows_) row.ClearAll();
  MR_CHECK(per_site.size() == n_sites)
      << "placement must list items for every site";
  for (SiteId site = 0; site < n_sites; ++site) {
    for (ItemId item : per_site[site]) {
      MR_CHECK(item < n_items) << "placement item out of range";
      table.rows_[item].Set(site);
    }
  }
  return table;
}

bool HoldersTable::Holds(ItemId item, SiteId site) const {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "holders index out of range";
  return rows_[item].Test(site);
}

void HoldersTable::Add(ItemId item, SiteId site) {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "holders index out of range";
  rows_[item].Set(site);
}

void HoldersTable::Remove(ItemId item, SiteId site) {
  MR_CHECK(item < rows_.size() && site < n_sites_)
      << "holders index out of range";
  rows_[item].Clear(site);
}

Bitmap64 HoldersTable::Row(ItemId item) const {
  MR_CHECK(item < rows_.size()) << "item out of range";
  return rows_[item];
}

std::vector<SiteId> HoldersTable::HoldersOf(ItemId item) const {
  const Bitmap64 row = Row(item);
  std::vector<SiteId> out;
  for (SiteId site = 0; site < n_sites_; ++site) {
    if (row.Test(site)) out.push_back(site);
  }
  return out;
}

std::vector<ItemId> HoldersTable::ItemsHeldBy(SiteId site) const {
  MR_CHECK(site < n_sites_) << "site out of range";
  std::vector<ItemId> out;
  for (ItemId item = 0; item < rows_.size(); ++item) {
    if (rows_[item].Test(site)) out.push_back(item);
  }
  return out;
}

}  // namespace miniraid

#ifndef MINIRAID_REPLICATION_SESSION_VECTOR_H_
#define MINIRAID_REPLICATION_SESSION_VECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "msg/message.h"

namespace miniraid {

/// A nominal session vector: one site's view of every site's session number
/// and operational state (paper §1.1-1.2). "A site uses its nominal session
/// vector to determine which sites are operational (only operational sites
/// can participate in a protocol based on the ROWAA strategy)."
class SessionVector {
 public:
  /// All sites start up, in session 1.
  explicit SessionVector(uint32_t n_sites);

  uint32_t n_sites() const { return static_cast<uint32_t>(entries_.size()); }

  [[nodiscard]] SessionNumber session(SiteId site) const { return At(site).session; }
  [[nodiscard]] SiteStatus status(SiteId site) const { return At(site).status; }
  [[nodiscard]] bool IsUp(SiteId site) const { return status(site) == SiteStatus::kUp; }

  /// Records that `site` entered session `session` in state `status`.
  void Set(SiteId site, SessionNumber session, SiteStatus status);

  /// Marks `site` down within its current session (failure detection).
  void MarkDown(SiteId site);

  /// Marks `site` up with a (strictly newer) session number.
  void MarkUp(SiteId site, SessionNumber session);

  /// Sites currently believed up, ascending by id.
  [[nodiscard]] std::vector<SiteId> OperationalSites() const;
  [[nodiscard]] uint32_t OperationalCount() const;

  [[nodiscard]] std::vector<SessionEntryWire> ToWire() const;

  /// Lattice join with a remote view: for each site, a higher session wins
  /// outright; at an equal session "down" wins over "up" (the remote site
  /// has newer failure news — a site can only leave the down state by
  /// starting a new session). kWaitingToRecover/kTerminating merge like
  /// "down" for ROWAA purposes.
  [[nodiscard]] Status MergeFrom(const std::vector<SessionEntryWire>& remote);

  std::string ToString() const;

  friend bool operator==(const SessionVector&, const SessionVector&) = default;

 private:
  struct Entry {
    SessionNumber session = 1;
    SiteStatus status = SiteStatus::kUp;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  const Entry& At(SiteId site) const;
  Entry& At(SiteId site);

  std::vector<Entry> entries_;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_SESSION_VECTOR_H_

#ifndef MINIRAID_REPLICATION_LOCK_TABLE_H_
#define MINIRAID_REPLICATION_LOCK_TABLE_H_

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"

namespace miniraid {

/// Per-site item lock table for the opt-in concurrency-control extension
/// (SiteOptions::enable_locking): shared locks for a coordinator's local
/// reads, exclusive locks for writes (acquired at every site through phase
/// one of 2PC). Deadlocks are avoided with WAIT-DIE on transaction ids:
/// an older requester (smaller id) waits for the conflicting holder, a
/// younger one is rejected immediately (its transaction aborts and may be
/// retried by the client).
///
/// Single-threaded per the site's execution context; grant callbacks fire
/// synchronously from Release().
class LockTable {
 public:
  enum class Mode : uint8_t { kShared = 0, kExclusive = 1 };

  enum class Outcome : uint8_t {
    kGranted,   // lock held; proceed now
    kQueued,    // compatible-when-released; on_grant will fire later
    kRejected,  // wait-die: requester is younger than a conflicting holder
  };

  /// Requests `mode` on `item` for `txn`. Re-entrant: a holder re-acquiring
  /// (or upgrading shared->exclusive when it is the only holder) is granted.
  /// `on_grant` is invoked exactly once if and when a kQueued request is
  /// eventually granted; it must not be null for queued requests.
  Outcome Acquire(ItemId item, TxnId txn, Mode mode,
                  std::function<void()> on_grant);

  /// Releases every lock `txn` holds and cancels its queued requests,
  /// granting whatever unblocks (callbacks fire before return).
  void ReleaseAll(TxnId txn);

  bool Holds(ItemId item, TxnId txn) const;
  /// Locks currently held (any mode) on `item`.
  size_t HolderCount(ItemId item) const;
  /// Queued (not yet granted) requests on `item`.
  size_t QueueLength(ItemId item) const;
  /// Total held locks across all items (for tests / leak checks).
  size_t TotalHeld() const;

 private:
  struct Waiter {
    TxnId txn;
    Mode mode;
    std::function<void()> on_grant;
  };

  struct ItemLocks {
    Mode mode = Mode::kShared;
    std::set<TxnId> holders;
    std::vector<Waiter> queue;  // FIFO among compatible waiters
  };

  void GrantFromQueue(ItemId item);

  std::map<ItemId, ItemLocks> locks_;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_LOCK_TABLE_H_

#ifndef MINIRAID_REPLICATION_SITE_H_
#define MINIRAID_REPLICATION_SITE_H_

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/runtime.h"
#include "common/thread_annotations.h"
#include "db/database.h"
#include "net/transport.h"
#include "replication/counters.h"
#include "replication/fail_locks.h"
#include "replication/lock_manager.h"
#include "replication/options.h"
#include "replication/placement.h"
#include "replication/session_vector.h"

namespace miniraid {

/// One database site: the protocol engine implementing the paper's
/// replicated copy control — ROWAA transaction processing via two-phase
/// commit (Appendix A), fail-lock maintenance inside the commit step,
/// copier transactions with the special fail-lock-clearing transaction,
/// control transactions type 1 (recovery), type 2 (failure announcement),
/// and the proposed type 3 (backup-copy creation), plus the proposed
/// two-step recovery with batch copiers.
///
/// The engine is runtime-agnostic: all time, timers, CPU accounting, and
/// messaging go through SiteRuntime and Transport, so the identical code
/// runs under the deterministic simulator and on real threads/sockets.
/// All methods must be called from the site's execution context
/// (MR_RUNS_ON(loop), enforced by tools/miniraid-analyze).
///
/// Execution is serial by default (paper assumption 2). Under
/// ConcurrencyOptions::mode == kTwoPhaseLocking the site runs up to
/// max_executors coordinations concurrently — logically interleaved in
/// the one execution context, isolated by per-item strict two-phase locks
/// (see LockManager and docs/PROTOCOL.md §9 for why commit-time fail-lock
/// maintenance stays atomic with respect to the concurrent executors).
class Site : public MessageHandler {
 public:
  Site(SiteId id, const SiteOptions& options, Transport* transport,
       SiteRuntime* runtime);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Transport entry point.
  MR_RUNS_ON(loop) void OnMessage(const Message& msg) override;

  /// Simulated crash (the managing site's kFailSite does this): the site
  /// stops participating in all system actions until recovery. State is
  /// retained, as in the paper's implementation, where a failed site
  /// "would remain inactive until recovery was initiated".
  MR_RUNS_ON(loop) void Crash();

  /// Begins the control-type-1 recovery protocol (kRecoverSite does this).
  MR_RUNS_ON(loop) void StartRecovery();

  /// Restores a durable image into a DOWN site that lost its volatile
  /// state (lose_state_on_crash): the modelled equivalent of a process
  /// restarting from its DurableDatabase before rejoining via control
  /// type 1. After the restore only the updates committed while the site
  /// was down need fail-lock-driven refresh, exactly as with retained
  /// state. kFailedPrecondition unless the site is down.
  MR_RUNS_ON(loop) Status RestoreImage(const std::vector<ItemCopy>& image);

  // -- introspection (drivers, experiments, tests) -----------------------

  MR_RUNS_ON(any) SiteId id() const { return id_; }
  MR_RUNS_ON(loop) SiteStatus local_status() const { return status_; }
  MR_RUNS_ON(loop) bool is_up() const { return status_ == SiteStatus::kUp; }

  /// True while the site is up but still holds fail-locks on its own
  /// copies (the paper's "recovery period").
  MR_RUNS_ON(loop) bool InRecoveryPeriod() const {
    return is_up() && fail_locks_.CountForSite(id_) > 0;
  }

  MR_RUNS_ON(loop) const Database& db() const { return db_; }
  MR_RUNS_ON(loop) const SessionVector& session_vector() const { return session_vector_; }
  MR_RUNS_ON(loop) const FailLockTable& fail_locks() const { return fail_locks_; }
  MR_RUNS_ON(loop) const HoldersTable& holders() const { return holders_; }
  MR_RUNS_ON(loop) const SiteCounters& counters() const { return counters_; }

  /// Mutable counters, so drivers can reset between warmup and measurement
  /// windows (the paper measured "after a stable state of transaction
  /// processing was achieved").
  MR_RUNS_ON(loop) SiteCounters& mutable_counters() { return counters_; }
  MR_RUNS_ON(any) const SiteOptions& options() const { return options_; }

  /// Number of this site's own copies currently fail-locked.
  MR_RUNS_ON(loop) uint32_t OwnFailLockCount() const { return fail_locks_.CountForSite(id_); }

  /// True if no transaction / recovery is in flight at this site.
  MR_RUNS_ON(loop) bool IsIdle() const {
    return coords_.empty() && !batch_.has_value() && participations_.empty() &&
           !recovery_.has_value() && queued_requests_.empty() &&
           forming_batches_.empty() && active_batches_.empty() &&
           batch_participations_.empty();
  }

  /// Transaction requests waiting for an executor slot (requests that
  /// arrive while every slot is busy are queued and served in order).
  MR_RUNS_ON(loop) size_t QueuedRequests() const { return queued_requests_.size(); }

  /// Coordinations currently in flight (excluding a batch refresh).
  MR_RUNS_ON(loop) size_t ActiveCoordinations() const { return coords_.size(); }

  /// The lock manager, for tests and invariant checks. Meaningful only
  /// under ConcurrencyOptions::mode == kTwoPhaseLocking.
  MR_RUNS_ON(loop) const LockManager& lock_manager() const { return lock_manager_; }

 private:
  // State of a transaction this site is coordinating. Under the default
  // serial mode (paper assumption 2) at most one coordination is in
  // flight; under two-phase locking up to
  // ConcurrencyOptions::max_executors interleave in this one execution
  // context, isolated by the per-item locks.
  struct Coordination {
    TxnSpec txn;
    SiteId client = kInvalidSite;
    TimePoint start_time = 0;

    enum class Phase {
      kCopier,      // waiting for copy replies
      kPrepare,     // phase one: waiting for prepare acks
      kCommit,      // phase two: waiting for commit acks
    };
    Phase phase = Phase::kCopier;

    // Copier sub-state: source site -> items requested from it.
    std::map<SiteId, std::vector<ItemId>> copies_pending;
    // Fail-locked own copies refreshed by copier transactions.
    std::vector<ItemId> refreshed_items;
    // Values fetched for reads of items this site holds no copy of
    // (partial replication).
    std::map<ItemId, ItemState> remote_reads;
    uint32_t copier_count = 0;

    std::vector<SiteId> participants;
    std::set<SiteId> awaiting;
    std::vector<ItemWrite> writes;
    std::vector<ItemCopy> reads;

    TimerId timer = kInvalidTimer;
    // True if this is a step-two batch copier refresh rather than a client
    // transaction (txn/client unused, no 2PC follows the copier).
    bool batch_refresh = false;

    // Lossy-network retries: timeouts spent re-sending the current phase's
    // message instead of declaring failure (SiteOptions::retry_limit), and
    // when the current phase started (per-phase latency counters).
    uint32_t retries_used = 0;
    TimePoint phase_start = 0;

    // Locking extension state: read-set items needing copier refresh
    // (computed before lock acquisition) and outstanding queued local
    // lock requests.
    std::vector<ItemId> needs_copy;
    uint32_t lock_waits_pending = 0;
    // kTimeout deadlock policy: aborts the transaction if its queued lock
    // requests are still outstanding when it fires.
    TimerId lock_timer = kInvalidTimer;

    // Group commit: the ActiveBatch this coordination commits through
    // (0 = plain singleton 2PC). A batched member has no timer of its
    // own — the batch's timer covers all members.
    uint64_t group = 0;
  };

  /// Group commit, coordinator side: members that became prepare-ready
  /// while a batch toward the same participant set was still collecting.
  /// Members are pinned (never wounded) on entry; the batch flushes when
  /// it reaches BatchingOptions::max_batch or the linger timer fires.
  struct FormingBatch {
    std::vector<SiteId> participants;       // peers (excluding this site)
    std::vector<SiteId> wire_participants;  // peers + this site, sorted
    std::vector<TxnId> members;
    TimerId timer = kInvalidTimer;  // linger
  };

  /// Group commit, coordinator side: one batched 2PC round in flight.
  /// Mirrors the per-phase state of Coordination, but one instance fronts
  /// every member: one BatchPrepare / BatchCommit frame per participant,
  /// one ack awaited per participant, one timer, one retry budget.
  struct ActiveBatch {
    uint64_t id = 0;
    std::vector<SiteId> participants;       // peers (excluding this site)
    std::vector<SiteId> wire_participants;  // peers + this site, sorted
    std::vector<TxnId> members;             // each live in coords_
    enum class Phase { kPrepare, kCommit };
    Phase phase = Phase::kPrepare;
    std::set<SiteId> awaiting;
    /// Members some participant refused for lock conflicts (union across
    /// acks). Refusal of one member never aborts its batch-mates.
    std::set<TxnId> refused;
    /// The decided split carried by the BatchCommit frame (also re-sent on
    /// commit-phase retransmits).
    std::vector<TxnId> commits;
    std::vector<TxnId> aborts;
    TimerId timer = kInvalidTimer;
    uint32_t retries_used = 0;
    TimePoint phase_start = 0;
  };

  /// Group commit, participant side: bookkeeping for one BatchPrepare
  /// whose members still have queued lock requests. Lives only until the
  /// single BatchPrepareAck goes out; each member's own Participation
  /// carries the per-transaction state (staging, patience timer, decision
  /// queries) exactly as in singleton 2PC.
  struct BatchParticipation {
    SiteId coordinator = kInvalidSite;
    uint64_t batch = 0;
    std::vector<TxnId> members;   // accepted (locks held or pending)
    std::vector<TxnId> refused;   // lock-conflict refusals, member-level
    std::set<TxnId> waiting;      // members with queued lock requests
    /// True while HandleBatchPrepare is still enumerating members: a lock
    /// released by one member's refusal can synchronously grant an earlier
    /// member's queued request, and the ack must not go out before every
    /// member has been processed.
    bool collecting = false;
  };

  /// Coordination::group value while the member sits in a forming batch
  /// (no frames sent yet; replaced by the real batch id at flush, or by 0
  /// when a batch of one degrades to the singleton path).
  static constexpr uint64_t kFormingGroup = ~0ull;

  // State of a transaction this site participates in.
  struct Participation {
    TxnId txn = 0;
    SiteId coordinator = kInvalidSite;
    TimePoint start_time = 0;
    std::vector<ItemWrite> staged;  // writes of items this site holds
    // The transaction's participant set from the prepare, for commit-time
    // fail-lock maintenance (holders outside it missed the write).
    std::vector<SiteId> participants;
    TimerId timer = kInvalidTimer;
    // Locking extension: queued exclusive-lock requests still outstanding
    // before the prepare-ack can be sent.
    uint32_t lock_waits_pending = 0;
    // kTimeout deadlock policy: refuses the prepare if the queued lock
    // requests are still outstanding when it fires.
    TimerId lock_timer = kInvalidTimer;
    // Lossy-network retries: decision queries sent to the coordinator
    // while in doubt (SiteOptions::retry_limit) before giving up.
    uint32_t queries_sent = 0;
    // Group commit: id of the BatchPrepare this participation arrived in
    // (0 = singleton Prepare). Lock grants and timeouts for a batched
    // member route through the batch's ack bookkeeping.
    uint64_t batch = 0;
  };

  // State of an in-flight control-type-1 recovery at this site.
  struct Recovery {
    SessionNumber new_session = 0;
    TimePoint start_time = 0;
    std::set<SiteId> awaiting;
    std::vector<RecoveryInfoArgs> infos;
    /// Journal of fail-lock bits written at this site during the
    /// waiting-to-recover window (a commit or clear-fail-locks processed
    /// after the announce but before completion), keyed by (item, site),
    /// last write wins. CompleteRecovery replays it over the installed
    /// union of the responders' tables: the responders snapshotted their
    /// tables at announce time, so without the replay a window update
    /// would be silently forgotten.
    std::map<std::pair<ItemId, SiteId>, bool> window_journal;
    TimerId timer = kInvalidTimer;
    // Lossy-network retries: re-announcements of the same session after a
    // timeout (SiteOptions::retry_limit) before completing with whatever
    // info arrived.
    uint32_t retries_used = 0;
  };

  // ---- coordinator role -------------------------------------------------
  void HandleTxnRequest(const Message& msg);
  /// Locking extension: acquires the coordinator's local locks (shared for
  /// pure reads, exclusive for writes and stale reads), then continues to
  /// the copier phase / execution once all are granted.
  void AcquireCoordinatorLocks(Coordination& c);
  void OnCoordinatorLockGranted(TxnId txn);
  /// Runs after local locks are held (or immediately when locking is off).
  void ProceedAfterLocks(Coordination& c);
  void StartCopierPhase(Coordination& c, const std::vector<ItemId>& needed);
  void HandleCopyReply(const Message& msg);
  void FinishCopierPhase(Coordination& c);
  void ExecuteAndPrepare(Coordination& c);
  /// The unbatched phase-one send: one kPrepare per participant plus the
  /// ack timer. Also the degenerate path for a batch of one, which is
  /// byte-identical on the wire to never having batched.
  void SendSingletonPrepares(Coordination& c);
  void HandlePrepareAck(const Message& msg);
  void StartCommitPhase(Coordination& c);
  void HandleCommitAck(const Message& msg);
  void FinishCommit(Coordination& c);
  void CoordinationTimeout(TxnId txn, bool batch);

  // ---- group commit, coordinator side -----------------------------------
  /// Adds a prepare-ready coordination to the forming batch toward its
  /// wire participant set, pinning its locks (batch members are past the
  /// point of no return and must never be wounded). Flushes at max_batch;
  /// otherwise arms/keeps the linger timer.
  void EnqueueIntoBatch(Coordination& c);
  /// Sends the batch on its way: one member degrades to the singleton
  /// Prepare path; two or more become an ActiveBatch with one
  /// BatchPrepare per participant.
  void FlushFormingBatch(FormingBatch forming);
  void HandleBatchPrepareAck(const Message& msg);
  /// Phase two of a batched round: one BatchCommit per participant
  /// carrying the commit/abort split; refused members are replied to
  /// (kAbortedLockConflict) without disturbing their batch-mates.
  void StartBatchCommitPhase(ActiveBatch& b);
  void HandleBatchCommitAck(const Message& msg);
  /// All commit acks in: installs every committed member's writes, runs
  /// fail-lock maintenance ONCE over the deduplicated union of their
  /// write sets, and replies per member (each recorded individually in
  /// the outcome cache).
  void FinishBatchCommit(ActiveBatch& b);
  void BatchTimeout(uint64_t batch_id);
  /// Aborts every live member of a batch (stale view / participant
  /// failure): one BatchCommit with everything in `aborts` to the
  /// responsive participants, then per-member client replies.
  void AbortWholeBatch(ActiveBatch& b, TxnOutcome outcome,
                       const std::vector<SiteId>& notify);

  // ---- group commit, participant side ------------------------------------
  void HandleBatchPrepare(const Message& msg);
  void HandleBatchCommit(const Message& msg);
  /// A batched member's lock request resolved (grant / timeout / wound):
  /// updates the batch bookkeeping and acks once no member is waiting.
  void ResolveBatchMember(SiteId coordinator, uint64_t batch, TxnId txn,
                          bool accepted);
  /// Sends the one BatchPrepareAck and pins every accepted member.
  void SendBatchPrepareAck(BatchParticipation& bp);
  /// kTimeout policy: a coordinator lock request waited too long.
  void CoordinatorLockTimeout(TxnId txn);
  /// Tears the coordination down: releases locks, cancels timers, replies
  /// to the client, erases it from coords_ (or resets batch_) and serves
  /// the queue. `c` is invalid on return.
  void ReplyAndClear(Coordination& c, TxnOutcome outcome);

  // ---- participant role --------------------------------------------------
  void HandlePrepare(const Message& msg);
  void HandleCommit(const Message& msg);
  void HandleAbort(const Message& msg);
  void ParticipationTimeout(TxnId txn);
  void OnParticipantLockGranted(TxnId txn);
  /// kTimeout policy: a participant lock request waited too long.
  void ParticipantLockTimeout(TxnId txn);
  void SendPrepareAck(Participation& part);
  /// Answers an in-doubt participant's outcome query: from live
  /// coordination state, from the recent-outcome cache, or — when the
  /// transaction left no trace — by presumed abort.
  void HandleDecisionQuery(const Message& msg);

  /// Runs when an executor slot frees up: serves queued requests while
  /// slots are free, then lets step-two batch copiers proceed.
  void OnExecutorIdle();

  /// Resolves an in-flight coordination by transaction id: a client
  /// coordination from coords_, or the batch refresh (its copier traffic
  /// carries the batch's pseudo transaction id).
  Coordination* CoordinationFor(TxnId txn);

  /// Drains LockManager::TakePendingWounds, aborting each wound-wait
  /// victim (coordinations reply kAbortedDeadlock; participations refuse
  /// their prepare). Must run before returning to the event loop after any
  /// lock acquisition.
  void ProcessWounds();
  void AbortWoundedTxn(TxnId victim);

  // ---- services -----------------------------------------------------------
  void HandleCopyRequest(const Message& msg);
  void HandleClearFailLocks(const Message& msg);

  // ---- control transactions ------------------------------------------------
  void HandleRecoveryAnnounce(const Message& msg);
  /// Rows served in a recovery info reply: the fail-lock table with the
  /// commit-time maintenance of every transaction still in 2PC here
  /// applied prospectively. A transaction whose prepare predates the
  /// announce commits with its pre-recovery participant set, so its
  /// maintenance runs after this snapshot — possibly after the recovering
  /// site already completed — and the plain table would serve rows the
  /// commit immediately invalidates in both directions: missing set bits
  /// (the recovering site's copy missed the write but its own table says
  /// clean — a read-safety hole) and soon-stale ones (a bit the commit
  /// clears at every participant survives only in the recovered table).
  /// Abort-safe: a prospective set is cleared by the site's first refresh,
  /// and a prospective clear of (item, t) leaves t's own bit intact, so t
  /// still refuses to serve its stale copy (HandleCopyRequest). The one
  /// exception is t == recovering itself — the served row becomes that
  /// site's own table, so its own column is never prospectively cleared
  /// (an aborted commit would otherwise leave a stale copy unlocked).
  std::vector<FailLockRow> RecoveryInfoRows(SiteId recovering) const;
  void HandleRecoveryInfo(const Message& msg);
  void RecoveryTimeout();
  void CompleteRecovery();
  void HandleFailureAnnounce(const Message& msg);
  void RunControlType2(const std::vector<SiteId>& failed);
  void HandleCopyCreate(const Message& msg);
  void MaybeRunType3();

  // ---- shared helpers --------------------------------------------------------
  /// Installs committed writes locally and maintains fail-locks keyed on
  /// the transaction's participant set (the paper folds fail-lock
  /// maintenance into the commitment of data copies). `participants` is
  /// the commit's participant set including the coordinator; holders
  /// outside it missed the write and get the bit, holders inside it get it
  /// cleared. Keying on the set — identical at every participant by
  /// construction — rather than on each site's believed-up view keeps the
  /// written rows convergent even when views are skewed.
  /// `maintain_now = false` defers the fail-lock maintenance: group commit
  /// installs every member's writes first and then maintains the table
  /// once over the deduplicated union (see MaintainFailLocks).
  void CommitLocalWrites(TxnId writer, const std::vector<ItemWrite>& writes,
                         const std::vector<SiteId>& participants,
                         bool maintain_now = true);
  void MaintainFailLocks(const std::vector<ItemWrite>& writes,
                         const std::vector<SiteId>& participants);

  /// Applies one fail-lock bit mutation, journaling it when a recovery
  /// window is open (see Recovery::window_journal). Returns true if the
  /// table changed.
  bool SetFailLock(ItemId item, SiteId site);
  bool ClearFailLock(ItemId item, SiteId site);

  /// Operational database sites other than this one, per the local vector.
  std::vector<SiteId> OperationalPeers() const;

  /// Chooses a copy source for `item`: the lowest-id operational peer that
  /// holds an up-to-date copy per the local tables; kInvalidSite if none.
  SiteId PickCopySource(ItemId item) const;

  /// Step-two recovery: proactively refresh remaining fail-locked copies
  /// when idle and below the threshold.
  void MaybeStartBatchCopier();

  /// Records a transaction's final outcome in the bounded recent-outcome
  /// cache, which lets this site answer duplicated 2PC messages and
  /// decision queries after the live state is torn down.
  void RecordOutcome(TxnId txn, bool committed);
  /// Looks up a recent outcome; nullopt if the id fell out of the cache.
  std::optional<bool> RecentOutcome(TxnId txn) const;

  void Charge(Duration amount) { runtime_->ChargeCpu(amount); }
  void SendTo(SiteId to, Payload payload);

  void Trace(TraceEvent event, uint64_t a = 0, uint64_t b = 0) {
    if (options_.trace != nullptr) {
      options_.trace->Record(runtime_->Now(), id_, event, a, b);
    }
  }

  const SiteId id_;
  const SiteOptions options_;
  Transport* const transport_;
  SiteRuntime* const runtime_;

  SiteStatus status_ = SiteStatus::kUp;
  Database db_;
  /// Used only under ConcurrencyOptions::mode == kTwoPhaseLocking.
  LockManager lock_manager_;
  SessionVector session_vector_;
  FailLockTable fail_locks_;
  HoldersTable holders_;
  SiteCounters counters_;

  /// In-flight coordinations keyed by transaction id, bounded by
  /// ConcurrencyOptions::EffectiveExecutors() (1 under serial mode). All
  /// of them interleave in this site's one execution context — an
  /// "executor" is an in-flight coordination, not a thread — so every
  /// event (including commit-time fail-lock maintenance) is atomic with
  /// respect to the others.
  std::map<TxnId, Coordination> coords_;
  /// A step-two batch copier refresh. Kept out of coords_ and only
  /// started when the site is fully idle: batch refreshes predate the
  /// locking layer and run with the site to themselves, which keeps
  /// their no-2PC copier traffic out of the lock order.
  std::optional<Coordination> batch_;
  std::deque<Message> queued_requests_;
  /// Group commit, coordinator side: forming batches keyed by wire
  /// participant set (under full replication there is at most one), and
  /// in-flight batched rounds keyed by batch id.
  std::map<std::vector<SiteId>, FormingBatch> forming_batches_;
  std::map<uint64_t, ActiveBatch> active_batches_;
  uint64_t next_batch_id_ = 1;
  /// Group commit, participant side: BatchPrepares whose ack is gated on
  /// queued lock requests, keyed by (coordinator, batch id).
  std::map<std::pair<SiteId, uint64_t>, BatchParticipation>
      batch_participations_;
  /// In-flight participations keyed by transaction id. Multiple
  /// coordinators may have transactions staged here concurrently; each
  /// site's own execution remains serial (one event at a time).
  std::map<TxnId, Participation> participations_;
  std::optional<Recovery> recovery_;

  /// Bound on the coordinator request queue; beyond it requests are
  /// dropped and the client times out.
  static constexpr size_t kMaxQueuedRequests = 64;
  /// Set by a lose-state crash; consumed by the next CompleteRecovery.
  bool state_lost_ = false;

  /// Final outcomes of recently finished transactions (true = committed),
  /// both coordinated here and participated in. Bounded FIFO. Duplicated
  /// Prepares/CommitDecisions and decision queries for transactions whose
  /// live state is gone are answered from this cache; anything older than
  /// the cache window is presumed aborted. Wiped by a lose-state crash
  /// (the cache is volatile, like the paper's site memory).
  std::map<TxnId, bool> recent_outcomes_;
  std::deque<TxnId> recent_outcomes_fifo_;
  static constexpr size_t kMaxRecentOutcomes = 256;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_SITE_H_

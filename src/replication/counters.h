#ifndef MINIRAID_REPLICATION_COUNTERS_H_
#define MINIRAID_REPLICATION_COUNTERS_H_

#include <cstdint>

#include "metrics/stats.h"

namespace miniraid {

/// Per-site event counts and timing distributions, the raw material of the
/// paper's three experiments. Counters accumulate from site construction;
/// drivers snapshot/diff them between measurement windows.
struct SiteCounters {
  // -- transactions coordinated by this site -----------------------------
  uint64_t txns_coordinated = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted_copier = 0;       // no up-to-date copy reachable
  uint64_t txns_aborted_participant = 0;  // participant failed in phase one
  uint64_t txns_aborted_lock_conflict = 0;  // wait-die (locking extension)
  uint64_t txns_aborted_deadlock = 0;     // wound-wait victims at this site
  uint64_t txns_aborted_lock_timeout = 0;  // lock-wait timer expiries
  uint64_t lock_waits = 0;                // lock requests that had to queue
  uint64_t lock_rejections = 0;           // wait-die refusals at this site
  uint64_t lock_wounds = 0;               // wound-wait wounds issued here
  // High-water mark of concurrently in-flight coordinations at this site
  // (1 under serial mode; up to ConcurrencyOptions::max_executors under
  // two-phase locking).
  uint64_t max_concurrent_coordinations = 0;

  // -- group commit (batched 2PC, BatchingOptions) -------------------------
  uint64_t batch_rounds_coordinated = 0;   // BatchPrepare rounds sent
  uint64_t batch_members_coordinated = 0;  // member txns those rounds carried
  uint64_t batch_prepares_handled = 0;     // BatchPrepare frames at this site

  // -- copier machinery ---------------------------------------------------
  uint64_t copier_transactions = 0;      // copy requests issued on demand
  uint64_t batch_copier_transactions = 0;  // step-two proactive copiers
  uint64_t copy_requests_served = 0;
  uint64_t clear_lock_txns_sent = 0;     // special transactions initiated
  uint64_t clear_lock_txns_received = 0;

  // -- fail-lock bit transitions (state changes, not re-writes) ----------
  uint64_t fail_locks_set = 0;
  uint64_t fail_locks_cleared = 0;

  // -- control transactions ----------------------------------------------
  uint64_t control1_initiated = 0;  // recoveries started by this site
  uint64_t control1_served = 0;     // recovery announcements answered
  uint64_t control2_initiated = 0;  // failures this site detected/announced
  uint64_t control2_received = 0;
  uint64_t control3_initiated = 0;  // backup copies this site created
  uint64_t control3_copies_installed = 0;

  // -- participant role ----------------------------------------------------
  uint64_t prepares_handled = 0;
  uint64_t commits_handled = 0;
  uint64_t aborts_handled = 0;
  uint64_t coordinator_failures_detected = 0;
  // Prepares refused because this participant's session vector recorded a
  // strictly newer session than the coordinator's piggybacked one
  // (commit-time session-vector validation).
  uint64_t prepare_session_vetoes = 0;

  // -- recovery edge cases -------------------------------------------------
  // Fail-lock mutations journaled during the waiting-to-recover window and
  // replayed over the installed tables at completion.
  uint64_t recovery_window_replays = 0;
  // Recoveries that completed with zero info replies and conservatively
  // fail-locked every held copy.
  uint64_t recovery_blind_completions = 0;

  // -- lossy-network retry machinery (SiteOptions::retry_limit) ------------
  // Phase messages re-sent by a coordinator after an ack_timeout expired
  // with retries remaining (copy requests, Prepares, CommitDecisions).
  uint64_t phase_retransmits = 0;
  // Decision queries sent by this site as an in-doubt prepared participant.
  uint64_t decision_queries_sent = 0;
  // Decision queries answered from coordination state or recent outcomes.
  uint64_t decision_queries_answered = 0;
  // Decision queries answered by presumed abort (no trace of the txn).
  uint64_t decisions_presumed_abort = 0;
  // Type-1 announcements re-sent for the same session after a timeout.
  uint64_t recovery_reannounces = 0;
  // Messages recognized as protocol-level duplicates and ignored or
  // re-acked without side effects (duplicate Prepare / CommitDecision /
  // RecoveryInfo / TxnRequest and friends).
  uint64_t duplicate_msgs_ignored = 0;

  // -- timing distributions (virtual time under the simulator) ------------
  DurationStats coord_txn_time;        // TxnRequest received -> reply sent
  DurationStats coord_txn_copier_time;  // same, txns that ran >= 1 copier
  DurationStats participant_time;      // Prepare received -> CommitAck sent
  DurationStats recovery_time;         // type 1 at the recovering site
  DurationStats type1_serve_time;      // type 1 at an operational site
  DurationStats type2_receive_time;    // type 2 processing at a receiver
  DurationStats copy_serve_time;       // copy request service
  DurationStats clear_locks_time;      // special-transaction processing

  // -- per-2PC-phase latency (coordinator side, committed txns) ------------
  DurationStats phase_copier_time;   // copier phase start -> all copies in
  DurationStats phase_prepare_time;  // Prepares sent -> all acks in
  DurationStats phase_commit_time;   // CommitDecisions sent -> all acks in
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_COUNTERS_H_

#ifndef MINIRAID_REPLICATION_LOCK_MANAGER_H_
#define MINIRAID_REPLICATION_LOCK_MANAGER_H_

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "replication/options.h"

namespace miniraid {

/// Per-site item lock manager for the two-phase-locking execution mode
/// (ConcurrencyOptions::mode == kTwoPhaseLocking): shared locks for a
/// coordinator's reads, exclusive locks for writes (acquired at every
/// participant through phase one of 2PC) and for copier refreshes. Locks
/// are strict — held through commit — so fail-lock maintenance inside the
/// commit step can never race a concurrent executor on the same item.
///
/// Deadlocks are broken per ConcurrencyOptions::deadlock_policy:
///
///  - kWaitDie: an older requester (smaller TxnId) waits for a conflicting
///    holder, a younger one is rejected at request time (kRejected). Grants
///    from the queue are FIFO. No cycle can form: every wait edge points
///    old -> young, and a site enqueues one transaction's whole lock set in
///    a single event, so queue order is consistent across items.
///  - kWoundWait: an older requester wounds younger conflicting holders
///    (recorded, surfaced via TakePendingWounds; the site aborts the
///    victims with kAbortedDeadlock), a younger requester waits. Grants
///    from the queue are oldest-first, so every wait edge points
///    young -> old and cycles are impossible. Holders past the point of no
///    return (Pin) are never wounded; a pinned transaction never waits, so
///    it cannot extend a cycle.
///  - kTimeout: every conflicting request queues; the site runs a
///    lock-wait timer per transaction and aborts it (kAbortedLockTimeout,
///    via CancelWaits + ReleaseAll) if a request is still queued when the
///    timer fires.
///
/// Single-threaded per the site's execution context. Grant callbacks fire
/// synchronously from ReleaseAll / CancelWaits; wounds are NEVER delivered
/// synchronously from Acquire — the site drains them with
/// TakePendingWounds after its own bookkeeping is consistent.
class LockManager {
 public:
  enum class Mode : uint8_t { kShared = 0, kExclusive = 1 };

  enum class Outcome : uint8_t {
    kGranted,   // lock held; proceed now
    kQueued,    // on_grant will fire when the conflict clears
    kRejected,  // wait-die only: requester is younger than a holder
  };

  explicit LockManager(const ConcurrencyOptions& options)
      : options_(options) {}

  /// Requests `mode` on `item` for `txn`. Re-entrant: a holder re-acquiring
  /// (or upgrading shared->exclusive when it is the only holder) is granted.
  /// `on_grant` is invoked exactly once if and when a kQueued request is
  /// eventually granted; it must not be null for queued requests. Under
  /// kWoundWait this may record wounds — the caller must drain
  /// TakePendingWounds before returning to the event loop.
  Outcome Acquire(ItemId item, TxnId txn, Mode mode,
                  std::function<void()> on_grant);

  /// Releases every lock `txn` holds, cancels its queued requests and
  /// forgets its pin/wound marks, granting whatever unblocks (grant
  /// callbacks fire before return).
  void ReleaseAll(TxnId txn);

  /// Cancels `txn`'s queued (not yet granted) requests only; held locks
  /// stay held. Used by the kTimeout policy when a lock-wait timer fires:
  /// the site then aborts the transaction, which calls ReleaseAll.
  void CancelWaits(TxnId txn);

  /// Marks `txn` as past the point of no return (coordinator has started
  /// the commit decision / participant has acked prepare). Wound-wait
  /// skips pinned holders; ReleaseAll clears the mark.
  void Pin(TxnId txn);
  bool IsPinned(TxnId txn) const { return pinned_.count(txn) > 0; }

  /// Returns and clears the transactions wounded since the last call, in
  /// wound order. The site aborts each (kAbortedDeadlock). A transaction
  /// is reported at most once until its ReleaseAll.
  std::vector<TxnId> TakePendingWounds();

  bool Holds(ItemId item, TxnId txn) const;
  /// Locks currently held (any mode) on `item`.
  size_t HolderCount(ItemId item) const;
  /// Queued (not yet granted) requests on `item`.
  size_t QueueLength(ItemId item) const;
  /// Total held locks across all items (for tests / leak checks).
  size_t TotalHeld() const;

  const ConcurrencyOptions& options() const { return options_; }

 private:
  struct Waiter {
    TxnId txn;
    Mode mode;
    std::function<void()> on_grant;
  };

  struct ItemLocks {
    Mode mode = Mode::kShared;
    std::set<TxnId> holders;
    /// FIFO arrival order; kWoundWait grants oldest-first instead.
    std::vector<Waiter> queue;
  };

  void GrantFromQueue(ItemId item);
  /// Records a wound for `victim` unless it is pinned or already wounded.
  void Wound(TxnId victim);

  ConcurrencyOptions options_;
  std::map<ItemId, ItemLocks> locks_;
  std::set<TxnId> pinned_;
  /// Wounded and not yet released — suppresses duplicate wound reports.
  std::set<TxnId> wounded_;
  std::vector<TxnId> pending_wounds_;
};

}  // namespace miniraid

#endif  // MINIRAID_REPLICATION_LOCK_MANAGER_H_

#include "replication/session_vector.h"

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

const char* StatusGlyph(SiteStatus status) {
  switch (status) {
    case SiteStatus::kUp:
      return "up";
    case SiteStatus::kDown:
      return "down";
    case SiteStatus::kWaitingToRecover:
      return "recovering";
    case SiteStatus::kTerminating:
      return "terminating";
  }
  return "?";
}

}  // namespace

SessionVector::SessionVector(uint32_t n_sites) : entries_(n_sites) {
  MR_CHECK(n_sites >= 1 && n_sites <= kMaxSites)
      << "site count " << n_sites << " out of range";
}

const SessionVector::Entry& SessionVector::At(SiteId site) const {
  MR_CHECK(site < entries_.size()) << "site " << site << " out of range";
  return entries_[site];
}

SessionVector::Entry& SessionVector::At(SiteId site) {
  MR_CHECK(site < entries_.size()) << "site " << site << " out of range";
  return entries_[site];
}

void SessionVector::Set(SiteId site, SessionNumber session,
                        SiteStatus status) {
  At(site) = Entry{session, status};
}

void SessionVector::MarkDown(SiteId site) {
  At(site).status = SiteStatus::kDown;
}

void SessionVector::MarkUp(SiteId site, SessionNumber session) {
  Entry& entry = At(site);
  MR_CHECK(session > entry.session || entry.status == SiteStatus::kUp)
      << "MarkUp must start a new session";
  entry.session = std::max(entry.session, session);
  entry.status = SiteStatus::kUp;
}

std::vector<SiteId> SessionVector::OperationalSites() const {
  std::vector<SiteId> out;
  for (SiteId site = 0; site < entries_.size(); ++site) {
    if (entries_[site].status == SiteStatus::kUp) out.push_back(site);
  }
  return out;
}

uint32_t SessionVector::OperationalCount() const {
  uint32_t count = 0;
  for (const Entry& entry : entries_) {
    if (entry.status == SiteStatus::kUp) ++count;
  }
  return count;
}

std::vector<SessionEntryWire> SessionVector::ToWire() const {
  std::vector<SessionEntryWire> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(SessionEntryWire{entry.session, entry.status});
  }
  return out;
}

Status SessionVector::MergeFrom(const std::vector<SessionEntryWire>& remote) {
  if (remote.size() != entries_.size()) {
    return Status::InvalidArgument(
        StrFormat("session vector size mismatch: %zu vs %zu", remote.size(),
                  entries_.size()));
  }
  for (size_t i = 0; i < remote.size(); ++i) {
    Entry& local = entries_[i];
    const SessionEntryWire& incoming = remote[i];
    if (incoming.session > local.session) {
      local.session = incoming.session;
      local.status = incoming.status;
    } else if (incoming.session == local.session &&
               incoming.status != SiteStatus::kUp) {
      // Same epoch, remote has failure news: down wins.
      local.status = incoming.status;
    }
  }
  return Status::Ok();
}

std::string SessionVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) out += ", ";
    out += StrFormat("s%zu:%llu/%s", i,
                     (unsigned long long)entries_[i].session,
                     StatusGlyph(entries_[i].status));
  }
  out += "]";
  return out;
}

}  // namespace miniraid
